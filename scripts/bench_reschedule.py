#!/usr/bin/env python
"""Benchmark the closed rescheduling loop against a static placement.

One drift scenario with two built-in correctness gates. The scenario
is the canonical one the suite validates end to end: three members
packed one per node on a four-node allocation (one node idle), node 0
slowing down by a constant 2.5x from step 4 on. The static run rides
the drift; the closed loop detects it (windowed ratio test), re-plans
(warm-started annealer, migration-cost gated), and migrates off the
slow node at a step boundary.

Before the improvement is reported, two things must hold:

- **zero-drift byte-identity** — a run with the controller attached
  and no drift produces a stage trace record-for-record identical to
  a bare run (the telemetry/detector hooks are trace-invisible);
- **invariants under migration** — the drifted, rescheduled run passes
  every :class:`repro.verify.invariants.InvariantChecker` check
  (segmented Eq. 1 periods across migrations, conservation, DTL
  accounting).

Both are reported as :class:`repro.verify.oracles.DivergenceReport`
payloads exactly like the other benchmark gates.

Writes ``BENCH_reschedule.json`` (makespans, improvement, controller
summary, correctness reports) and exits non-zero on regression:

- exit **1** — the improvement floor was missed (>= 15% full mode);
- exit **2** — a correctness divergence: the controller perturbed a
  zero-drift trace, or an invariant failed under migration.

``--check`` re-validates an existing results file against the floors
(and its stored correctness verdicts) without re-running anything.

Usage:
    python scripts/bench_reschedule.py [--smoke] [--output PATH]
    python scripts/bench_reschedule.py --check [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.reschedule import (  # noqa: E402
    DriftEvent,
    DriftKind,
    RescheduleController,
    StaticDriftModel,
    reschedule_counters,
    reset_reschedule_counters,
)
from repro.runtime import run_ensemble  # noqa: E402
from repro.runtime.executor import EnsembleExecutor  # noqa: E402
from repro.runtime.placement import (  # noqa: E402
    EnsemblePlacement,
    MemberPlacement,
)
from repro.runtime.spec import EnsembleSpec, default_member  # noqa: E402
from repro.verify.oracles import (  # noqa: E402
    DivergenceReport,
    MetricCheck,
)

#: required makespan improvement of the closed loop over the static
#: placement — the regression floor CI enforces. Smoke mode's shorter
#: run leaves fewer post-migration steps to amortize the transfer
#: bill, hence the lower bar (same code path, same exactness gates).
IMPROVEMENT_FLOOR = 0.15
IMPROVEMENT_FLOOR_SMOKE = 0.10

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_reschedule.json"

NUM_NODES = 4
NUM_MEMBERS = 3
TIMING_NOISE = 0.02
SEED = 0

#: the drift: node 0 slows by a constant factor from step 4 on.
DRIFT_NODE = 0
DRIFT_MAGNITUDE = 2.5
DRIFT_START = 4

#: controller knobs — the validated operating point.
WINDOW = 4
THRESHOLD = 1.2
MIN_DWELL = 4
MAX_MIGRATIONS = 4

N_STEPS_FULL = 24
N_STEPS_SMOKE = 12


def _spec(n_steps: int) -> EnsembleSpec:
    return EnsembleSpec(
        "bench-reschedule",
        tuple(
            default_member(f"em{i}", num_analyses=1, n_steps=n_steps)
            for i in range(NUM_MEMBERS)
        ),
    )


def _placement() -> EnsemblePlacement:
    """Members packed one per node; the last node idle (the escape)."""
    return EnsemblePlacement(
        NUM_NODES,
        tuple(MemberPlacement(i, (i,)) for i in range(NUM_MEMBERS)),
    )


def _drift() -> StaticDriftModel:
    return StaticDriftModel(
        (
            DriftEvent(
                node=DRIFT_NODE,
                kind=DriftKind.STEP,
                start_step=DRIFT_START,
                magnitude=DRIFT_MAGNITUDE,
            ),
        )
    )


def _controller() -> RescheduleController:
    return RescheduleController(
        window=WINDOW,
        threshold=THRESHOLD,
        min_dwell=MIN_DWELL,
        max_migrations=MAX_MIGRATIONS,
    )


def check_byte_identity(n_steps: int) -> DivergenceReport:
    """Zero drift: the controller must be trace-invisible."""
    spec, placement = _spec(n_steps), _placement()
    bare = run_ensemble(
        spec, placement, seed=SEED, timing_noise=TIMING_NOISE
    )
    controller = _controller()
    watched = run_ensemble(
        spec,
        placement,
        seed=SEED,
        timing_noise=TIMING_NOISE,
        rescheduler=controller,
    )
    checks = [
        MetricCheck(
            "ensemble",
            "trace_records_identical",
            "bare-vs-controller",
            1.0,
            1.0 if watched.tracer.records == bare.tracer.records else 0.0,
            0.0,
        ),
        MetricCheck(
            "ensemble",
            "makespan",
            "bare-vs-controller",
            bare.ensemble_makespan,
            watched.ensemble_makespan,
            0.0,
        ),
        MetricCheck(
            "ensemble",
            "migrations",
            "bare-vs-controller",
            0.0,
            float(controller.migrations_executed),
            0.0,
        ),
    ]
    return DivergenceReport(
        scenario="bench-reschedule-byte-identity", checks=tuple(checks)
    )


def bench_scenario(n_steps: int) -> tuple:
    """Static vs closed-loop makespans under the canonical drift."""
    spec, placement = _spec(n_steps), _placement()

    t0 = time.perf_counter()
    static = run_ensemble(
        spec,
        placement,
        seed=SEED,
        timing_noise=TIMING_NOISE,
        drift=_drift(),
    )
    t_static = time.perf_counter() - t0

    reset_reschedule_counters()
    controller = _controller()
    executor = EnsembleExecutor(
        spec=spec,
        placement=placement,
        seed=SEED,
        timing_noise=TIMING_NOISE,
        drift=_drift(),
        rescheduler=controller,
        verify=True,
    )
    t0 = time.perf_counter()
    rescheduled = executor.run()
    t_rescheduled = time.perf_counter() - t0

    invariants = executor.invariant_report
    checks = [
        MetricCheck(
            "ensemble",
            "invariants_passed",
            "migration-invariants",
            1.0,
            1.0 if invariants is not None and invariants.passed else 0.0,
            0.0,
        ),
        MetricCheck(
            "ensemble",
            "invariant_violations",
            "migration-invariants",
            0.0,
            float(len(invariants.violations)) if invariants else 1.0,
            0.0,
        ),
        MetricCheck(
            "ensemble",
            "migrations_at_least_one",
            "migration-invariants",
            1.0,
            1.0 if controller.migrations_executed >= 1 else 0.0,
            0.0,
        ),
    ]
    report = DivergenceReport(
        scenario="bench-reschedule-invariants", checks=tuple(checks)
    )

    improvement = 1.0 - (
        rescheduled.ensemble_makespan / static.ensemble_makespan
    )
    row = {
        "num_nodes": NUM_NODES,
        "members": NUM_MEMBERS,
        "n_steps": n_steps,
        "timing_noise": TIMING_NOISE,
        "seed": SEED,
        "drift": {
            "node": DRIFT_NODE,
            "kind": "step",
            "magnitude": DRIFT_MAGNITUDE,
            "start_step": DRIFT_START,
        },
        "controller": {
            "window": WINDOW,
            "threshold": THRESHOLD,
            "min_dwell": MIN_DWELL,
            "max_migrations": MAX_MIGRATIONS,
        },
        "static_makespan": static.ensemble_makespan,
        "rescheduled_makespan": rescheduled.ensemble_makespan,
        "improvement": improvement,
        "static_seconds": t_static,
        "rescheduled_seconds": t_rescheduled,
        "summary": controller.summary(),
        "counters": reschedule_counters(),
        "invariant_checks": (
            invariants.checks_performed if invariants else 0
        ),
    }
    return row, report


def run(smoke: bool) -> dict:
    n_steps = N_STEPS_SMOKE if smoke else N_STEPS_FULL
    identity_report = check_byte_identity(min(n_steps, 8))
    scenario, invariant_report = bench_scenario(n_steps)
    return {
        "benchmark": "reschedule",
        "mode": "smoke" if smoke else "full",
        "floors": {
            "improvement": (
                IMPROVEMENT_FLOOR_SMOKE if smoke else IMPROVEMENT_FLOOR
            )
        },
        "scenario": scenario,
        "correctness": [
            identity_report.to_dict(),
            invariant_report.to_dict(),
        ],
    }


def check_correctness(results: dict) -> bool:
    """Print stored divergence reports; False on any divergence."""
    ok = True
    for payload in results.get("correctness", []):
        status = "ok" if payload["passed"] else "DIVERGED"
        print(
            f"{payload['scenario']}: correctness {status} "
            f"({payload['num_checks']} checks, "
            f"{payload['num_failures']} failures)"
        )
        for failure in payload["failures"]:
            print(
                f"  FAIL [{failure['paths']}] "
                f"{failure['scope']}/{failure['metric']}: "
                f"ref={failure['reference']!r} got={failure['candidate']!r}"
            )
        if not payload["passed"]:
            ok = False
    return ok


def check_floors(results: dict) -> bool:
    improvement = results["scenario"]["improvement"]
    floor = results["floors"]["improvement"]
    status = "ok" if improvement >= floor else "BELOW FLOOR"
    print(
        f"improvement: {improvement:.1%} (floor {floor:.0%}) {status}"
    )
    return improvement >= floor


def main() -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the closed rescheduling loop against a static "
            "placement under drift."
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorter run (CI smoke mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing results file against the floors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"results file (default: {DEFAULT_OUTPUT.name})",
    )
    args = parser.parse_args()

    if args.check:
        if not args.output.exists():
            print(f"no results file at {args.output}", file=sys.stderr)
            return 1
        results = json.loads(args.output.read_text())
        if not check_correctness(results):
            return 2
        return 0 if check_floors(results) else 1

    results = run(smoke=args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    row = results["scenario"]
    print(
        f"scenario: {row['members']} members / {row['num_nodes']} nodes, "
        f"node {row['drift']['node']} x{row['drift']['magnitude']} from "
        f"step {row['drift']['start_step']} (n_steps={row['n_steps']})"
    )
    print(
        f"  static {row['static_makespan']:.2f}s -> rescheduled "
        f"{row['rescheduled_makespan']:.2f}s "
        f"({row['summary']['migrations']} migrations, "
        f"{row['summary']['replans_triggered']} replans)"
    )
    if not check_correctness(results):
        return 2
    return 0 if check_floors(results) else 1


if __name__ == "__main__":
    sys.exit(main())
