#!/usr/bin/env python
"""Check internal links in the repo's markdown documentation.

Scans ``docs/*.md`` plus the top-level ``README.md`` and ``ROADMAP.md``
for markdown links ``[text](target)`` and verifies every *internal*
target:

- a relative file target (``FAULT_MODELS.md``, ``../README.md``) must
  resolve to an existing file, relative to the linking document;
- a same-file anchor (``#arrival-processes``) or a ``file.md#anchor``
  target must match a heading slug in the target document (GitHub
  slug rules: lowercase, punctuation stripped, spaces to dashes).

External targets (``http://``, ``https://``, ``mailto:``) are ignored.
Exits 0 when every internal link resolves, 1 otherwise, listing each
broken link as ``file:line: target — reason``.

Usage:
    python scripts/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: markdown inline link, ignoring images' leading ``!``.
LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> List[str]:
    slugs: List[str] = []
    in_code = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        match = HEADING_RE.match(line)
        if match:
            slugs.append(slugify(match.group(1)))
    return slugs


def iter_links(path: Path) -> List[Tuple[int, str]]:
    links: List[Tuple[int, str]] = []
    in_code = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def check_file(path: Path) -> List[str]:
    problems: List[str] = []
    for lineno, target in iter_links(path):
        if target.startswith(EXTERNAL):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path}:{lineno}: {target} — file not found"
                )
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{path}:{lineno}: {target} — no heading "
                    f"#{anchor} in {resolved.name}"
                )
    return problems


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent
    files = sorted((root / "docs").glob("*.md"))
    for name in ("README.md", "ROADMAP.md"):
        candidate = root / name
        if candidate.exists():
            files.append(candidate)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 1

    problems: List[str] = []
    checked = 0
    for path in files:
        links = iter_links(path)
        checked += len(links)
        problems.extend(check_file(path))

    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(
            f"{len(problems)} broken internal link(s) in {len(files)} "
            f"file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"{checked} links checked across {len(files)} files: all OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
