#!/usr/bin/env python
"""Benchmark the placement service: throughput, caching, latency.

Four measurements, each with a built-in exactness check:

- **throughput**: a batch of distinct search jobs driven through the
  in-process :class:`~repro.service.workers.PlacementService` worker
  pool; sustained jobs/s must clear the floor. Every pooled result is
  compared against a serial :func:`~repro.service.workers
  .execute_request` pass — exact payload equality, the service
  determinism contract.
- **cached**: the same batch resubmitted; every job must resolve from
  the :class:`~repro.service.cache.ResultCache` (``cached=True``) and
  the second pass must be at least the floor times faster than the
  first.
- **rank-des**: one DES-method rank job (batched delta-replay engine)
  through the pool; the payload must equal the direct execution
  exactly and the ``/stats`` engine counters must account for every
  baseline sim and replayed replica.
- **http**: submit+wait round trips over the real HTTP API
  (:class:`~repro.service.api.PlacementServer` on an ephemeral port);
  p50/p99 latency recorded, and the served score must deserialize to
  exactly what the direct scorer computes (the oracle's tier-0
  service check).

Writes ``BENCH_service.json`` and exits non-zero on regression, with
the same failure-class split as ``bench_search.py``:

- exit **1** — a *performance* floor was missed (throughput or cached
  speedup too small);
- exit **2** — a *correctness* divergence: the pooled or HTTP path
  disagreed with the direct path, reported as a
  :class:`repro.verify.oracles.DivergenceReport` on stdout and in the
  results JSON.

``--check`` re-validates an existing results file against the floors
(and its stored correctness verdicts) without re-running anything.

Usage:
    python scripts/bench_service.py [--smoke] [--output PATH]
    python scripts/bench_service.py --check [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.spec import EnsembleSpec, default_member  # noqa: E402
from repro.scheduler.objectives import score_placement  # noqa: E402
from repro.service.api import make_server  # noqa: E402
from repro.service.client import PlacementClient  # noqa: E402
from repro.service.schemas import (  # noqa: E402
    PlacementRequest,
    canonical_digest,
    score_from_dict,
)
from repro.service.workers import (  # noqa: E402
    PlacementService,
    execute_request,
)
from repro.verify.oracles import (  # noqa: E402
    DivergenceReport,
    MetricCheck,
)

#: required floors — the regression gates CI enforces.
THROUGHPUT_FLOOR = 50.0  # sustained jobs/s through the pool
CACHED_SPEEDUP_FLOOR = 10.0  # resubmission vs first computation

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"

WORKERS = 4


def _bench_spec() -> EnsembleSpec:
    return EnsembleSpec(
        "bench-service",
        (
            default_member("em1", num_analyses=2, n_steps=4),
            default_member("em2", num_analyses=1, n_steps=4),
        ),
    )


def _job_batch(num_jobs: int) -> list:
    """``num_jobs`` distinct search requests of identical difficulty.

    ``base_seed`` enters the canonical digest but not the failure-free
    search, so varying it yields distinct cache keys over the same
    workload — every job computes, none coalesce.
    """
    spec = _bench_spec()
    return [
        PlacementRequest(
            kind="search", spec=spec, num_nodes=4, base_seed=seed
        )
        for seed in range(num_jobs)
    ]


def _drain(service: PlacementService, requests: list) -> dict:
    """Submit every request; wait for all; results by digest."""
    jobs = [service.submit(r) for r in requests]
    return {
        job.digest: service.wait(job.id, timeout=120.0)
        for job in jobs
    }


def bench_throughput(num_jobs: int) -> tuple:
    """Pooled first pass (throughput) + resubmission (cached) pass."""
    requests = _job_batch(num_jobs)

    # serial reference: one uncached execution per distinct request
    serial = {
        canonical_digest(r): execute_request(r) for r in requests
    }

    service = PlacementService(workers=WORKERS)
    with service:
        t0 = time.perf_counter()
        pooled = _drain(service, requests)
        t_pool = time.perf_counter() - t0

        t0 = time.perf_counter()
        resubmitted = _drain(service, requests)
        t_cached = time.perf_counter() - t0
        cache_stats = service.result_cache.stats()

    pooled_payloads = {d: job.result for d, job in pooled.items()}
    all_cached = all(job.cached for job in resubmitted.values())
    cached_payloads = {d: job.result for d, job in resubmitted.items()}

    report = DivergenceReport(
        scenario="bench-service-pool",
        checks=(
            MetricCheck(
                "service",
                "pool_matches_serial",
                "serial-vs-pool",
                1.0,
                1.0 if pooled_payloads == serial else 0.0,
                0.0,
            ),
            MetricCheck(
                "service",
                "resubmission_matches_serial",
                "serial-vs-cached",
                1.0,
                1.0 if cached_payloads == serial else 0.0,
                0.0,
            ),
            MetricCheck(
                "service",
                "all_resubmissions_cached",
                "cache-vs-queue",
                1.0,
                1.0 if all_cached else 0.0,
                0.0,
            ),
        ),
    )

    row = {
        "jobs": num_jobs,
        "workers": WORKERS,
        "pool_seconds": t_pool,
        "throughput_jobs_per_s": num_jobs / t_pool,
        "cached_seconds": t_cached,
        "cached_speedup": t_pool / t_cached,
        "result_cache": cache_stats,
    }
    return row, report


def bench_rank_des(trials: int) -> tuple:
    """One DES-rank job through the pool, with its engine counters.

    The request routes through the batched delta-replay engine
    (``rank_method="des"``); the pooled payload must equal a direct
    :func:`~repro.service.workers.execute_request` pass exactly, and
    the service's ``/stats`` counters must account for every baseline
    sim and replayed replica.
    """
    from repro.configs.generator import enumerate_placements
    from repro.faults.batched import reset_engine_counters

    spec = _bench_spec()
    pool = list(enumerate_placements(spec, 2, 32))
    candidates = {f"c{i}": p for i, p in enumerate(pool[:3])}
    request = PlacementRequest(
        kind="rank",
        spec=spec,
        num_nodes=2,
        candidates=candidates,
        robust_rate=0.08,
        rank_method="des",
        trials=trials,
    )
    direct = execute_request(request)

    reset_engine_counters()
    service = PlacementService(workers=WORKERS)
    with service:
        t0 = time.perf_counter()
        job = service.wait(service.submit(request).id, timeout=120.0)
        seconds = time.perf_counter() - t0
        counters = service.stats()["batched"]

    report = DivergenceReport(
        scenario="bench-service-rank-des",
        checks=(
            MetricCheck(
                "service",
                "rank_matches_direct",
                "serial-vs-pool",
                1.0,
                1.0 if job.result == direct else 0.0,
                0.0,
            ),
            MetricCheck(
                "service",
                "baseline_sims",
                "stats-vs-request",
                float(len(candidates)),
                float(counters["baseline_sims"]),
                0.0,
            ),
            MetricCheck(
                "service",
                "replicas_replayed",
                "stats-vs-request",
                float(len(candidates) * trials),
                float(counters["replicas_replayed"]),
                0.0,
            ),
        ),
    )

    row = {
        "candidates": len(candidates),
        "trials": trials,
        "seconds": seconds,
        "counters": counters,
    }
    return row, report


def bench_http(num_requests: int) -> tuple:
    """Submit+wait round trips over real sockets; p50/p99 latency."""
    spec = _bench_spec()
    request = PlacementRequest(kind="search", spec=spec, num_nodes=4)

    with make_server(port=0, workers=WORKERS) as server:
        client = PlacementClient(server.url)
        # first round trip computes; the rest are cache hits — the
        # latency distribution reflects the served (steady-state) path
        first = client.wait(client.submit(request)["id"], timeout=120.0)
        latencies = []
        for _ in range(num_requests):
            t0 = time.perf_counter()
            snapshot = client.wait(
                client.submit(request)["id"], timeout=120.0
            )
            latencies.append(time.perf_counter() - t0)
        served = score_from_dict(snapshot["result"]["score"])

    direct = score_placement(spec, served.placement)
    report = DivergenceReport(
        scenario="bench-service-http",
        checks=(
            MetricCheck(
                "service",
                "objective",
                "score-vs-service",
                direct.objective,
                served.objective,
                0.0,
            ),
            MetricCheck(
                "service",
                "makespan",
                "score-vs-service",
                direct.ensemble_makespan,
                served.ensemble_makespan,
                0.0,
            ),
            MetricCheck(
                "service",
                "first_vs_cached_payload",
                "compute-vs-cache",
                1.0,
                1.0 if snapshot["result"] == first["result"] else 0.0,
                0.0,
            ),
        ),
    )

    latencies.sort()
    row = {
        "requests": num_requests,
        "p50_ms": 1000 * statistics.median(latencies),
        "p99_ms": 1000 * latencies[int(0.99 * (len(latencies) - 1))],
        "mean_ms": 1000 * statistics.fmean(latencies),
    }
    return row, report


def run(smoke: bool) -> dict:
    # warm the search path so the timed pass measures steady state
    execute_request(_job_batch(1)[0])

    throughput, pool_report = bench_throughput(
        num_jobs=40 if smoke else 200
    )
    rank_des, rank_report = bench_rank_des(trials=4 if smoke else 8)
    http, http_report = bench_http(num_requests=20 if smoke else 100)
    return {
        "benchmark": "service",
        "mode": "smoke" if smoke else "full",
        "floors": {
            "throughput_jobs_per_s": THROUGHPUT_FLOOR,
            "cached_speedup": CACHED_SPEEDUP_FLOOR,
        },
        "throughput": throughput,
        "rank_des": rank_des,
        "http": http,
        "correctness": [
            pool_report.to_dict(),
            rank_report.to_dict(),
            http_report.to_dict(),
        ],
    }


def check_correctness(results: dict) -> bool:
    """Print stored divergence reports; False on any divergence."""
    ok = True
    for payload in results.get("correctness", []):
        status = "ok" if payload["passed"] else "DIVERGED"
        print(
            f"{payload['scenario']}: correctness {status} "
            f"({payload['num_checks']} checks, "
            f"{payload['num_failures']} failures)"
        )
        for failure in payload["failures"]:
            print(
                f"  FAIL [{failure['paths']}] "
                f"{failure['scope']}/{failure['metric']}: "
                f"ref={failure['reference']!r} got={failure['candidate']!r}"
            )
        if not payload["passed"]:
            ok = False
    return ok


def check_floors(results: dict) -> bool:
    ok = True
    throughput = results["throughput"]["throughput_jobs_per_s"]
    status = "ok" if throughput >= THROUGHPUT_FLOOR else "BELOW FLOOR"
    print(
        f"throughput: {throughput:.0f} jobs/s "
        f"(floor {THROUGHPUT_FLOOR:.0f}) {status}"
    )
    if throughput < THROUGHPUT_FLOOR:
        ok = False
    speedup = results["throughput"]["cached_speedup"]
    status = "ok" if speedup >= CACHED_SPEEDUP_FLOOR else "BELOW FLOOR"
    print(
        f"cached: {speedup:.1f}x "
        f"(floor {CACHED_SPEEDUP_FLOOR:.0f}x) {status}"
    )
    if speedup < CACHED_SPEEDUP_FLOOR:
        ok = False
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the placement service."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller batches (CI smoke run)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing results file against the floors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"results file (default: {DEFAULT_OUTPUT.name})",
    )
    args = parser.parse_args()

    if args.check:
        if not args.output.exists():
            print(f"no results file at {args.output}", file=sys.stderr)
            return 1
        results = json.loads(args.output.read_text())
        if not check_correctness(results):
            return 2
        return 0 if check_floors(results) else 1

    results = run(smoke=args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"pool: {results['throughput']['jobs']} jobs on "
        f"{results['throughput']['workers']} workers in "
        f"{results['throughput']['pool_seconds']:.2f}s; resubmission "
        f"{results['throughput']['cached_seconds']:.3f}s"
    )
    rank = results["rank_des"]
    print(
        f"rank-des: {rank['candidates']} candidates x {rank['trials']} "
        f"replicas in {rank['seconds']:.2f}s "
        f"({rank['counters']['baseline_sims']} baseline sims, "
        f"{rank['counters']['replicas_replayed']} replicas replayed)"
    )
    print(
        f"http: p50 {results['http']['p50_ms']:.1f}ms, "
        f"p99 {results['http']['p99_ms']:.1f}ms over "
        f"{results['http']['requests']} round trips"
    )
    if not check_correctness(results):
        return 2
    return 0 if check_floors(results) else 1


if __name__ == "__main__":
    sys.exit(main())
