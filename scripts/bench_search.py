#!/usr/bin/env python
"""Benchmark the fast placement-search engine against the seed paths.

Three measurements, each with a built-in exactness check:

- **exhaustive**: :func:`repro.search.engine.find_best_placement`
  (canonical enumeration + stage cache) against the seed loop
  (product-then-dedup enumerator, per-candidate
  :func:`~repro.scheduler.objectives.score_placement`). Same winner,
  same floats, same candidate count — asserted to 1e-12 before any
  speedup is reported.
- **annealing**: :class:`~repro.scheduler.annealing
  .SimulatedAnnealingPolicy` with incremental (delta) evaluation
  against the same schedule re-scoring every candidate in full.
  Identical placements and move statistics are asserted.
- **scaling**: the vectorized branch-and-bound search
  (:func:`~repro.search.vectorized.find_best_placement_vectorized`)
  over a nodes x members grid. Each cell times the raw column kernel
  on a capped candidate stream *and* the full search (scored + pruned
  must equal the closed-form canonical count); the table is gated on
  a search-throughput floor, on a fitted growth exponent of kernel
  time versus batch size (the scaling law — see ``docs/SCALING.md``),
  and on covering at least :data:`SCALING_MIN_NODE_SIZES` node sizes.
  A small cell is re-searched by the scalar engine and must return
  the identical winner.

Writes ``BENCH_search.json`` (exhaustive speedup, annealing speedup,
the scaling table, problem sizes, floors, correctness reports) and
exits non-zero on regression — so CI can run
``python scripts/bench_search.py --quick`` as a regression gate. The
two failure classes are never confused:

- exit **1** — a *performance* floor was missed (speedup too small);
- exit **2** — a *correctness* divergence: the fast path disagreed
  with the seed path, reported as a
  :class:`repro.verify.oracles.DivergenceReport` on stdout and in the
  results JSON.

``--check`` re-validates an existing results file against the floors
(and its stored correctness verdicts) without re-running anything.

Usage:
    python scripts/bench_search.py [--quick] [--output PATH]
    python scripts/bench_search.py --check [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.runtime.spec import EnsembleSpec, default_member  # noqa: E402
from repro.scheduler.annealing import (  # noqa: E402
    SimulatedAnnealingPolicy,
)
from repro.scheduler.objectives import score_placement  # noqa: E402
from repro.search import find_best_placement  # noqa: E402
from repro.search.canonical import (  # noqa: E402
    component_core_demands,
    count_canonical_assignments,
    iter_assignment_chunks,
)
from repro.search.reference import (  # noqa: E402
    enumerate_placements_reference,
)
from repro.search.vectorized import (  # noqa: E402
    VectorizedScorer,
    find_best_placement_vectorized,
)
from repro.verify.oracles import (  # noqa: E402
    DivergenceReport,
    MetricCheck,
)

#: required speedups — the regression floors CI enforces.
EXHAUSTIVE_FLOOR = 10.0
ANNEALING_FLOOR = 5.0

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_search.json"

CORES_PER_NODE = 32

#: the scaling sweep's node-budget axis — node-count invariance is the
#: point: canonical labels never exceed the component count, so cells
#: along this axis cost the same per candidate from 8 nodes to 512.
SCALING_NODE_SIZES = (8, 32, 128, 512)
#: member-count axis (the size axis that actually grows the space).
#: Full mode adds the 4-member column whose ~1.1M-candidate cells are
#: where the branch-and-bound throughput floor is demonstrated.
SCALING_MEMBERS_QUICK = (2, 3)
SCALING_MEMBERS_FULL = (2, 3, 4)
#: per-cell cap on raw-kernel rows (the timed batch-scoring stream);
#: the branch-and-bound search itself always covers the full space.
SCALING_KERNEL_CAP_QUICK = 40_000
SCALING_KERNEL_CAP_FULL = 400_000
#: search-throughput floors (candidates dispatched — scored or pruned
#: in closed form — per second of ``find_best_placement_vectorized``,
#: best cell). Quick mode's grid tops out at ~10k-candidate cells
#: where fixed setup dominates, hence the lower bar.
SCALING_THROUGHPUT_FLOOR_FULL = 1.0e6
SCALING_THROUGHPUT_FLOOR_QUICK = 1.0e5
#: ceiling on the fitted growth exponent of kernel seconds vs batch
#: rows (log-log least squares): the kernel must stay essentially
#: linear in the candidate count.
SCALING_EXPONENT_CEILING = 1.35
#: minimum distinct node sizes the table must cover.
SCALING_MIN_NODE_SIZES = 4
#: the exponent fit needs genuinely different sizes: cells are pooled
#: per distinct row count and the largest/smallest pooled size must
#: differ by at least this factor, else the slope is timer noise.
SCALING_FIT_MIN_SPAN = 4.0

#: the markdown scaling table, shared with ``docs/SCALING.md`` — the
#: docs' worked example is golden-tested against these exact strings.
SCALING_HEADER = (
    "| nodes | members | candidates | scored | pruned "
    "| seconds | cand/s |"
)
SCALING_RULE = "|---|---|---|---|---|---|---|"
#: a representative full-mode cell, used verbatim in the docs.
SCALING_EXAMPLE_ROW = {
    "nodes": 512,
    "members": 4,
    "candidates": 1160822,
    "scored": 28599,
    "pruned": 1132223,
    "search_seconds": 0.082,
    "cand_per_s": 1.41e7,
}


def format_scaling_row(row: dict) -> str:
    """One markdown row of the scaling table (docs-golden format)."""
    return (
        f"| {row['nodes']} | {row['members']} | {row['candidates']} "
        f"| {row['scored']} | {row['pruned']} "
        f"| {row['search_seconds']:.3f} | {row['cand_per_s']:.2e} |"
    )


def _exhaustive_spec() -> EnsembleSpec:
    return EnsembleSpec(
        "bench-exhaustive",
        (
            default_member("em1", num_analyses=2, n_steps=6),
            default_member("em2", num_analyses=1, n_steps=6),
            default_member("em3", num_analyses=1, n_steps=6),
        ),
    )


def _annealing_spec() -> EnsembleSpec:
    return EnsembleSpec(
        "bench-annealing",
        tuple(
            default_member(
                f"em{i}", num_analyses=2 if i % 2 else 1, n_steps=6
            )
            for i in range(5)
        ),
    )


def bench_exhaustive(num_nodes: int) -> tuple:
    """Seed search loop vs the canonical+cached engine, one budget."""
    spec = _exhaustive_spec()

    t0 = time.perf_counter()
    seed_best = None
    seed_evaluated = 0
    for placement in enumerate_placements_reference(
        spec, num_nodes, CORES_PER_NODE
    ):
        score = score_placement(spec, placement)
        seed_evaluated += 1
        if seed_best is None or score > seed_best:
            seed_best = score
    t_seed = time.perf_counter() - t0

    from repro.search.cache import StageCache

    stage_cache = StageCache()
    t0 = time.perf_counter()
    fast_best, fast_evaluated = find_best_placement(
        spec, num_nodes, CORES_PER_NODE, cache=stage_cache
    )
    t_fast = time.perf_counter() - t0

    assert seed_best is not None
    report = DivergenceReport(
        scenario="bench-exhaustive",
        checks=(
            MetricCheck(
                "ensemble",
                "candidates",
                "seed-vs-fast",
                float(seed_evaluated),
                float(fast_evaluated),
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "same_placement",
                "seed-vs-fast",
                1.0,
                1.0 if fast_best.placement == seed_best.placement else 0.0,
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "objective",
                "seed-vs-fast",
                seed_best.objective,
                fast_best.objective,
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "makespan",
                "seed-vs-fast",
                seed_best.ensemble_makespan,
                fast_best.ensemble_makespan,
                0.0,
            ),
        ),
    )

    row = {
        "num_nodes": num_nodes,
        "cores_per_node": CORES_PER_NODE,
        "candidates": seed_evaluated,
        "seed_seconds": t_seed,
        "fast_seconds": t_fast,
        "speedup": t_seed / t_fast,
        "objective": fast_best.objective,
        "stage_cache": stage_cache.stats(),
    }
    return row, report


def bench_annealing(seed: int = 0) -> tuple:
    """Full re-scoring annealer vs the delta-evaluation annealer."""
    spec = _annealing_spec()
    num_nodes = 6
    kwargs = dict(
        seed=seed, plateau=30, cooling=0.9, min_temperature_ratio=1e-3
    )

    full = SimulatedAnnealingPolicy(incremental=False, **kwargs)
    t0 = time.perf_counter()
    full_placement = full.place(spec, num_nodes, CORES_PER_NODE)
    t_full = time.perf_counter() - t0

    fast = SimulatedAnnealingPolicy(incremental=True, **kwargs)
    t0 = time.perf_counter()
    fast_placement = fast.place(spec, num_nodes, CORES_PER_NODE)
    t_fast = time.perf_counter() - t0

    report = DivergenceReport(
        scenario="bench-annealing",
        checks=(
            MetricCheck(
                "ensemble",
                "same_placement",
                "full-vs-incremental",
                1.0,
                1.0 if fast_placement == full_placement else 0.0,
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "evaluations",
                "full-vs-incremental",
                float(full.stats.evaluations),
                float(fast.stats.evaluations),
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "accepted",
                "full-vs-incremental",
                float(full.stats.accepted),
                float(fast.stats.accepted),
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "improved",
                "full-vs-incremental",
                float(full.stats.improved),
                float(fast.stats.improved),
                0.0,
            ),
        ),
    )

    row = {
        "num_nodes": num_nodes,
        "cores_per_node": CORES_PER_NODE,
        "seed": seed,
        "evaluations": fast.stats.evaluations,
        "full_seconds": t_full,
        "incremental_seconds": t_fast,
        "speedup": t_full / t_fast,
    }
    return row, report


def _scaling_spec(num_members: int) -> EnsembleSpec:
    return EnsembleSpec(
        f"bench-scaling-{num_members}",
        tuple(
            default_member(f"em{i}", num_analyses=2, n_steps=6)
            for i in range(num_members)
        ),
    )


def bench_scaling_cell(
    num_members: int, num_nodes: int, kernel_cap: int
) -> dict:
    """One (members, nodes) cell: raw kernel timing + full B&B search."""
    spec = _scaling_spec(num_members)
    cores = component_core_demands(spec)
    candidates = count_canonical_assignments(
        cores, num_nodes, CORES_PER_NODE
    )

    # raw column-kernel throughput over a capped candidate stream;
    # chunks are materialized first so the timing covers scoring only
    chunks = []
    rows = 0
    for chunk in iter_assignment_chunks(
        cores, num_nodes, CORES_PER_NODE, chunk_size=16384
    ):
        take = min(chunk.shape[0], kernel_cap - rows)
        chunks.append(chunk[:take])
        rows += take
        if rows >= kernel_cap:
            break
    scorer = VectorizedScorer(spec, num_nodes)
    scorer.score_chunk(chunks[0])  # warm the signature-code table
    # repeat tiny cells so each measurement spans milliseconds
    repeats = max(1, 20_000 // max(rows, 1))
    t0 = time.perf_counter()
    for _ in range(repeats):
        for chunk in chunks:
            scorer.score_chunk(chunk)
    kernel_seconds = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    result = find_best_placement_vectorized(
        spec, num_nodes, CORES_PER_NODE
    )
    search_seconds = time.perf_counter() - t0
    assert result.scored + result.pruned == candidates, (
        f"B&B accounting mismatch: {result.scored}+{result.pruned} "
        f"!= {candidates}"
    )

    return {
        "nodes": num_nodes,
        "members": num_members,
        "candidates": candidates,
        "kernel_rows": rows,
        "kernel_seconds": kernel_seconds,
        "kernel_rows_per_s": rows / kernel_seconds,
        "scored": result.scored,
        "pruned": result.pruned,
        "search_seconds": search_seconds,
        "cand_per_s": (result.scored + result.pruned) / search_seconds,
        "objective": result.best.objective,
        "assessed_codes": scorer.assessed_codes,
    }


def fit_growth_exponent(rows: list) -> float | None:
    """Log-log slope of kernel seconds vs kernel rows across cells.

    Cells are pooled per distinct row count (node-size variations of
    the same member count score the same stream, so their timings are
    repeated measurements of one size, not new sizes) and the slope is
    fit over the pooled geometric means. Returns None when the pooled
    sizes span less than :data:`SCALING_FIT_MIN_SPAN` — a slope over
    near-identical sizes would be pure timer noise.
    """
    pooled: dict = {}
    for r in rows:
        if r["kernel_rows"] > 0 and r["kernel_seconds"] > 0:
            pooled.setdefault(r["kernel_rows"], []).append(
                r["kernel_seconds"]
            )
    if len(pooled) < 2:
        return None
    sizes = sorted(pooled)
    if sizes[-1] < SCALING_FIT_MIN_SPAN * sizes[0]:
        return None
    x = np.log(sizes)
    y = [np.mean(np.log(pooled[s])) for s in sizes]
    return float(np.polyfit(x, y, 1)[0])


def bench_scaling(quick: bool) -> tuple:
    """The nodes x members sweep plus its exactness report."""
    members_axis = SCALING_MEMBERS_QUICK if quick else SCALING_MEMBERS_FULL
    kernel_cap = (
        SCALING_KERNEL_CAP_QUICK if quick else SCALING_KERNEL_CAP_FULL
    )
    rows = [
        bench_scaling_cell(m, n, kernel_cap)
        for m in members_axis
        for n in SCALING_NODE_SIZES
    ]

    # correctness cell: the vectorized B&B winner must be the scalar
    # engine's winner, bit for bit, with the full space accounted for
    check_spec = _scaling_spec(2)
    check_nodes = 4
    vec = find_best_placement_vectorized(
        check_spec, check_nodes, CORES_PER_NODE
    )
    scalar_best, scalar_evaluated = find_best_placement(
        check_spec, check_nodes, CORES_PER_NODE
    )
    report = DivergenceReport(
        scenario="bench-scaling",
        checks=(
            MetricCheck(
                "ensemble",
                "candidates",
                "scalar-vs-vectorized",
                float(scalar_evaluated),
                float(vec.scored + vec.pruned),
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "same_placement",
                "scalar-vs-vectorized",
                1.0,
                1.0 if vec.best.placement == scalar_best.placement else 0.0,
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "objective",
                "scalar-vs-vectorized",
                scalar_best.objective,
                vec.best.objective,
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "makespan",
                "scalar-vs-vectorized",
                scalar_best.ensemble_makespan,
                vec.best.ensemble_makespan,
                0.0,
            ),
        ),
    )

    section = {
        "node_sizes": list(SCALING_NODE_SIZES),
        "members_axis": list(members_axis),
        "kernel_cap": kernel_cap,
        "floors": {
            "throughput": (
                SCALING_THROUGHPUT_FLOOR_QUICK
                if quick
                else SCALING_THROUGHPUT_FLOOR_FULL
            ),
            "exponent": SCALING_EXPONENT_CEILING,
            "min_node_sizes": SCALING_MIN_NODE_SIZES,
        },
        "rows": rows,
        "growth_exponent": fit_growth_exponent(rows),
        "best_cand_per_s": max(r["cand_per_s"] for r in rows),
    }
    return section, report


def format_scaling_table(rows: list) -> str:
    """The full markdown table (as uploaded by the CI artifact)."""
    lines = [SCALING_HEADER, SCALING_RULE]
    lines.extend(format_scaling_row(r) for r in rows)
    return "\n".join(lines)


def run(quick: bool) -> dict:
    # warm both code paths (imports, numpy, profile construction) so
    # the timings compare steady-state costs, not first-call overheads
    warm = EnsembleSpec(
        "warm", (default_member("em1", n_steps=4),)
    )
    find_best_placement(warm, 2, CORES_PER_NODE)
    next(iter(enumerate_placements_reference(warm, 2, CORES_PER_NODE)))
    score_placement(
        warm, find_best_placement(warm, 2, CORES_PER_NODE)[0].placement
    )

    exhaustive, exhaustive_report = bench_exhaustive(
        num_nodes=6 if quick else 7
    )
    annealing, annealing_report = bench_annealing()
    scaling, scaling_report = bench_scaling(quick)
    return {
        "benchmark": "search",
        "mode": "quick" if quick else "full",
        "floors": {
            "exhaustive": EXHAUSTIVE_FLOOR,
            "annealing": ANNEALING_FLOOR,
        },
        "exhaustive": exhaustive,
        "annealing": annealing,
        "scaling": scaling,
        "correctness": [
            exhaustive_report.to_dict(),
            annealing_report.to_dict(),
            scaling_report.to_dict(),
        ],
    }


def check_correctness(results: dict) -> bool:
    """Print stored divergence reports; False on any divergence."""
    ok = True
    for payload in results.get("correctness", []):
        status = "ok" if payload["passed"] else "DIVERGED"
        print(
            f"{payload['scenario']}: correctness {status} "
            f"({payload['num_checks']} checks, "
            f"{payload['num_failures']} failures)"
        )
        for failure in payload["failures"]:
            print(
                f"  FAIL [{failure['paths']}] "
                f"{failure['scope']}/{failure['metric']}: "
                f"ref={failure['reference']!r} got={failure['candidate']!r}"
            )
        if not payload["passed"]:
            ok = False
    return ok


def check_floors(results: dict) -> bool:
    ok = True
    for section, floor in (
        ("exhaustive", EXHAUSTIVE_FLOOR),
        ("annealing", ANNEALING_FLOOR),
    ):
        speedup = results[section]["speedup"]
        status = "ok" if speedup >= floor else "BELOW FLOOR"
        print(
            f"{section}: {speedup:.1f}x "
            f"(floor {floor:.0f}x) {status}"
        )
        if speedup < floor:
            ok = False
    return check_scaling_floors(results) and ok


def check_scaling_floors(results: dict) -> bool:
    """Gate the scaling table: throughput, growth exponent, coverage.

    Floors are read from the results file itself (quick and full runs
    carry different throughput bars), so ``--check`` re-validates any
    stored table against the bars it was produced under.
    """
    scaling = results.get("scaling")
    if scaling is None:
        print("scaling: MISSING section")
        return False
    ok = True
    floors = scaling["floors"]

    node_sizes = {r["nodes"] for r in scaling["rows"]}
    coverage_ok = len(node_sizes) >= floors["min_node_sizes"]
    print(
        f"scaling: {len(scaling['rows'])} cells over "
        f"{len(node_sizes)} node sizes "
        f"(floor {floors['min_node_sizes']}) "
        f"{'ok' if coverage_ok else 'BELOW FLOOR'}"
    )
    ok = ok and coverage_ok

    best = scaling["best_cand_per_s"]
    throughput_ok = best >= floors["throughput"]
    print(
        f"scaling: best search throughput {best:.2e} cand/s "
        f"(floor {floors['throughput']:.0e}) "
        f"{'ok' if throughput_ok else 'BELOW FLOOR'}"
    )
    ok = ok and throughput_ok

    exponent = scaling["growth_exponent"]
    if exponent is None:
        print("scaling: growth exponent not fittable (too few sizes)")
        ok = False
    else:
        exponent_ok = exponent <= floors["exponent"]
        print(
            f"scaling: growth exponent {exponent:.3f} "
            f"(ceiling {floors['exponent']:g}) "
            f"{'ok' if exponent_ok else 'ABOVE CEILING'}"
        )
        ok = ok and exponent_ok
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the placement-search engine."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller exhaustive budget (CI smoke run)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing results file against the floors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"results file (default: {DEFAULT_OUTPUT.name})",
    )
    args = parser.parse_args()

    if args.check:
        if not args.output.exists():
            print(f"no results file at {args.output}", file=sys.stderr)
            return 1
        results = json.loads(args.output.read_text())
        if not check_correctness(results):
            return 2
        return 0 if check_floors(results) else 1

    results = run(quick=args.quick)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"exhaustive: {results['exhaustive']['candidates']} candidates, "
        f"seed {results['exhaustive']['seed_seconds']:.2f}s -> fast "
        f"{results['exhaustive']['fast_seconds']:.2f}s"
    )
    cache_stats = results["exhaustive"]["stage_cache"]
    print(
        f"  stage cache: {cache_stats['stage_hits']} hits / "
        f"{cache_stats['stage_misses']} misses (member level), "
        f"{cache_stats['node_hits']} / {cache_stats['node_misses']} "
        f"(node level)"
    )
    print(
        f"annealing: {results['annealing']['evaluations']} evaluations, "
        f"full {results['annealing']['full_seconds']:.2f}s -> "
        f"incremental {results['annealing']['incremental_seconds']:.2f}s"
    )
    print(format_scaling_table(results["scaling"]["rows"]))
    if not check_correctness(results):
        return 2
    return 0 if check_floors(results) else 1


if __name__ == "__main__":
    sys.exit(main())
