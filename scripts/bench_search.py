#!/usr/bin/env python
"""Benchmark the fast placement-search engine against the seed paths.

Two measurements, each with a built-in exactness check:

- **exhaustive**: :func:`repro.search.engine.find_best_placement`
  (canonical enumeration + stage cache) against the seed loop
  (product-then-dedup enumerator, per-candidate
  :func:`~repro.scheduler.objectives.score_placement`). Same winner,
  same floats, same candidate count — asserted to 1e-12 before any
  speedup is reported.
- **annealing**: :class:`~repro.scheduler.annealing
  .SimulatedAnnealingPolicy` with incremental (delta) evaluation
  against the same schedule re-scoring every candidate in full.
  Identical placements and move statistics are asserted.

Writes ``BENCH_search.json`` (exhaustive speedup, annealing speedup,
problem sizes, floors, correctness reports) and exits non-zero on
regression — so CI can run ``python scripts/bench_search.py --quick``
as a regression gate. The two failure classes are never confused:

- exit **1** — a *performance* floor was missed (speedup too small);
- exit **2** — a *correctness* divergence: the fast path disagreed
  with the seed path, reported as a
  :class:`repro.verify.oracles.DivergenceReport` on stdout and in the
  results JSON.

``--check`` re-validates an existing results file against the floors
(and its stored correctness verdicts) without re-running anything.

Usage:
    python scripts/bench_search.py [--quick] [--output PATH]
    python scripts/bench_search.py --check [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.spec import EnsembleSpec, default_member  # noqa: E402
from repro.scheduler.annealing import (  # noqa: E402
    SimulatedAnnealingPolicy,
)
from repro.scheduler.objectives import score_placement  # noqa: E402
from repro.search import find_best_placement  # noqa: E402
from repro.search.reference import (  # noqa: E402
    enumerate_placements_reference,
)
from repro.verify.oracles import (  # noqa: E402
    DivergenceReport,
    MetricCheck,
)

#: required speedups — the regression floors CI enforces.
EXHAUSTIVE_FLOOR = 10.0
ANNEALING_FLOOR = 5.0

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_search.json"

CORES_PER_NODE = 32


def _exhaustive_spec() -> EnsembleSpec:
    return EnsembleSpec(
        "bench-exhaustive",
        (
            default_member("em1", num_analyses=2, n_steps=6),
            default_member("em2", num_analyses=1, n_steps=6),
            default_member("em3", num_analyses=1, n_steps=6),
        ),
    )


def _annealing_spec() -> EnsembleSpec:
    return EnsembleSpec(
        "bench-annealing",
        tuple(
            default_member(
                f"em{i}", num_analyses=2 if i % 2 else 1, n_steps=6
            )
            for i in range(5)
        ),
    )


def bench_exhaustive(num_nodes: int) -> tuple:
    """Seed search loop vs the canonical+cached engine, one budget."""
    spec = _exhaustive_spec()

    t0 = time.perf_counter()
    seed_best = None
    seed_evaluated = 0
    for placement in enumerate_placements_reference(
        spec, num_nodes, CORES_PER_NODE
    ):
        score = score_placement(spec, placement)
        seed_evaluated += 1
        if seed_best is None or score > seed_best:
            seed_best = score
    t_seed = time.perf_counter() - t0

    from repro.search.cache import StageCache

    stage_cache = StageCache()
    t0 = time.perf_counter()
    fast_best, fast_evaluated = find_best_placement(
        spec, num_nodes, CORES_PER_NODE, cache=stage_cache
    )
    t_fast = time.perf_counter() - t0

    assert seed_best is not None
    report = DivergenceReport(
        scenario="bench-exhaustive",
        checks=(
            MetricCheck(
                "ensemble",
                "candidates",
                "seed-vs-fast",
                float(seed_evaluated),
                float(fast_evaluated),
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "same_placement",
                "seed-vs-fast",
                1.0,
                1.0 if fast_best.placement == seed_best.placement else 0.0,
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "objective",
                "seed-vs-fast",
                seed_best.objective,
                fast_best.objective,
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "makespan",
                "seed-vs-fast",
                seed_best.ensemble_makespan,
                fast_best.ensemble_makespan,
                0.0,
            ),
        ),
    )

    row = {
        "num_nodes": num_nodes,
        "cores_per_node": CORES_PER_NODE,
        "candidates": seed_evaluated,
        "seed_seconds": t_seed,
        "fast_seconds": t_fast,
        "speedup": t_seed / t_fast,
        "objective": fast_best.objective,
        "stage_cache": stage_cache.stats(),
    }
    return row, report


def bench_annealing(seed: int = 0) -> tuple:
    """Full re-scoring annealer vs the delta-evaluation annealer."""
    spec = _annealing_spec()
    num_nodes = 6
    kwargs = dict(
        seed=seed, plateau=30, cooling=0.9, min_temperature_ratio=1e-3
    )

    full = SimulatedAnnealingPolicy(incremental=False, **kwargs)
    t0 = time.perf_counter()
    full_placement = full.place(spec, num_nodes, CORES_PER_NODE)
    t_full = time.perf_counter() - t0

    fast = SimulatedAnnealingPolicy(incremental=True, **kwargs)
    t0 = time.perf_counter()
    fast_placement = fast.place(spec, num_nodes, CORES_PER_NODE)
    t_fast = time.perf_counter() - t0

    report = DivergenceReport(
        scenario="bench-annealing",
        checks=(
            MetricCheck(
                "ensemble",
                "same_placement",
                "full-vs-incremental",
                1.0,
                1.0 if fast_placement == full_placement else 0.0,
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "evaluations",
                "full-vs-incremental",
                float(full.stats.evaluations),
                float(fast.stats.evaluations),
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "accepted",
                "full-vs-incremental",
                float(full.stats.accepted),
                float(fast.stats.accepted),
                0.0,
            ),
            MetricCheck(
                "ensemble",
                "improved",
                "full-vs-incremental",
                float(full.stats.improved),
                float(fast.stats.improved),
                0.0,
            ),
        ),
    )

    row = {
        "num_nodes": num_nodes,
        "cores_per_node": CORES_PER_NODE,
        "seed": seed,
        "evaluations": fast.stats.evaluations,
        "full_seconds": t_full,
        "incremental_seconds": t_fast,
        "speedup": t_full / t_fast,
    }
    return row, report


def run(quick: bool) -> dict:
    # warm both code paths (imports, numpy, profile construction) so
    # the timings compare steady-state costs, not first-call overheads
    warm = EnsembleSpec(
        "warm", (default_member("em1", n_steps=4),)
    )
    find_best_placement(warm, 2, CORES_PER_NODE)
    next(iter(enumerate_placements_reference(warm, 2, CORES_PER_NODE)))
    score_placement(
        warm, find_best_placement(warm, 2, CORES_PER_NODE)[0].placement
    )

    exhaustive, exhaustive_report = bench_exhaustive(
        num_nodes=6 if quick else 7
    )
    annealing, annealing_report = bench_annealing()
    return {
        "benchmark": "search",
        "mode": "quick" if quick else "full",
        "floors": {
            "exhaustive": EXHAUSTIVE_FLOOR,
            "annealing": ANNEALING_FLOOR,
        },
        "exhaustive": exhaustive,
        "annealing": annealing,
        "correctness": [
            exhaustive_report.to_dict(),
            annealing_report.to_dict(),
        ],
    }


def check_correctness(results: dict) -> bool:
    """Print stored divergence reports; False on any divergence."""
    ok = True
    for payload in results.get("correctness", []):
        status = "ok" if payload["passed"] else "DIVERGED"
        print(
            f"{payload['scenario']}: correctness {status} "
            f"({payload['num_checks']} checks, "
            f"{payload['num_failures']} failures)"
        )
        for failure in payload["failures"]:
            print(
                f"  FAIL [{failure['paths']}] "
                f"{failure['scope']}/{failure['metric']}: "
                f"ref={failure['reference']!r} got={failure['candidate']!r}"
            )
        if not payload["passed"]:
            ok = False
    return ok


def check_floors(results: dict) -> bool:
    ok = True
    for section, floor in (
        ("exhaustive", EXHAUSTIVE_FLOOR),
        ("annealing", ANNEALING_FLOOR),
    ):
        speedup = results[section]["speedup"]
        status = "ok" if speedup >= floor else "BELOW FLOOR"
        print(
            f"{section}: {speedup:.1f}x "
            f"(floor {floor:.0f}x) {status}"
        )
        if speedup < floor:
            ok = False
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the placement-search engine."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller exhaustive budget (CI smoke run)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing results file against the floors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"results file (default: {DEFAULT_OUTPUT.name})",
    )
    args = parser.parse_args()

    if args.check:
        if not args.output.exists():
            print(f"no results file at {args.output}", file=sys.stderr)
            return 1
        results = json.loads(args.output.read_text())
        if not check_correctness(results):
            return 2
        return 0 if check_floors(results) else 1

    results = run(quick=args.quick)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"exhaustive: {results['exhaustive']['candidates']} candidates, "
        f"seed {results['exhaustive']['seed_seconds']:.2f}s -> fast "
        f"{results['exhaustive']['fast_seconds']:.2f}s"
    )
    cache_stats = results["exhaustive"]["stage_cache"]
    print(
        f"  stage cache: {cache_stats['stage_hits']} hits / "
        f"{cache_stats['stage_misses']} misses (member level), "
        f"{cache_stats['node_hits']} / {cache_stats['node_misses']} "
        f"(node level)"
    )
    print(
        f"annealing: {results['annealing']['evaluations']} evaluations, "
        f"full {results['annealing']['full_seconds']:.2f}s -> "
        f"incremental {results['annealing']['incremental_seconds']:.2f}s"
    )
    if not check_correctness(results):
        return 2
    return 0 if check_floors(results) else 1


if __name__ == "__main__":
    sys.exit(main())
