#!/usr/bin/env python
"""Benchmark batched delta-replay robust ranking against serial DES.

One measurement with a built-in exactness check: rank the same
candidate placements under the same failure model and recovery policy

- **serially** — :func:`repro.scheduler.robust.rank_placements_robust`
  with ``engine="serial"``, re-simulating every fault replica as a
  full discrete-event execution (the seed path);
- **batched** — ``engine="batched"``, one fault-free DES per candidate
  plus closed-form delta replay of every fault schedule against the
  captured stage timeline (:mod:`repro.faults.batched`).

Retry recovery is exactly replayable, so before any speedup is
reported every candidate's robust objective, ideal objective, mean
inflation, and mean goodput must agree *bit for bit* — reported as a
:class:`repro.verify.oracles.DivergenceReport` exactly like the other
benchmark gates.

Writes ``BENCH_robust.json`` (ranking speedup, grid sizes, engine
counters, correctness report) and exits non-zero on regression:

- exit **1** — the >= 10x ranking-speedup floor was missed;
- exit **2** — a correctness divergence: the batched engine disagreed
  with serial DES replication.

``--check`` re-validates an existing results file against the floors
(and its stored correctness verdicts) without re-running anything.

Usage:
    python scripts/bench_robust.py [--smoke] [--output PATH]
    python scripts/bench_robust.py --check [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.configs.generator import enumerate_placements  # noqa: E402
from repro.faults.batched import (  # noqa: E402
    engine_counters,
    reset_engine_counters,
)
from repro.faults.recovery import RetryBackoffPolicy  # noqa: E402
from repro.runtime.spec import EnsembleSpec, default_member  # noqa: E402
from repro.scheduler.robust import (  # noqa: E402
    crash_straggler_factory,
    rank_placements_robust,
)
from repro.verify.oracles import (  # noqa: E402
    DivergenceReport,
    MetricCheck,
)

#: required ranking speedup — the regression floor CI enforces. Smoke
#: mode's small replica grid amortizes the per-candidate baseline sim
#: far less, hence the lower bar (same code path, same exactness gate).
RANKING_FLOOR = 10.0
RANKING_FLOOR_SMOKE = 2.0

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_robust.json"

NUM_NODES = 3
CORES_PER_NODE = 32
#: per-site per-step fault probability of the benchmark's model.
FAULT_RATE = 0.08
#: candidate placements ranked (evenly spaced over the canonical
#: enumeration so the shortlist spans packed through spread layouts).
NUM_CANDIDATES = 4

#: grid sizes: full mode is the gated measurement, smoke mode is the
#: CI sanity run (same code path, small enough for a PR gate).
TRIALS_FULL = 32
TRIALS_SMOKE = 6
N_STEPS_FULL = 16
N_STEPS_SMOKE = 8


def _spec(n_steps: int) -> EnsembleSpec:
    return EnsembleSpec(
        "bench-robust",
        (
            default_member("em1", num_analyses=2, n_steps=n_steps),
            default_member("em2", num_analyses=1, n_steps=n_steps),
            default_member("em3", num_analyses=1, n_steps=n_steps),
        ),
    )


def _candidates(spec: EnsembleSpec) -> dict:
    """An evenly spaced shortlist over the canonical placement space."""
    pool = list(enumerate_placements(spec, NUM_NODES, CORES_PER_NODE))
    stride = max(1, len(pool) // NUM_CANDIDATES)
    picked = pool[::stride][:NUM_CANDIDATES]
    return {f"c{i}": placement for i, placement in enumerate(picked)}


def bench_ranking(trials: int, n_steps: int) -> tuple:
    """Serial vs batched robust ranking of one candidate shortlist."""
    spec = _spec(n_steps)
    candidates = _candidates(spec)
    factory = crash_straggler_factory(FAULT_RATE)
    policy = RetryBackoffPolicy()
    common = dict(trials=trials, base_seed=0, method="des")

    t0 = time.perf_counter()
    serial = rank_placements_robust(
        spec, candidates, factory, policy, engine="serial", **common
    )
    t_serial = time.perf_counter() - t0

    reset_engine_counters()
    t0 = time.perf_counter()
    batched = rank_placements_robust(
        spec, candidates, factory, policy, engine="batched", **common
    )
    t_batched = time.perf_counter() - t0
    counters = engine_counters()

    checks = [
        MetricCheck(
            "ensemble",
            "candidates",
            "serial-vs-batched",
            float(len(serial)),
            float(len(batched)),
            0.0,
        ),
        MetricCheck(
            "ensemble",
            "same_order",
            "serial-vs-batched",
            1.0,
            1.0
            if [s.name for s in serial] == [b.name for b in batched]
            else 0.0,
            0.0,
        ),
    ]
    for s, b in zip(serial, batched):
        for metric, ref, cand in (
            ("objective", s.objective, b.objective),
            ("ideal_objective", s.ideal_objective, b.ideal_objective),
            ("mean_inflation", s.mean_inflation, b.mean_inflation),
            ("mean_goodput", s.mean_goodput, b.mean_goodput),
        ):
            checks.append(
                MetricCheck(s.name, metric, "serial-vs-batched", ref, cand, 0.0)
            )
    report = DivergenceReport(
        scenario="bench-robust-ranking", checks=tuple(checks)
    )

    row = {
        "num_nodes": NUM_NODES,
        "cores_per_node": CORES_PER_NODE,
        "candidates": len(candidates),
        "trials": trials,
        "n_steps": n_steps,
        "fault_rate": FAULT_RATE,
        "policy": "retry",
        "serial_seconds": t_serial,
        "batched_seconds": t_batched,
        "speedup": t_serial / t_batched,
        "best": serial[0].name,
        "best_objective": serial[0].objective,
        "counters": counters,
    }
    return row, report


def run(smoke: bool) -> dict:
    trials = TRIALS_SMOKE if smoke else TRIALS_FULL
    n_steps = N_STEPS_SMOKE if smoke else N_STEPS_FULL

    # warm both code paths so the timings compare steady-state costs
    warm_spec = _spec(4)
    warm_candidates = {"warm": next(iter(_candidates(warm_spec).values()))}
    for engine in ("serial", "batched"):
        rank_placements_robust(
            warm_spec,
            warm_candidates,
            crash_straggler_factory(FAULT_RATE),
            RetryBackoffPolicy(),
            trials=1,
            method="des",
            engine=engine,
        )

    ranking, report = bench_ranking(trials, n_steps)
    return {
        "benchmark": "robust",
        "mode": "smoke" if smoke else "full",
        "floors": {
            "ranking": RANKING_FLOOR_SMOKE if smoke else RANKING_FLOOR
        },
        "ranking": ranking,
        "correctness": [report.to_dict()],
    }


def check_correctness(results: dict) -> bool:
    """Print stored divergence reports; False on any divergence."""
    ok = True
    for payload in results.get("correctness", []):
        status = "ok" if payload["passed"] else "DIVERGED"
        print(
            f"{payload['scenario']}: correctness {status} "
            f"({payload['num_checks']} checks, "
            f"{payload['num_failures']} failures)"
        )
        for failure in payload["failures"]:
            print(
                f"  FAIL [{failure['paths']}] "
                f"{failure['scope']}/{failure['metric']}: "
                f"ref={failure['reference']!r} got={failure['candidate']!r}"
            )
        if not payload["passed"]:
            ok = False
    return ok


def check_floors(results: dict) -> bool:
    speedup = results["ranking"]["speedup"]
    floor = results["floors"]["ranking"]
    status = "ok" if speedup >= floor else "BELOW FLOOR"
    print(f"ranking: {speedup:.1f}x (floor {floor:.0f}x) {status}")
    return speedup >= floor


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark batched robust ranking against serial DES."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller replica grid (CI smoke run)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing results file against the floors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"results file (default: {DEFAULT_OUTPUT.name})",
    )
    args = parser.parse_args()

    if args.check:
        if not args.output.exists():
            print(f"no results file at {args.output}", file=sys.stderr)
            return 1
        results = json.loads(args.output.read_text())
        if not check_correctness(results):
            return 2
        return 0 if check_floors(results) else 1

    results = run(smoke=args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    row = results["ranking"]
    print(
        f"ranking: {row['candidates']} candidates x {row['trials']} "
        f"replicas (n_steps={row['n_steps']}), serial "
        f"{row['serial_seconds']:.2f}s -> batched "
        f"{row['batched_seconds']:.2f}s"
    )
    print(
        f"  engine: {row['counters']['baseline_sims']} baseline sims, "
        f"{row['counters']['replicas_replayed']} replicas replayed"
    )
    if not check_correctness(results):
        return 2
    return 0 if check_floors(results) else 1


if __name__ == "__main__":
    sys.exit(main())
