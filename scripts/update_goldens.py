#!/usr/bin/env python
"""Regenerate or check the golden-trace store (tests/golden/).

Usage::

    PYTHONPATH=src python scripts/update_goldens.py           # rewrite
    PYTHONPATH=src python scripts/update_goldens.py --check   # verify

Without flags, every canonical scenario in
``repro.verify.goldens.GOLDEN_SCENARIOS`` is re-run and its golden
file rewritten (the executor is deterministic, so running this twice
yields no diff). With ``--check``, the store is compared against fresh
runs and the structural diff of every mismatching scenario is printed;
the exit code is non-zero on any mismatch, which is how CI and
``tests/verify/test_goldens.py`` consume it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.verify.goldens import check_goldens, write_goldens  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "golden"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="diff the store against fresh runs instead of rewriting",
    )
    parser.add_argument(
        "--dir",
        default=str(GOLDEN_DIR),
        help=f"golden store directory (default: {GOLDEN_DIR})",
    )
    args = parser.parse_args(argv)

    if args.check:
        mismatches = check_goldens(args.dir)
        if not mismatches:
            print(f"goldens up to date in {args.dir}")
            return 0
        for name, diff in mismatches.items():
            print(f"{name}: MISMATCH")
            for line in diff:
                print(f"  {line}")
        print(
            f"{len(mismatches)} golden(s) out of date; regenerate with "
            f"scripts/update_goldens.py after confirming the behaviour "
            f"change is intended",
            file=sys.stderr,
        )
        return 1

    written = write_goldens(args.dir)
    print(f"wrote {len(written)} goldens to {args.dir}:")
    for name in written:
        print(f"  {name}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
