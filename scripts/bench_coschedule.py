#!/usr/bin/env python
"""Benchmark cluster co-scheduling against FIFO-exclusive provisioning.

One scenario with two built-in correctness gates. The scenario is the
canonical mixed-deadline stream the suite validates end to end: four
ensembles with staggered arrivals — alternating tight-deadline
high-priority and lax best-effort — co-resident on a six-node
cluster. The FIFO-exclusive baseline hands each ensemble the whole
machine in arrival order (the paper's one-ensemble-at-a-time
provisioning); the co-scheduler partitions nodes across residents and
re-partitions on every membership event.

Before the utilization gain is reported, two things must hold:

- **determinism** — two independent :class:`repro.coschedule
  .CoScheduler` runs of the stream produce byte-identical admission
  logs and result digests;
- **degeneration** — a single-request stream returns a winner
  float-identical to calling the search's ``find_best_placement``
  directly (the complete-partition rule at work).

Both are reported as :class:`repro.verify.oracles.DivergenceReport`
payloads exactly like the other benchmark gates.

Writes ``BENCH_coschedule.json`` (utilizations, gain, decision
summary, correctness reports) and exits non-zero on regression:

- exit **1** — the utilization floor was missed (co-scheduled must
  beat FIFO-exclusive by >= 20%);
- exit **2** — a correctness divergence: non-deterministic decisions
  or a degeneration mismatch.

``--check`` re-validates an existing results file against the floors
(and its stored correctness verdicts) without re-running anything.

Usage:
    python scripts/bench_coschedule.py [--smoke] [--output PATH]
    python scripts/bench_coschedule.py --check [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.coschedule import (  # noqa: E402
    CoScheduler,
    EnsembleRequest,
    canonical_mixed_deadline_stream,
    coschedule_counters,
    fifo_exclusive_schedule,
    reset_coschedule_counters,
)
from repro.coschedule.scenarios import (  # noqa: E402
    CANONICAL_ARRIVAL_SPACING,
    CANONICAL_CORES_PER_NODE,
    CANONICAL_NUM_REQUESTS,
    CANONICAL_TOTAL_NODES,
)
from repro.search.engine import find_best_placement  # noqa: E402
from repro.verify.oracles import (  # noqa: E402
    DivergenceReport,
    MetricCheck,
)

#: required utilization gain of the co-scheduler over FIFO-exclusive —
#: the regression floor CI enforces. Smoke mode trims the stream to
#: two ensembles (less overlap to exploit), hence the lower bar.
UTILIZATION_FLOOR = 1.20
UTILIZATION_FLOOR_SMOKE = 1.05

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_coschedule.json"

NUM_REQUESTS_FULL = CANONICAL_NUM_REQUESTS
NUM_REQUESTS_SMOKE = 2


def _stream(num_requests: int):
    return canonical_mixed_deadline_stream(num_requests=num_requests)


def check_determinism(num_requests: int) -> DivergenceReport:
    """Two independent runs must agree byte for byte."""
    runs = [
        CoScheduler(
            total_nodes=CANONICAL_TOTAL_NODES,
            cores_per_node=CANONICAL_CORES_PER_NODE,
        ).run(_stream(num_requests))
        for _ in range(2)
    ]
    checks = [
        MetricCheck(
            "cluster",
            "decisions_digest_identical",
            "run-vs-run",
            1.0,
            1.0
            if runs[0].decisions_digest() == runs[1].decisions_digest()
            else 0.0,
            0.0,
        ),
        MetricCheck(
            "cluster",
            "result_digest_identical",
            "run-vs-run",
            1.0,
            1.0 if runs[0].digest() == runs[1].digest() else 0.0,
            0.0,
        ),
        MetricCheck(
            "cluster",
            "utilization",
            "run-vs-run",
            runs[0].utilization,
            runs[1].utilization,
            0.0,
        ),
    ]
    return DivergenceReport(
        scenario="bench-coschedule-determinism", checks=tuple(checks)
    )


def check_degeneration() -> DivergenceReport:
    """A one-request stream must equal the direct search exactly."""
    spec = _stream(1)[0].spec
    direct, _ = find_best_placement(
        spec, CANONICAL_TOTAL_NODES, CANONICAL_CORES_PER_NODE
    )
    result = CoScheduler(
        total_nodes=CANONICAL_TOTAL_NODES,
        cores_per_node=CANONICAL_CORES_PER_NODE,
    ).run([EnsembleRequest(name=spec.name, spec=spec)])
    score = result.completions[0].score
    checks = [
        MetricCheck(
            "cluster",
            "objective",
            "search-vs-coschedule",
            direct.objective,
            score.objective,
            0.0,
        ),
        MetricCheck(
            "cluster",
            "makespan",
            "search-vs-coschedule",
            direct.ensemble_makespan,
            score.ensemble_makespan,
            0.0,
        ),
        MetricCheck(
            "cluster",
            "same_placement",
            "search-vs-coschedule",
            1.0,
            1.0 if score.placement == direct.placement else 0.0,
            0.0,
        ),
    ]
    return DivergenceReport(
        scenario="bench-coschedule-degeneration", checks=tuple(checks)
    )


def bench_scenario(num_requests: int) -> dict:
    """Co-scheduled vs FIFO-exclusive on the canonical stream."""
    stream = _stream(num_requests)

    t0 = time.perf_counter()
    fifo = fifo_exclusive_schedule(
        stream, CANONICAL_TOTAL_NODES, CANONICAL_CORES_PER_NODE
    )
    t_fifo = time.perf_counter() - t0

    reset_coschedule_counters()
    t0 = time.perf_counter()
    result = CoScheduler(
        total_nodes=CANONICAL_TOTAL_NODES,
        cores_per_node=CANONICAL_CORES_PER_NODE,
    ).run(stream)
    t_coscheduled = time.perf_counter() - t0

    gain = (
        result.utilization / fifo.utilization
        if fifo.utilization > 0
        else float("inf")
    )
    return {
        "total_nodes": CANONICAL_TOTAL_NODES,
        "cores_per_node": CANONICAL_CORES_PER_NODE,
        "num_requests": num_requests,
        "arrival_spacing": CANONICAL_ARRIVAL_SPACING,
        "fifo_utilization": fifo.utilization,
        "coscheduled_utilization": result.utilization,
        "utilization_gain": gain,
        "fifo_makespan": fifo.makespan,
        "coscheduled_makespan": result.makespan,
        "admitted": len(result.admitted),
        "rejected": len(result.rejected),
        "completions": len(result.completions),
        "deadlines_met": sum(
            1
            for c in result.completions
            if c.met_deadline is not False
        ),
        "decisions_digest": result.decisions_digest(),
        "result_digest": result.digest(),
        "fifo_seconds": t_fifo,
        "coscheduled_seconds": t_coscheduled,
        "counters": coschedule_counters(),
    }


def run(smoke: bool) -> dict:
    num_requests = NUM_REQUESTS_SMOKE if smoke else NUM_REQUESTS_FULL
    determinism_report = check_determinism(num_requests)
    degeneration_report = check_degeneration()
    scenario = bench_scenario(num_requests)
    return {
        "benchmark": "coschedule",
        "mode": "smoke" if smoke else "full",
        "floors": {
            "utilization_gain": (
                UTILIZATION_FLOOR_SMOKE if smoke else UTILIZATION_FLOOR
            )
        },
        "scenario": scenario,
        "correctness": [
            determinism_report.to_dict(),
            degeneration_report.to_dict(),
        ],
    }


def check_correctness(results: dict) -> bool:
    """Print stored divergence reports; False on any divergence."""
    ok = True
    for payload in results.get("correctness", []):
        status = "ok" if payload["passed"] else "DIVERGED"
        print(
            f"{payload['scenario']}: correctness {status} "
            f"({payload['num_checks']} checks, "
            f"{payload['num_failures']} failures)"
        )
        for failure in payload["failures"]:
            print(
                f"  FAIL [{failure['paths']}] "
                f"{failure['scope']}/{failure['metric']}: "
                f"ref={failure['reference']!r} got={failure['candidate']!r}"
            )
        if not payload["passed"]:
            ok = False
    return ok


def check_floors(results: dict) -> bool:
    gain = results["scenario"]["utilization_gain"]
    floor = results["floors"]["utilization_gain"]
    status = "ok" if gain >= floor else "BELOW FLOOR"
    print(f"utilization gain: {gain:.2f}x (floor {floor:.2f}x) {status}")
    return gain >= floor


def main() -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark cluster co-scheduling of the canonical "
            "mixed-deadline stream against FIFO-exclusive provisioning."
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorter run (CI smoke mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing results file against the floors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"results file (default: {DEFAULT_OUTPUT.name})",
    )
    args = parser.parse_args()

    if args.check:
        if not args.output.exists():
            print(f"no results file at {args.output}", file=sys.stderr)
            return 1
        results = json.loads(args.output.read_text())
        if not check_correctness(results):
            return 2
        return 0 if check_floors(results) else 1

    results = run(smoke=args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    row = results["scenario"]
    print(
        f"scenario: {row['num_requests']} ensembles / "
        f"{row['total_nodes']} nodes, arrivals every "
        f"{row['arrival_spacing']:g}s"
    )
    print(
        f"  FIFO-exclusive {row['fifo_utilization']:.3f} -> "
        f"co-scheduled {row['coscheduled_utilization']:.3f} "
        f"({row['utilization_gain']:.2f}x, "
        f"{row['admitted']} admitted, "
        f"{row['deadlines_met']} deadlines met)"
    )
    if not check_correctness(results):
        return 2
    return 0 if check_floors(results) else 1


if __name__ == "__main__":
    sys.exit(main())
