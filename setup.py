"""Setup shim: enables `python setup.py develop` on hosts without the
`wheel` package (offline environments where PEP 660 editable installs
are unavailable). Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
