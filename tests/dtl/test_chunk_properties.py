"""Property-based tests: chunk serialization round-trips for all inputs."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dtl.chunk import Chunk, ChunkKey

payloads = hnp.arrays(
    dtype=st.sampled_from([np.float32, np.float64, np.int32, np.int64]),
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
    # integer elements are exactly representable in every sampled dtype,
    # so round-trip equality is well defined
    elements=st.integers(min_value=-(2**24), max_value=2**24),
)

metadata = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(
        st.integers(min_value=-(2**31), max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=20),
        st.booleans(),
        st.none(),
    ),
    max_size=5,
)

producers = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=1000),
    min_size=1,
    max_size=30,
)


class TestSerializationRoundTrip:
    @given(payloads, metadata, producers, st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_everything(self, payload, meta, producer, step):
        chunk = Chunk(ChunkKey(producer, step), payload, meta)
        back = Chunk.deserialize(chunk.serialize())
        assert back.key.producer == producer
        assert back.key.step == step
        assert back.payload.dtype == chunk.payload.dtype
        assert back.payload.shape == chunk.payload.shape
        assert np.array_equal(back.payload, chunk.payload)
        assert back.metadata == chunk.metadata
        assert back == chunk

    @given(payloads)
    @settings(max_examples=50, deadline=None)
    def test_double_round_trip_is_stable(self, payload):
        chunk = Chunk(ChunkKey("p", 0), payload)
        once = Chunk.deserialize(chunk.serialize())
        twice = Chunk.deserialize(once.serialize())
        assert once == twice

    @given(payloads, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_serialized_size_bounded(self, payload, step):
        """Wire overhead stays small relative to the payload."""
        chunk = Chunk(ChunkKey("producer", step), payload)
        wire = chunk.serialize()
        assert len(wire) >= chunk.nbytes
        assert len(wire) <= chunk.nbytes + 1024  # header + metadata bound
