"""Tests for the three staging tiers' cost models."""

import pytest

from repro.dtl.burstbuffer import BurstBufferDTL
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.pfs import ParallelFilesystemDTL
from repro.platform.network import DragonflyNetwork
from repro.util.errors import ValidationError
from repro.util.units import MIB


class TestDimesCosts:
    @pytest.fixture
    def dtl(self):
        return InMemoryStagingDTL(network=DragonflyNetwork())

    def test_write_is_placement_invariant(self, dtl):
        a = dtl.write_cost(0, 3 * MIB)
        b = dtl.write_cost(7, 3 * MIB)
        assert a == b

    def test_local_read_cheaper_than_remote(self, dtl):
        local = dtl.read_cost(0, 0, 3 * MIB)
        remote = dtl.read_cost(0, 1, 3 * MIB)
        assert local.total < remote.total

    def test_local_read_has_no_producer_overhead(self, dtl):
        assert dtl.read_cost(0, 0, 3 * MIB).producer_overhead == 0.0

    def test_remote_read_taxes_producer(self, dtl):
        remote = dtl.read_cost(0, 1, 3 * MIB)
        assert remote.producer_overhead > 0.0
        assert remote.producer_overhead >= dtl.service_latency

    def test_remote_cost_grows_with_distance(self, dtl):
        near = dtl.read_cost(0, 1, 3 * MIB).total  # same router
        far = dtl.read_cost(0, 1000, 3 * MIB).total  # cross group
        assert near < far

    def test_progress_tax_default_positive(self, dtl):
        assert dtl.producer_progress_tax > 0.0

    def test_negative_bytes_rejected(self, dtl):
        with pytest.raises(ValidationError):
            dtl.write_cost(0, -1)
        with pytest.raises(ValidationError):
            dtl.read_cost(0, 1, -1)


class TestBurstBufferCosts:
    @pytest.fixture
    def dtl(self):
        return BurstBufferDTL()

    def test_placement_insensitive(self, dtl):
        assert dtl.read_cost(0, 0, MIB) == dtl.read_cost(0, 9, MIB)

    def test_no_producer_overhead(self, dtl):
        assert dtl.read_cost(0, 9, MIB).producer_overhead == 0.0

    def test_latency_floor(self, dtl):
        assert dtl.read_cost(0, 1, 0).transport == pytest.approx(
            dtl.access_latency
        )

    def test_no_progress_tax_attribute_effects(self, dtl):
        # executor reads this via getattr with default 0
        assert getattr(dtl, "producer_progress_tax", 0.0) == 0.0


class TestPfsCosts:
    def test_bandwidth_divided_among_clients(self):
        one = ParallelFilesystemDTL(concurrent_clients=1)
        four = ParallelFilesystemDTL(concurrent_clients=4)
        assert four.per_stream_bandwidth == one.per_stream_bandwidth / 4
        assert (
            four.read_cost(0, 1, 100 * MIB).transport
            > one.read_cost(0, 1, 100 * MIB).transport
        )

    def test_metadata_latency_dominates_small_io(self):
        pfs = ParallelFilesystemDTL()
        cost = pfs.write_cost(0, 1024)
        assert cost.transport == pytest.approx(pfs.metadata_latency, rel=0.01)


class TestTierOrdering:
    def test_in_memory_fastest_for_colocated_reads(self):
        """The tier hierarchy that motivates in situ (paper §1)."""
        nbytes = 3 * MIB
        dimes = InMemoryStagingDTL().read_cost(0, 0, nbytes).total
        bb = BurstBufferDTL().read_cost(0, 0, nbytes).total
        pfs = ParallelFilesystemDTL().read_cost(0, 0, nbytes).total
        assert dimes < bb < pfs
