"""Tests for the DTL plugin (component-facing staging interface)."""

import numpy as np
import pytest

from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.plugin import DTLPlugin
from repro.util.errors import DTLError, ProtocolError, ValidationError


@pytest.fixture
def dtl():
    return InMemoryStagingDTL()


@pytest.fixture
def writer(dtl):
    return DTLPlugin(dtl, component="sim", node=0)


@pytest.fixture
def reader(dtl):
    return DTLPlugin(dtl, component="ana", node=1)


class TestStageOut:
    def test_receipt_reports_size_and_cost(self, writer):
        arr = np.zeros((100, 3), dtype=np.float32)
        receipt = writer.stage_out(arr)
        assert receipt.nbytes == arr.nbytes
        assert receipt.cost.total > 0
        assert receipt.verified

    def test_steps_auto_increment(self, writer, reader):
        writer.stage_out(np.zeros(3))
        reader.stage_in("sim", 0)
        r2 = writer.stage_out(np.zeros(3))
        assert r2.key.step == 1

    def test_explicit_step(self, writer):
        receipt = writer.stage_out(np.zeros(3), step=10)
        assert receipt.key.step == 10

    def test_protocol_enforced_through_plugin(self, writer):
        writer.stage_out(np.zeros(3))
        with pytest.raises(ProtocolError):
            writer.stage_out(np.zeros(3))

    def test_invalid_construction(self, dtl):
        with pytest.raises(ValidationError):
            DTLPlugin(dtl, component="", node=0)
        with pytest.raises(ValidationError):
            DTLPlugin(dtl, component="x", node=-1)


class TestStageIn:
    def test_round_trips_payload_and_metadata(self, writer, reader):
        arr = np.random.default_rng(0).normal(size=(50, 3)).astype(np.float32)
        writer.stage_out(arr, {"frame": 7})
        payload, meta, receipt = reader.stage_in("sim", 0)
        assert np.array_equal(payload, arr)
        assert meta == {"frame": 7}
        assert receipt.nbytes == arr.nbytes

    def test_missing_chunk_raises(self, reader):
        with pytest.raises(DTLError):
            reader.stage_in("sim", 99)

    def test_locality_reflected_in_cost(self, dtl, writer):
        local_reader = DTLPlugin(dtl, component="ana-local", node=0)
        remote_reader = DTLPlugin(dtl, component="ana-remote", node=1)
        writer.stage_out(np.zeros(1000), expected_consumers=2)
        _, _, local = local_reader.stage_in("sim", 0)
        _, _, remote = remote_reader.stage_in("sim", 0)
        assert local.cost.total < remote.cost.total
        assert local.cost.producer_overhead == 0.0
        assert remote.cost.producer_overhead > 0.0

    def test_unverified_mode_skips_marshaling(self, dtl):
        writer = DTLPlugin(dtl, "sim", 0, verify_integrity=False)
        reader = DTLPlugin(dtl, "ana", 1, verify_integrity=False)
        arr = np.arange(10.0)
        writer.stage_out(arr)
        payload, _, receipt = reader.stage_in("sim", 0)
        assert np.array_equal(payload, arr)
        assert not receipt.verified


class TestMultiConsumer:
    def test_k_analyses_read_one_chunk(self, dtl, writer):
        readers = [DTLPlugin(dtl, f"ana{j}", node=j % 2) for j in range(3)]
        arr = np.ones(7)
        writer.stage_out(arr, expected_consumers=3)
        for r in readers:
            payload, _, _ = r.stage_in("sim", 0)
            assert np.array_equal(payload, arr)
        # slot reclaimed: next write succeeds
        writer.stage_out(arr, expected_consumers=3)
