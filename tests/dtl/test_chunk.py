"""Tests for the chunk abstraction and its wire format."""

import numpy as np
import pytest

from repro.dtl.chunk import Chunk, ChunkKey
from repro.util.errors import DTLError, ValidationError


@pytest.fixture
def chunk():
    return Chunk(
        key=ChunkKey(producer="sim1", step=3),
        payload=np.arange(24, dtype=np.float32).reshape(8, 3),
        metadata={"natoms": 8, "units": "reduced"},
    )


class TestChunkKey:
    def test_empty_producer_rejected(self):
        with pytest.raises(ValidationError):
            ChunkKey(producer="", step=0)

    def test_negative_step_rejected(self):
        with pytest.raises(ValidationError):
            ChunkKey(producer="x", step=-1)

    def test_hashable(self):
        assert ChunkKey("x", 1) == ChunkKey("x", 1)
        assert len({ChunkKey("x", 1), ChunkKey("x", 1), ChunkKey("x", 2)}) == 2


class TestChunk:
    def test_nbytes(self, chunk):
        assert chunk.nbytes == 24 * 4

    def test_payload_made_contiguous(self):
        noncontig = np.arange(24, dtype=np.float64).reshape(4, 6).T
        assert not noncontig.flags["C_CONTIGUOUS"]
        c = Chunk(ChunkKey("x", 0), noncontig)
        assert c.payload.flags["C_CONTIGUOUS"]

    def test_non_json_metadata_rejected(self):
        with pytest.raises(ValidationError):
            Chunk(ChunkKey("x", 0), np.zeros(3), {"bad": object()})

    def test_equality_covers_payload(self, chunk):
        other = Chunk(chunk.key, chunk.payload.copy(), dict(chunk.metadata))
        assert chunk == other
        changed = Chunk(chunk.key, chunk.payload + 1, dict(chunk.metadata))
        assert chunk != changed


class TestSerialization:
    def test_round_trip(self, chunk):
        assert Chunk.deserialize(chunk.serialize()) == chunk

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint8]
    )
    def test_round_trip_dtypes(self, dtype):
        c = Chunk(ChunkKey("p", 0), np.arange(10).astype(dtype))
        back = Chunk.deserialize(c.serialize())
        assert back.payload.dtype == np.dtype(dtype)
        assert np.array_equal(back.payload, c.payload)

    def test_round_trip_scalar_like_shapes(self):
        for shape in [(1,), (5,), (2, 3), (2, 3, 4), (1, 1, 1, 1)]:
            c = Chunk(ChunkKey("p", 0), np.zeros(shape))
            assert Chunk.deserialize(c.serialize()).payload.shape == shape

    def test_round_trip_empty_metadata(self):
        c = Chunk(ChunkKey("p", 1), np.ones(4))
        assert Chunk.deserialize(c.serialize()).metadata == {}

    def test_bad_magic_rejected(self, chunk):
        buf = bytearray(chunk.serialize())
        buf[0:4] = b"XXXX"
        with pytest.raises(DTLError, match="magic"):
            Chunk.deserialize(bytes(buf))

    def test_corruption_detected_by_crc(self, chunk):
        buf = bytearray(chunk.serialize())
        buf[-1] ^= 0xFF  # flip a payload bit
        with pytest.raises(DTLError, match="CRC"):
            Chunk.deserialize(bytes(buf))

    def test_truncated_buffer_rejected(self, chunk):
        with pytest.raises(DTLError):
            Chunk.deserialize(chunk.serialize()[:4])

    def test_deserialized_payload_is_writable_copy(self, chunk):
        back = Chunk.deserialize(chunk.serialize())
        back.payload[0, 0] = 99.0  # must not raise (not a frozen frombuffer view)
