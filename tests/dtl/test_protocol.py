"""Tests for the no-buffering staging protocol (DataTransportLayer base)."""

import numpy as np
import pytest

from repro.dtl.chunk import Chunk, ChunkKey
from repro.dtl.dimes import InMemoryStagingDTL
from repro.util.errors import DTLError, ProtocolError, ValidationError


def make_chunk(producer="sim", step=0, n=4):
    return Chunk(ChunkKey(producer, step), np.arange(n, dtype=np.float64))


@pytest.fixture
def dtl():
    return InMemoryStagingDTL()


class TestStaging:
    def test_stage_and_retrieve(self, dtl):
        chunk = make_chunk()
        dtl.stage(chunk, producer_node=0)
        assert dtl.retrieve(chunk.key, consumer="ana") == chunk

    def test_slot_reclaimed_after_final_read(self, dtl):
        chunk = make_chunk()
        dtl.stage(chunk, producer_node=0, expected_consumers=2)
        dtl.retrieve(chunk.key, consumer="ana1")
        assert dtl.live_slots == 1
        dtl.retrieve(chunk.key, consumer="ana2")
        assert dtl.live_slots == 0

    def test_retrieve_missing_chunk_rejected(self, dtl):
        with pytest.raises(DTLError):
            dtl.retrieve(ChunkKey("sim", 9), consumer="ana")

    def test_double_read_by_same_consumer_rejected(self, dtl):
        chunk = make_chunk()
        dtl.stage(chunk, producer_node=0, expected_consumers=2)
        dtl.retrieve(chunk.key, consumer="ana")
        with pytest.raises(ProtocolError):
            dtl.retrieve(chunk.key, consumer="ana")

    def test_invalid_expected_consumers_rejected(self, dtl):
        with pytest.raises(ValidationError):
            dtl.stage(make_chunk(), producer_node=0, expected_consumers=0)


class TestNoBufferingRule:
    def test_overwrite_unread_chunk_rejected(self, dtl):
        dtl.stage(make_chunk(step=0), producer_node=0)
        with pytest.raises(ProtocolError, match="no-buffering"):
            dtl.stage(make_chunk(step=1), producer_node=0)

    def test_next_step_allowed_after_read(self, dtl):
        c0 = make_chunk(step=0)
        dtl.stage(c0, producer_node=0)
        dtl.retrieve(c0.key, consumer="ana")
        dtl.stage(make_chunk(step=1), producer_node=0)  # no error

    def test_steps_must_strictly_increase(self, dtl):
        c0 = make_chunk(step=5)
        dtl.stage(c0, producer_node=0)
        dtl.retrieve(c0.key, consumer="ana")
        with pytest.raises(ProtocolError, match="strictly increase"):
            dtl.stage(make_chunk(step=5), producer_node=0)
        with pytest.raises(ProtocolError):
            dtl.stage(make_chunk(step=4), producer_node=0)

    def test_independent_producers_do_not_interfere(self, dtl):
        dtl.stage(make_chunk("sim1", 0), producer_node=0)
        dtl.stage(make_chunk("sim2", 0), producer_node=1)  # fine
        assert dtl.live_slots == 2

    def test_partial_reads_still_block_overwrite(self, dtl):
        c0 = make_chunk(step=0)
        dtl.stage(c0, producer_node=0, expected_consumers=2)
        dtl.retrieve(c0.key, consumer="ana1")  # 1 of 2
        with pytest.raises(ProtocolError):
            dtl.stage(make_chunk(step=1), producer_node=0)


class TestAccounting:
    def test_bytes_and_reads_counted(self, dtl):
        c = make_chunk(n=10)
        dtl.stage(c, producer_node=0)
        dtl.retrieve(c.key, consumer="ana")
        assert dtl.bytes_staged_total == c.nbytes
        assert dtl.reads_served_total == 1

    def test_live_bytes_on_node(self, dtl):
        dtl.stage(make_chunk("sim1", 0, n=10), producer_node=0)
        dtl.stage(make_chunk("sim2", 0, n=20), producer_node=1)
        assert dtl.live_bytes_on_node(0) == 80
        assert dtl.live_bytes_on_node(1) == 160
        assert dtl.live_bytes_on_node(2) == 0

    def test_peek_is_non_consuming(self, dtl):
        c = make_chunk()
        dtl.stage(c, producer_node=0)
        assert dtl.peek(c.key).chunk == c
        assert dtl.live_slots == 1
        assert dtl.peek(ChunkKey("ghost", 0)) is None

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            InMemoryStagingDTL(name="")
