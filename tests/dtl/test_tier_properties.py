"""Property-based tests of the staging-tier cost models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dtl.burstbuffer import BurstBufferDTL
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.pfs import ParallelFilesystemDTL

sizes = st.floats(min_value=0.0, max_value=1e10, allow_nan=False)
nodes = st.integers(min_value=0, max_value=200)

TIERS = [InMemoryStagingDTL, BurstBufferDTL, ParallelFilesystemDTL]


class TestCostMonotonicity:
    @given(sizes, sizes, nodes, nodes)
    @settings(max_examples=100)
    def test_read_cost_monotone_in_bytes(self, a, b, src, dst):
        lo, hi = sorted((a, b))
        for tier_cls in TIERS:
            tier = tier_cls()
            assert (
                tier.read_cost(src, dst, lo).total
                <= tier.read_cost(src, dst, hi).total + 1e-12
            )

    @given(sizes, sizes, nodes)
    @settings(max_examples=100)
    def test_write_cost_monotone_in_bytes(self, a, b, node):
        lo, hi = sorted((a, b))
        for tier_cls in TIERS:
            tier = tier_cls()
            assert (
                tier.write_cost(node, lo).total
                <= tier.write_cost(node, hi).total + 1e-12
            )

    @given(sizes, nodes, nodes)
    @settings(max_examples=100)
    def test_costs_never_negative(self, nbytes, src, dst):
        for tier_cls in TIERS:
            tier = tier_cls()
            for cost in (
                tier.write_cost(src, nbytes),
                tier.read_cost(src, dst, nbytes),
            ):
                assert cost.marshal >= 0
                assert cost.transport >= 0
                assert cost.producer_overhead >= 0


class TestLocalityDominance:
    @given(sizes, nodes, nodes)
    @settings(max_examples=100)
    def test_dimes_local_never_worse_than_remote(self, nbytes, src, dst):
        tier = InMemoryStagingDTL()
        local = tier.read_cost(src, src, nbytes)
        remote = tier.read_cost(src, dst, nbytes)
        if src == dst:
            assert local.total == remote.total
        else:
            assert local.total <= remote.total + 1e-12
            assert local.producer_overhead <= remote.producer_overhead

    @given(sizes, nodes, nodes)
    @settings(max_examples=100)
    def test_external_tiers_placement_invariant(self, nbytes, src, dst):
        for tier_cls in (BurstBufferDTL, ParallelFilesystemDTL):
            tier = tier_cls()
            assert tier.read_cost(src, dst, nbytes) == tier.read_cost(
                src, src, nbytes
            )

    @given(sizes, nodes)
    @settings(max_examples=100)
    def test_writes_never_tax_the_producer(self, nbytes, node):
        for tier_cls in TIERS:
            assert tier_cls().write_cost(node, nbytes).producer_overhead == 0.0
