"""The HTTP surface: routes, status codes, and the Python client.

Every test boots a real :class:`PlacementServer` on an ephemeral port
(``port=0``) and talks to it over actual sockets through
:class:`PlacementClient` — no handler mocking, so the wire format and
status codes are exercised end to end.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.objectives import score_placement
from repro.search.engine import find_best_placement
from repro.service.api import PlacementServer, make_server
from repro.service.client import PlacementClient, ServiceError
from repro.service.schemas import (
    PlacementRequest,
    request_to_dict,
    score_from_dict,
)


@pytest.fixture()
def server():
    with make_server(port=0, workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return PlacementClient(server.url)


def _spec(n_steps: int = 2) -> EnsembleSpec:
    return EnsembleSpec(
        "api", (default_member("em1", num_analyses=1, n_steps=n_steps),)
    )


def _search(num_nodes: int = 2) -> PlacementRequest:
    return PlacementRequest(kind="search", spec=_spec(), num_nodes=num_nodes)


class TestRoutes:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["workers"] == 2
        assert payload["uptime_s"] >= 0

    def test_submit_poll_roundtrip(self, client):
        submitted = client.submit(_search())
        assert submitted["state"] in ("pending", "running", "done")
        assert submitted["kind"] == "search"
        snapshot = client.wait(submitted["id"], timeout=30.0)
        assert snapshot["state"] == "done"
        score = PlacementClient.result_score(snapshot)
        best, evaluated = find_best_placement(_spec(), 2, 32)
        assert score == best
        assert score.objective == best.objective  # exact, not approx
        assert snapshot["result"]["evaluated"] == evaluated

    def test_submit_search_helper(self, client):
        job = client.submit_search(_spec(), num_nodes=2)
        snapshot = client.wait(job["id"], timeout=30.0)
        assert snapshot["state"] == "done"

    def test_jobs_listing_excludes_results(self, client):
        job = client.submit(_search())
        client.wait(job["id"], timeout=30.0)
        listing = client.jobs()
        assert [j["id"] for j in listing] == [job["id"]]
        assert "result" not in listing[0]

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("job-does-not-exist")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._call("GET", "/frobnicate")
        assert err.value.status == 404

    def test_cancel_pending_job(self):
        import threading

        from repro.service.workers import PlacementService

        release = threading.Event()

        def stalling(request, stage_cache=None):
            release.wait(10.0)
            return {"ok": True}

        service = PlacementService(workers=1, execute_fn=stalling)
        with PlacementServer(service=service, port=0) as srv:
            client = PlacementClient(srv.url)
            client.submit(_search(num_nodes=2))  # occupies the worker
            pending = client.submit(_search(num_nodes=3))
            assert client.cancel(pending["id"]) is True
            assert client.job(pending["id"])["state"] == "cancelled"
            release.set()

    def test_submit_to_closed_queue_is_400(self, server, client):
        server.service.queue.close()
        with pytest.raises(ServiceError) as err:
            client.submit(_search())
        assert err.value.status == 400

    def test_delete_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.cancel("job-does-not-exist")
        assert err.value.status == 404

    def test_delete_done_job_reports_not_cancelled(self, client):
        job = client.submit(_search())
        client.wait(job["id"], timeout=30.0)
        assert client.cancel(job["id"]) is False

    def test_malformed_submit_is_400(self, server):
        url = f"{server.url}/jobs"
        for body in (b"{not json", b"{}", b'{"request": {"kind": "bogus"}}'):
            req = urllib.request.Request(
                url, data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req)
            assert err.value.code == 400
            detail = json.loads(err.value.read())
            assert "error" in detail

    def test_stats_surfaces_all_layers(self, client):
        client.wait(client.submit(_search())["id"], timeout=30.0)
        client.submit(_search())  # cache hit
        stats = client.stats()
        assert stats["queue"]["submitted"] == 2
        assert stats["result_cache"]["hits"] == 1
        assert "stage_hits" in stats["stage_cache"]
        assert stats["workers"] == 2


class TestCachedSubmission:
    def test_duplicate_submit_returns_done_cached(self, client):
        first = client.wait(client.submit(_search())["id"], timeout=30.0)
        second = client.submit(_search())
        assert second["state"] == "done"
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_priority_accepted(self, client):
        job = client.submit(_search(), priority=7)
        assert job["priority"] == 7
        client.wait(job["id"], timeout=30.0)


class TestScoreRequests:
    def test_score_request_round_trips_exactly(self, client):
        spec = _spec()
        best, _ = find_best_placement(spec, 2, 32)
        request = PlacementRequest(
            kind="score", spec=spec, num_nodes=2, placement=best.placement
        )
        snapshot = client.wait(client.submit(request)["id"], timeout=30.0)
        served = score_from_dict(snapshot["result"]["score"])
        direct = score_placement(spec, best.placement)
        assert served.objective == direct.objective
        assert served.ensemble_makespan == direct.ensemble_makespan
        assert served.member_indicators == direct.member_indicators

    def test_result_score_on_unfinished_job_raises(self, client):
        snapshot = {"state": "pending", "id": "job-x"}
        with pytest.raises(ServiceError) as err:
            PlacementClient.result_score(snapshot)
        assert err.value.status == 409


class TestWireEncoding:
    def test_request_dict_is_what_travels(self, server, client):
        """The HTTP path accepts exactly request_to_dict's rendering."""
        payload = {"request": request_to_dict(_search())}
        req = urllib.request.Request(
            f"{server.url}/jobs",
            data=json.dumps(payload).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req) as resp:
            assert resp.status == 201
            body = json.loads(resp.read())
        assert body["state"] in ("pending", "running", "done")
        client.wait(body["id"], timeout=30.0)
