"""Chaos hardening: mixed job kinds under crash injection and restart.

The service's contract is that chaos is invisible in the results:
worker crashes are retried, restarts leave pending jobs observable
and re-submittable, and the digest-keyed result cache guarantees one
payload per request no matter how many threads race. These tests fire
a mixed plan / des-rank / reschedule / coschedule job stream from
several submitter threads while an ``execute_fn`` wrapper injects
periodic worker crashes, then assert the three invariants named by
the issue: no lost jobs, no duplicate digests with differing
payloads, and counters consistent with the ``GET /stats`` payload.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.coschedule import EnsembleRequest
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member
from repro.service.api import PlacementServer
from repro.service.cache import ResultCache
from repro.service.client import PlacementClient
from repro.service.jobs import JobState
from repro.service.schemas import CoscheduleOptions, PlacementRequest
from repro.service.workers import PlacementService, execute_request

SUBMITTER_THREADS = 4
CRASH_EVERY = 5  # every 5th execution raises — retries must absorb it


def _spec(name: str, members: int = 1, n_steps: int = 2) -> EnsembleSpec:
    return EnsembleSpec(
        name,
        tuple(
            default_member(
                f"{name}-m{i}",
                num_analyses=1,
                n_steps=n_steps,
                sim_cores=16,
                ana_cores=8,
            )
            for i in range(members)
        ),
    )


def _mixed_requests() -> list:
    """One request per service kind: plan, des-rank, reschedule,
    coschedule — small enough that a full chaos round stays fast."""
    plan = PlacementRequest(kind="search", spec=_spec("plan"), num_nodes=2)
    rank_spec = _spec("rank")
    des_rank = PlacementRequest(
        kind="rank",
        spec=rank_spec,
        num_nodes=2,
        candidates={
            "colocated": EnsemblePlacement(2, (MemberPlacement(0, (0,)),)),
            "split": EnsemblePlacement(2, (MemberPlacement(0, (1,)),)),
        },
        robust_rate=0.05,
        rank_method="des",
        trials=2,
    )
    resched_spec = EnsembleSpec(
        "resched",
        tuple(
            default_member(f"em{i}", num_analyses=1, n_steps=8)
            for i in range(3)
        ),
    )
    reschedule = PlacementRequest(
        kind="reschedule",
        spec=resched_spec,
        num_nodes=4,
        placement=EnsemblePlacement(
            4, tuple(MemberPlacement(i, (i,)) for i in range(3))
        ),
    )
    stream = (
        EnsembleRequest(name="co-a", spec=_spec("co-a")),
        EnsembleRequest(
            name="co-b", spec=_spec("co-b"), arrival_time=10.0, priority=1
        ),
    )
    coschedule = PlacementRequest(
        kind="coschedule",
        spec=stream[0].spec,
        num_nodes=4,
        coschedule=CoscheduleOptions(requests=stream),
    )
    return [plan, des_rank, reschedule, coschedule]


class _CrashInjector:
    """Wrap the real executor; raise on every ``every``-th call."""

    def __init__(self, every: int = CRASH_EVERY) -> None:
        self.every = every
        self.calls = 0
        self.crashes = 0
        self._lock = threading.Lock()

    def __call__(self, request, stage_cache=None):
        with self._lock:
            self.calls += 1
            crash = self.calls % self.every == 0
            if crash:
                self.crashes += 1
        if crash:
            raise RuntimeError("injected worker crash")
        return execute_request(request, stage_cache=stage_cache)


def _assert_chaos_invariants(service, jobs) -> None:
    """No lost jobs, no conflicting digests, stats-consistent."""
    payload_by_digest = {}
    for job in jobs:
        finished = service.wait(job.id, timeout=120.0)
        assert finished.state is JobState.DONE, finished.error
        rendered = json.dumps(finished.result, sort_keys=True)
        previous = payload_by_digest.setdefault(finished.digest, rendered)
        assert previous == rendered, (
            f"digest {finished.digest[:12]} mapped to two payloads"
        )
    stats = service.stats()
    queue = stats["queue"]
    assert queue["submitted"] == len(jobs)
    assert queue["done"] == len(jobs)
    assert queue["failed"] == 0
    assert queue["pending"] == 0 and queue["running"] == 0
    # every submit() consulted the result cache exactly once
    cache = stats["result_cache"]
    assert cache["hits"] + cache["misses"] == len(jobs)
    assert cache["size"] == len(_mixed_requests())


@pytest.mark.slow
class TestMixedChaos:
    def test_threads_and_crashes_lose_nothing(self):
        injector = _CrashInjector()
        jobs = []
        jobs_lock = threading.Lock()
        with PlacementService(
            workers=3, max_retries=CRASH_EVERY, execute_fn=injector
        ) as service:

            def submitter(offset: int) -> None:
                batch = _mixed_requests()
                rotated = batch[offset:] + batch[:offset]
                for request in rotated:
                    job = service.submit(request)
                    with jobs_lock:
                        jobs.append(job)

            threads = [
                threading.Thread(target=submitter, args=(i,))
                for i in range(SUBMITTER_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
                assert not thread.is_alive()
            assert len(jobs) == SUBMITTER_THREADS * len(_mixed_requests())
            _assert_chaos_invariants(service, jobs)
            assert injector.crashes > 0, "chaos must actually fire"

    def test_coschedule_digest_unique_per_payload_under_race(self):
        """Racing duplicate coschedule submissions coalesce onto one
        digest and one payload — never recomputed divergently."""
        request = _mixed_requests()[3]
        jobs = []
        with PlacementService(workers=2) as service:
            for _ in range(6):
                jobs.append(service.submit(request))
            results = {
                json.dumps(
                    service.wait(job.id, timeout=120.0).result,
                    sort_keys=True,
                )
                for job in jobs
            }
            assert len(results) == 1
            assert len({job.digest for job in jobs}) == 1


@pytest.mark.slow
class TestWorkerRestart:
    def test_stop_midflight_then_resume_on_fresh_pool(self):
        """Killing the pool mid-stream loses nothing: pending jobs stay
        observable, and a restarted service sharing the result cache
        finishes the stream with cache-consistent payloads."""
        release = threading.Event()
        started = threading.Event()

        def stalling(request, stage_cache=None):
            started.set()
            if not release.wait(30.0):  # pragma: no cover - timeout guard
                raise RuntimeError("release never fired")
            return execute_request(request, stage_cache=stage_cache)

        shared_cache = ResultCache()
        requests = _mixed_requests()
        first = PlacementService(
            workers=1, result_cache=shared_cache, execute_fn=stalling
        )
        first.start()
        submitted = [first.submit(request) for request in requests]
        assert started.wait(10.0)
        stopper = threading.Thread(target=first.stop)
        stopper.start()
        release.set()
        stopper.join(timeout=30.0)
        assert not stopper.is_alive()
        states = [first.queue.poll(job.id).state for job in submitted]
        assert JobState.DONE in states  # the in-flight job resolved
        assert all(
            state in (JobState.DONE, JobState.PENDING) for state in states
        )
        # restart: a fresh pool over the same result cache re-runs only
        # what the first life never finished
        with PlacementService(
            workers=2, result_cache=shared_cache
        ) as second:
            finished = [
                second.wait(second.submit(request).id, timeout=120.0)
                for request in requests
            ]
        assert all(job.state is JobState.DONE for job in finished)
        done_first = sum(1 for state in states if state is JobState.DONE)
        cached_second = sum(1 for job in finished if job.cached)
        assert cached_second >= done_first


@pytest.mark.slow
class TestStatsOverHttp:
    def test_get_stats_matches_service_counters(self):
        """The ``GET /stats`` wire payload is the same ledger the
        service keeps internally — including the coschedule section."""
        injector = _CrashInjector()
        service = PlacementService(
            workers=2, max_retries=CRASH_EVERY, execute_fn=injector
        )
        with PlacementServer(service=service, port=0) as server:
            client = PlacementClient(server.url)
            snapshots = [
                client.wait(client.submit(request)["id"], timeout=120.0)
                for request in _mixed_requests()
            ]
            assert all(s["state"] == "done" for s in snapshots)
            wire = client.stats()
            local = service.stats()
            assert wire["queue"] == local["queue"]
            assert wire["result_cache"] == local["result_cache"]
            assert wire["coschedule"] == local["coschedule"]
            assert wire["queue"]["done"] == len(snapshots)
            assert (
                wire["result_cache"]["hits"]
                + wire["result_cache"]["misses"]
                == len(snapshots)
            )
            assert wire["coschedule"]["streams"] >= 1
            assert wire["coschedule"]["completions"] >= 2
