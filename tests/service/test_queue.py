"""PlacementJobQueue semantics: priority, lifecycle, determinism.

Exercised single-threaded — claim/complete/fail/requeue are called
directly, the way a worker would, so every ordering assertion is
deterministic.
"""

from __future__ import annotations

import pytest

from repro.runtime.spec import EnsembleSpec, default_member
from repro.service.jobs import JobState, PlacementJobQueue
from repro.service.schemas import PlacementRequest, canonical_digest
from repro.util.errors import ValidationError


def _request(num_nodes: int = 2, n_steps: int = 2) -> PlacementRequest:
    spec = EnsembleSpec(
        "q", (default_member("em1", num_analyses=1, n_steps=n_steps),)
    )
    return PlacementRequest(kind="search", spec=spec, num_nodes=num_nodes)


class TestSubmitAndIds:
    def test_ids_are_deterministic(self):
        """Replaying a submission sequence reproduces the ids."""

        def run():
            queue = PlacementJobQueue()
            return [
                queue.submit(_request(num_nodes=n)).id for n in (2, 3, 2)
            ]

        first, second = run(), run()
        assert first == second
        assert first[0].startswith("job-000000-")
        assert first[1].startswith("job-000001-")

    def test_id_embeds_content_digest(self):
        queue = PlacementJobQueue()
        request = _request()
        job = queue.submit(request)
        digest = canonical_digest(request)
        assert job.digest == digest
        assert job.id == f"job-000000-{digest[:12]}"

    def test_closed_queue_refuses_submissions(self):
        queue = PlacementJobQueue()
        queue.close()
        with pytest.raises(ValidationError, match="closed"):
            queue.submit(_request())


class TestPriorityOrdering:
    def test_higher_priority_claims_first(self):
        queue = PlacementJobQueue()
        low = queue.submit(_request(num_nodes=2), priority=0)
        high = queue.submit(_request(num_nodes=3), priority=5)
        mid = queue.submit(_request(num_nodes=4), priority=3)
        order = [queue.claim_next(timeout=0).id for _ in range(3)]
        assert order == [high.id, mid.id, low.id]

    def test_equal_priority_is_fifo(self):
        queue = PlacementJobQueue()
        jobs = [queue.submit(_request(num_nodes=n)) for n in (2, 3, 4)]
        order = [queue.claim_next(timeout=0).id for _ in range(3)]
        assert order == [j.id for j in jobs]

    def test_update_priority_reorders_pending(self):
        queue = PlacementJobQueue()
        first = queue.submit(_request(num_nodes=2))
        second = queue.submit(_request(num_nodes=3))
        assert queue.update_priority(second.id, 10)
        assert queue.claim_next(timeout=0).id == second.id
        assert queue.claim_next(timeout=0).id == first.id

    def test_priority_decrease_honoured(self):
        """Stale (higher-priority) heap entries must be skipped."""
        queue = PlacementJobQueue()
        demoted = queue.submit(_request(num_nodes=2), priority=9)
        steady = queue.submit(_request(num_nodes=3), priority=5)
        assert queue.update_priority(demoted.id, 1)
        assert queue.claim_next(timeout=0).id == steady.id
        assert queue.claim_next(timeout=0).id == demoted.id

    def test_update_priority_rejects_non_pending(self):
        queue = PlacementJobQueue()
        job = queue.submit(_request())
        queue.claim_next(timeout=0)
        assert not queue.update_priority(job.id, 7)
        assert not queue.update_priority("job-nope", 7)


class TestLifecycle:
    def test_claim_complete(self):
        queue = PlacementJobQueue()
        job = queue.submit(_request())
        claimed = queue.claim_next(timeout=0)
        assert claimed.id == job.id
        assert claimed.state is JobState.RUNNING
        assert claimed.attempts == 1
        queue.complete(job.id, {"score": 1})
        done = queue.poll(job.id)
        assert done.state is JobState.DONE
        assert done.result == {"score": 1}
        assert done.finished_at is not None

    def test_fail_records_error(self):
        queue = PlacementJobQueue()
        job = queue.submit(_request())
        queue.claim_next(timeout=0)
        queue.fail(job.id, "boom")
        assert queue.poll(job.id).state is JobState.FAILED
        assert queue.poll(job.id).error == "boom"

    def test_requeue_returns_to_pending(self):
        queue = PlacementJobQueue()
        job = queue.submit(_request())
        queue.claim_next(timeout=0)
        queue.requeue(job.id)
        assert queue.poll(job.id).state is JobState.PENDING
        reclaimed = queue.claim_next(timeout=0)
        assert reclaimed.id == job.id
        assert reclaimed.attempts == 2

    def test_complete_requires_running(self):
        queue = PlacementJobQueue()
        job = queue.submit(_request())
        with pytest.raises(ValidationError, match="expected running"):
            queue.complete(job.id, {})
        with pytest.raises(ValidationError, match="unknown job"):
            queue.fail("job-nope", "x")

    def test_cancel_pending_only(self):
        queue = PlacementJobQueue()
        job = queue.submit(_request())
        assert queue.cancel(job.id)
        assert queue.poll(job.id).state is JobState.CANCELLED
        assert not queue.cancel(job.id)  # already terminal
        running = queue.submit(_request(num_nodes=3))
        queue.claim_next(timeout=0)
        assert not queue.cancel(running.id)
        assert not queue.cancel("job-nope")

    def test_cancelled_job_never_claimed(self):
        queue = PlacementJobQueue()
        job = queue.submit(_request())
        queue.cancel(job.id)
        assert queue.claim_next(timeout=0) is None

    def test_claim_returns_none_when_closed_and_drained(self):
        queue = PlacementJobQueue()
        queue.close()
        assert queue.claim_next(timeout=None) is None

    def test_close_still_drains_pending(self):
        queue = PlacementJobQueue()
        job = queue.submit(_request())
        queue.close()
        assert queue.claim_next(timeout=0).id == job.id
        assert queue.claim_next(timeout=0) is None


class TestPopCompletedAndStats:
    def test_pop_completed_removes_terminal_in_submission_order(self):
        queue = PlacementJobQueue()
        a = queue.submit(_request(num_nodes=2))
        b = queue.submit(_request(num_nodes=3))
        c = queue.submit(_request(num_nodes=4), priority=9)
        # c claims first (priority); complete c then a, fail nothing
        queue.claim_next(timeout=0)
        queue.complete(c.id, {})
        queue.claim_next(timeout=0)
        queue.complete(a.id, {})
        popped = queue.pop_completed()
        assert [j.id for j in popped] == [a.id, c.id]  # submission order
        assert queue.poll(a.id) is None
        assert queue.poll(b.id) is not None
        assert queue.pop_completed() == []

    def test_stats_counts_states(self):
        queue = PlacementJobQueue()
        queue.submit(_request(num_nodes=2))
        queue.submit(_request(num_nodes=3))
        queue.submit(_request(num_nodes=4))
        claimed = queue.claim_next(timeout=0)
        queue.complete(claimed.id, {})
        stats = queue.stats()
        assert stats["submitted"] == 3
        assert stats["done"] == 1
        assert stats["pending"] == 2

    def test_add_finished_records_cached_job(self):
        queue = PlacementJobQueue()
        job = queue.add_finished(_request(), {"score": 7}, cached=True)
        assert job.state is JobState.DONE
        assert job.cached
        assert job.result == {"score": 7}
        assert queue.claim_next(timeout=0) is None

    def test_complete_pending_duplicates_coalesces(self):
        queue = PlacementJobQueue()
        original = queue.submit(_request())
        dup1 = queue.submit(_request())
        dup2 = queue.submit(_request())
        other = queue.submit(_request(num_nodes=3))
        claimed = queue.claim_next(timeout=0)
        assert claimed.id == original.id
        queue.complete(original.id, {"score": 42})
        count = queue.complete_pending_duplicates(
            original.digest, {"score": 42}
        )
        assert count == 2
        for dup in (dup1, dup2):
            job = queue.poll(dup.id)
            assert job.state is JobState.DONE
            assert job.cached
            assert job.result == {"score": 42}
        assert queue.poll(other.id).state is JobState.PENDING
        # the coalesced jobs' heap entries are stale, not claimable
        assert queue.claim_next(timeout=0).id == other.id
