"""Service determinism: pool size and submission order never matter.

The paper's provisioning study depends on placement decisions being a
pure function of (platform, ensemble, objective) — Section 2's F(P) has
no tie left to chance. The service must preserve that purity across
its concurrency machinery: the same job set submitted serially and
through an N-worker pool yields *identical* results — exact float
equality on every payload, not approximate agreement.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.service.schemas import (
    PlacementRequest,
    canonical_digest,
    score_from_dict,
)
from repro.service.workers import PlacementService, execute_request
from repro.util.errors import PlacementError
from tests.strategies import search_grids


def _requests_for(grids):
    """One search request per feasible grid draw (skip infeasible)."""
    requests = []
    for spec, num_nodes, cores_per_node in grids:
        request = PlacementRequest(
            kind="search",
            spec=spec,
            num_nodes=num_nodes,
            cores_per_node=cores_per_node,
        )
        try:
            execute_request(request)
        except PlacementError:
            continue
        requests.append(request)
    return requests


def _run_through_pool(requests, workers):
    """Submit every request to a fresh pool; results by digest."""
    with PlacementService(workers=workers) as service:
        jobs = [service.submit(r) for r in requests]
        snapshots = [service.wait(j.id, timeout=60.0) for j in jobs]
    return {j.digest: s.result for j, s in zip(jobs, snapshots)}


class TestPoolMatchesSerial:
    @settings(max_examples=5, deadline=None)
    @given(grids=st.lists(search_grids(), min_size=2, max_size=5))
    def test_n_workers_bit_identical_to_serial(self, grids):
        requests = _requests_for(grids)
        assume(requests)
        serial = {
            canonical_digest(r): execute_request(r) for r in requests
        }
        for workers in (1, 4):
            pooled = _run_through_pool(requests, workers)
            # dict equality over JSON payloads is exact float equality
            assert pooled == serial

    def test_submission_order_never_matters(self):
        from repro.runtime.spec import EnsembleSpec, default_member

        requests = [
            PlacementRequest(
                kind="search",
                spec=EnsembleSpec(
                    "order",
                    (
                        default_member(
                            "em1", num_analyses=k, n_steps=3
                        ),
                    ),
                ),
                num_nodes=n,
            )
            for k, n in ((1, 2), (2, 3), (1, 4))
        ]
        forward = _run_through_pool(requests, workers=3)
        backward = _run_through_pool(list(reversed(requests)), workers=3)
        assert forward == backward

    def test_scores_deserialize_identically(self):
        """The wire payload rebuilds the exact PlacementScore."""
        from repro.runtime.spec import EnsembleSpec, default_member

        request = PlacementRequest(
            kind="search",
            spec=EnsembleSpec(
                "exact", (default_member("em1", num_analyses=2, n_steps=4),)
            ),
            num_nodes=3,
        )
        direct = execute_request(request)
        pooled = _run_through_pool([request], workers=2)
        payload = pooled[canonical_digest(request)]
        assert payload == direct
        assert score_from_dict(payload["score"]) == score_from_dict(
            direct["score"]
        )
