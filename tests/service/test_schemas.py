"""Wire-format round-trips are lossless and digests are content keys.

The serialization contract is exact: a spec / placement / score /
request that travels ``to_dict -> json -> from_dict`` comes back with
the identical floats (json renders via ``repr``, which round-trips
IEEE-754). Digests depend on content only — two independently built
but semantically identical requests share one digest; flipping any
semantic field changes it.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import assume, given, settings

from repro.components.base import ComponentModel
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.objectives import score_placement
from repro.search.engine import find_best_placement
from repro.service.schemas import (
    SCHEMA_VERSION,
    PlacementRequest,
    canonical_digest,
    canonical_json,
    component_to_dict,
    placement_from_dict,
    placement_to_dict,
    request_from_dict,
    request_to_dict,
    score_from_dict,
    score_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.util.errors import PlacementError, ValidationError
from tests.strategies import ensemble_stream, search_grids


def _json_round_trip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


def _best_or_skip(spec, num_nodes, cores_per_node):
    """The grid's best score, assuming the draw is feasible."""
    try:
        best, _ = find_best_placement(spec, num_nodes, cores_per_node)
    except PlacementError:
        assume(False)
    return best


def _search_request(spec, num_nodes, cores_per_node) -> PlacementRequest:
    return PlacementRequest(
        kind="search",
        spec=spec,
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
    )


class TestSpecRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(grid=search_grids())
    def test_spec_survives_json(self, grid):
        spec, _, _ = grid
        payload = _json_round_trip(spec_to_dict(spec))
        rebuilt = spec_from_dict(payload)
        # ComponentModel has no __eq__; content equality is asserted
        # through the canonical rendering itself
        assert spec_to_dict(rebuilt) == spec_to_dict(spec)
        assert rebuilt.name == spec.name
        assert len(rebuilt.members) == len(spec.members)

    @settings(max_examples=10, deadline=None)
    @given(grid=search_grids())
    def test_rebuilt_spec_scores_identically(self, grid):
        spec, num_nodes, cores_per_node = grid
        best = _best_or_skip(spec, num_nodes, cores_per_node)
        rebuilt = spec_from_dict(_json_round_trip(spec_to_dict(spec)))
        rescored = score_placement(rebuilt, best.placement)
        assert rescored.objective == best.objective
        assert rescored.ensemble_makespan == best.ensemble_makespan
        assert rescored.member_indicators == best.member_indicators

    def test_unknown_component_type_rejected(self):
        class OpaqueModel(ComponentModel):
            def solo_compute_time(self) -> float:  # pragma: no cover
                return 1.0

            def payload_bytes(self) -> int:  # pragma: no cover
                return 1

        member = default_member("em1", num_analyses=1, n_steps=2)
        opaque = OpaqueModel.__new__(OpaqueModel)
        opaque.spec = member.simulation.spec
        opaque.profile = member.simulation.profile
        with pytest.raises(ValidationError, match="non-serializable"):
            component_to_dict(opaque)

    def test_unknown_component_payload_rejected(self):
        member = default_member("em1", num_analyses=1, n_steps=2)
        payload = component_to_dict(member.simulation)
        payload["type"] = "quantum_oracle"
        with pytest.raises(ValidationError, match="unknown component type"):
            spec_from_dict(
                {
                    "name": "x",
                    "members": [
                        {
                            "name": "em1",
                            "n_steps": 2,
                            "simulation": payload,
                            "analyses": [],
                        }
                    ],
                }
            )


class TestPlacementAndScoreRoundTrip:
    def test_placement_round_trip_exact(self):
        placement = EnsemblePlacement(
            3,
            (
                MemberPlacement(0, (1, 2)),
                MemberPlacement(2, (0,)),
            ),
        )
        rebuilt = placement_from_dict(
            _json_round_trip(placement_to_dict(placement))
        )
        assert rebuilt == placement

    @settings(max_examples=10, deadline=None)
    @given(grid=search_grids())
    def test_score_floats_survive_exactly(self, grid):
        spec, num_nodes, cores_per_node = grid
        best = _best_or_skip(spec, num_nodes, cores_per_node)
        rebuilt = score_from_dict(_json_round_trip(score_to_dict(best)))
        assert rebuilt.objective == best.objective
        assert rebuilt.ensemble_makespan == best.ensemble_makespan
        assert rebuilt.member_indicators == best.member_indicators
        assert rebuilt.robust_penalty == best.robust_penalty
        assert rebuilt.placement == best.placement
        assert rebuilt == best  # PlacementScore key equality


class TestRequestValidation:
    def _spec(self):
        return EnsembleSpec(
            "v", (default_member("em1", num_analyses=1, n_steps=2),)
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown request kind"):
            PlacementRequest(kind="optimize", spec=self._spec(), num_nodes=2)

    def test_score_needs_placement(self):
        with pytest.raises(ValidationError, match="needs a placement"):
            PlacementRequest(kind="score", spec=self._spec(), num_nodes=2)

    def test_rank_needs_candidates(self):
        with pytest.raises(ValidationError, match="named candidate"):
            PlacementRequest(kind="rank", spec=self._spec(), num_nodes=2)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="recovery policy"):
            PlacementRequest(
                kind="search",
                spec=self._spec(),
                num_nodes=2,
                policy="wishful",
            )

    def test_unsupported_schema_version_rejected(self):
        request = _search_request(self._spec(), 2, 32)
        payload = request_to_dict(request)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValidationError, match="schema_version"):
            request_from_dict(payload)


class TestCanonicalDigest:
    @settings(max_examples=20, deadline=None)
    @given(grid=search_grids())
    def test_round_trip_preserves_digest(self, grid):
        request = _search_request(*grid)
        rebuilt = request_from_dict(
            _json_round_trip(request_to_dict(request))
        )
        assert canonical_digest(rebuilt) == canonical_digest(request)

    def test_independent_identical_requests_share_digest(self):
        def build():
            spec = EnsembleSpec(
                "twin", (default_member("em1", num_analyses=2, n_steps=3),)
            )
            return _search_request(spec, 3, 32)

        assert canonical_digest(build()) == canonical_digest(build())

    def test_every_semantic_field_enters_digest(self):
        spec = EnsembleSpec(
            "base", (default_member("em1", num_analyses=1, n_steps=3),)
        )
        base = _search_request(spec, 3, 32)
        variants = [
            _search_request(spec, 4, 32),  # num_nodes
            _search_request(spec, 3, 48),  # cores_per_node
            PlacementRequest(
                kind="search", spec=spec, num_nodes=3, robust_rate=0.01
            ),
            PlacementRequest(
                kind="search",
                spec=spec,
                num_nodes=3,
                robust_rate=0.01,
                policy="restart",
            ),
            _search_request(
                EnsembleSpec(
                    "base",
                    (default_member("em1", num_analyses=1, n_steps=4),),
                ),
                3,
                32,
            ),
        ]
        digests = [canonical_digest(v) for v in variants]
        assert canonical_digest(base) not in digests
        assert len(set(digests)) == len(digests)

    def test_canonical_json_is_key_order_independent(self):
        a = canonical_json({"b": 1, "a": {"y": 2.5, "x": [1, 2]}})
        b = canonical_json({"a": {"x": [1, 2], "y": 2.5}, "b": 1})
        assert a == b


class TestDesRankFields:
    """The rank_method/trials fields added for batched DES ranking."""

    def _spec(self):
        return EnsembleSpec(
            "des", (default_member("em1", num_analyses=1, n_steps=3),)
        )

    def _rank_request(self, **overrides):
        from repro.configs.generator import enumerate_placements

        spec = self._spec()
        placement = next(iter(enumerate_placements(spec, 2, 32)))
        fields = dict(
            kind="rank",
            spec=spec,
            num_nodes=2,
            candidates={"c0": placement},
        )
        fields.update(overrides)
        return PlacementRequest(**fields)

    def test_unknown_rank_method_rejected(self):
        with pytest.raises(ValidationError, match="rank_method"):
            self._rank_request(rank_method="oracle")

    def test_non_positive_trials_rejected(self):
        with pytest.raises(ValidationError, match="trials"):
            self._rank_request(trials=0)

    def test_default_values_stay_off_the_wire(self):
        """Requests predating the fields must keep their digests: the
        defaults are never serialized, so the canonical payload (and
        therefore the cache key) is byte-identical to the old format."""
        payload = request_to_dict(self._rank_request())
        assert "rank_method" not in payload
        assert "trials" not in payload

    def test_non_default_values_round_trip(self):
        request = self._rank_request(rank_method="des", trials=7)
        payload = _json_round_trip(request_to_dict(request))
        assert payload["rank_method"] == "des"
        assert payload["trials"] == 7
        rebuilt = request_from_dict(payload)
        assert rebuilt.rank_method == "des"
        assert rebuilt.trials == 7
        assert canonical_digest(rebuilt) == canonical_digest(request)

    def test_rank_method_and_trials_enter_digest(self):
        base = self._rank_request()
        variants = [
            self._rank_request(rank_method="des"),
            self._rank_request(rank_method="des", trials=7),
        ]
        digests = [canonical_digest(v) for v in variants]
        assert canonical_digest(base) not in digests
        assert len(set(digests)) == len(digests)


class TestCoscheduleFields:
    """The coschedule options field added for cluster co-scheduling."""

    def _coschedule_request(self, stream, **overrides):
        from repro.service.schemas import CoscheduleOptions

        fields = dict(
            kind="coschedule",
            spec=stream[0].spec,
            num_nodes=4,
            coschedule=CoscheduleOptions(requests=tuple(stream)),
        )
        fields.update(overrides)
        return PlacementRequest(**fields)

    @given(stream=ensemble_stream())
    @settings(max_examples=25, deadline=None)
    def test_stream_round_trips_losslessly(self, stream):
        from repro.service.schemas import coschedule_options_to_dict

        request = self._coschedule_request(stream)
        payload = _json_round_trip(request_to_dict(request))
        rebuilt = request_from_dict(payload)
        assert coschedule_options_to_dict(
            rebuilt.coschedule
        ) == coschedule_options_to_dict(request.coschedule)
        assert canonical_digest(rebuilt) == canonical_digest(request)

    @given(stream=ensemble_stream(max_requests=2))
    @settings(max_examples=10, deadline=None)
    def test_objective_weights_enter_digest(self, stream):
        from repro.service.schemas import CoscheduleOptions

        base = self._coschedule_request(stream)
        variant = self._coschedule_request(
            stream,
            coschedule=CoscheduleOptions(
                requests=tuple(stream), fairness_weight=1.0
            ),
        )
        assert canonical_digest(base) != canonical_digest(variant)

    def test_coschedule_needs_a_stream(self):
        spec = EnsembleSpec(
            "co", (default_member("em1", num_analyses=1, n_steps=3),)
        )
        with pytest.raises(ValidationError, match="stream"):
            PlacementRequest(kind="coschedule", spec=spec, num_nodes=4)

    def test_spec_must_match_first_stream_entry(self):
        from repro.coschedule.requests import EnsembleRequest
        from repro.service.schemas import CoscheduleOptions

        stream_spec = EnsembleSpec(
            "co", (default_member("em1", num_analyses=1, n_steps=3),)
        )
        other_spec = EnsembleSpec(
            "other", (default_member("em1", num_analyses=1, n_steps=5),)
        )
        options = CoscheduleOptions(
            requests=(EnsembleRequest(name="co", spec=stream_spec),)
        )
        with pytest.raises(ValidationError, match="first"):
            PlacementRequest(
                kind="coschedule",
                spec=other_spec,
                num_nodes=4,
                coschedule=options,
            )

    def test_membership_events_round_trip(self):
        from repro.coschedule.requests import EnsembleRequest, MembershipEvent
        from repro.service.schemas import CoscheduleOptions

        spec = EnsembleSpec(
            "ela", (default_member("ela-m0", num_analyses=1, n_steps=3),)
        )
        joiner = default_member("late", num_analyses=1, n_steps=3)
        stream = (
            EnsembleRequest(
                name="ela",
                spec=spec,
                membership=(
                    MembershipEvent(5.0, "join", "late", member=joiner),
                    MembershipEvent(9.0, "leave", "ela-m0"),
                ),
            ),
        )
        from repro.service.schemas import membership_event_to_dict

        request = self._coschedule_request(stream)
        payload = _json_round_trip(request_to_dict(request))
        rebuilt = request_from_dict(payload)
        rebuilt_events = rebuilt.coschedule.requests[0].membership
        assert [membership_event_to_dict(e) for e in rebuilt_events] == [
            membership_event_to_dict(e) for e in stream[0].membership
        ]

    def test_empty_stream_rejected(self):
        from repro.service.schemas import CoscheduleOptions

        with pytest.raises(ValidationError, match="at least one"):
            CoscheduleOptions(requests=())
