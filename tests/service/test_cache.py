"""ResultCache: LRU eviction, hit/miss/eviction counters, key identity.

The cache is keyed by canonical digests — distinct keys never collide
(distinct strings), and one key always maps to its latest value. The
eviction tests pin the LRU order: ``get`` refreshes recency, ``put``
evicts the least-recently-used entry when full.
"""

from __future__ import annotations

from repro.service.cache import ResultCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k1") is None
        cache.put("k1", {"v": 1})
        assert cache.get("k1") == {"v": 1}
        assert "k1" in cache
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["size"] == 1
        assert stats["max_entries"] == 4

    def test_put_overwrites_in_place(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", {"v": 1})
        cache.put("k1", {"v": 2})
        assert cache.get("k1") == {"v": 2}
        assert len(cache) == 1

    def test_distinct_keys_never_collide(self):
        """Near-identical digests map to independent entries."""
        cache = ResultCache(max_entries=8)
        key_a = "a" * 63 + "0"
        key_b = "a" * 63 + "1"
        cache.put(key_a, {"v": "a"})
        cache.put(key_b, {"v": "b"})
        assert cache.get(key_a) == {"v": "a"}
        assert cache.get(key_b) == {"v": "b"}

    def test_clear_resets_entries_not_counters(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", {"v": 1})
        cache.get("k1")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1
        assert cache.get("k1") is None  # one more miss
        assert cache.stats()["misses"] == 1


class TestEviction:
    def test_lru_entry_evicted_first(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", {"v": 1})
        cache.put("k2", {"v": 2})
        cache.put("k3", {"v": 3})  # evicts k1
        assert cache.get("k1") is None
        assert cache.get("k2") == {"v": 2}
        assert cache.get("k3") == {"v": 3}
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", {"v": 1})
        cache.put("k2", {"v": 2})
        cache.get("k1")  # k2 is now LRU
        cache.put("k3", {"v": 3})  # evicts k2, not k1
        assert cache.get("k1") == {"v": 1}
        assert cache.get("k2") is None
        assert cache.get("k3") == {"v": 3}

    def test_eviction_counter_accumulates(self):
        cache = ResultCache(max_entries=1)
        for i in range(5):
            cache.put(f"k{i}", {"v": i})
        assert cache.stats()["evictions"] == 4
        assert len(cache) == 1
        assert cache.get("k4") == {"v": 4}
