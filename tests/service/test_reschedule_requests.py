"""The ``reschedule`` request kind and its digest-stability contract.

Two things are pinned here. First, the wire format: adding the
``reschedule`` field must not perturb any existing digest — requests
without options serialize to the exact pre-extension payload (the
result cache and the deterministic job ids key off those digests).
Second, the semantics: a reschedule job runs the static and the
closed-loop DES under one shared drift schedule and reports the
attributable improvement, end to end through the worker pool and the
HTTP surface.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member
from repro.service.api import make_server
from repro.service.client import PlacementClient
from repro.service.schemas import (
    PlacementRequest,
    RescheduleOptions,
    canonical_digest,
    request_from_dict,
    request_to_dict,
    reschedule_options_from_dict,
    reschedule_options_to_dict,
)
from repro.service.workers import execute_request
from repro.util.errors import ValidationError


def _spec(n_steps: int = 12) -> EnsembleSpec:
    return EnsembleSpec(
        "resched",
        tuple(
            default_member(f"em{i}", num_analyses=1, n_steps=n_steps)
            for i in range(3)
        ),
    )


def _placement() -> EnsemblePlacement:
    return EnsemblePlacement(
        4, tuple(MemberPlacement(i, (i,)) for i in range(3))
    )


def _options(**overrides) -> RescheduleOptions:
    knobs = dict(
        drift_start=2, window=2, threshold=1.2, min_dwell=2
    )
    knobs.update(overrides)
    return RescheduleOptions(**knobs)


def _reschedule_request(options=None) -> PlacementRequest:
    return PlacementRequest(
        kind="reschedule",
        spec=_spec(),
        num_nodes=4,
        placement=_placement(),
        reschedule=options,
    )


class TestDigestStability:
    def test_requests_without_options_serialize_as_before(self):
        """No ``reschedule`` key when the field is None — pre-existing
        request payloads (and therefore digests) are untouched."""
        request = PlacementRequest(kind="search", spec=_spec(), num_nodes=2)
        payload = request_to_dict(request)
        assert "reschedule" not in payload
        rebuilt = request_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.reschedule is None
        assert canonical_digest(rebuilt) == canonical_digest(request)

    def test_options_change_the_digest(self):
        base = _reschedule_request(options=None)
        with_options = _reschedule_request(options=_options())
        assert canonical_digest(base) != canonical_digest(with_options)

    def test_distinct_options_distinct_digests(self):
        a = _reschedule_request(options=_options(threshold=1.2))
        b = _reschedule_request(options=_options(threshold=1.3))
        assert canonical_digest(a) != canonical_digest(b)


class TestOptionsRoundTrip:
    def test_to_from_dict_is_lossless(self):
        options = _options(drift_kind="ramp", drift_magnitude=0.25, seed=3)
        payload = json.loads(json.dumps(reschedule_options_to_dict(options)))
        assert reschedule_options_from_dict(payload) == options

    def test_from_dict_fills_defaults(self):
        assert reschedule_options_from_dict({}) == RescheduleOptions()

    def test_request_round_trip_carries_options(self):
        request = _reschedule_request(options=_options())
        payload = json.loads(json.dumps(request_to_dict(request)))
        rebuilt = request_from_dict(payload)
        assert rebuilt.reschedule == request.reschedule
        assert rebuilt.kind == "reschedule"

    def test_validation(self):
        with pytest.raises(ValidationError):
            RescheduleOptions(drift_kind="sawtooth")
        with pytest.raises(ValidationError):
            RescheduleOptions(drift_kind="step", drift_magnitude=1.0)
        with pytest.raises(ValidationError):
            RescheduleOptions(drift_kind="ramp", drift_magnitude=0.0)
        with pytest.raises(ValidationError):
            RescheduleOptions(threshold=1.0)
        with pytest.raises(ValidationError):
            RescheduleOptions(window=0)
        with pytest.raises(ValidationError):
            _reschedule_request().__class__(
                kind="reschedule", spec=_spec(), num_nodes=4
            )  # placement is required


class TestExecution:
    def test_execute_request_reports_improvement(self):
        result = execute_request(_reschedule_request(options=_options()))
        assert set(result) >= {
            "static_makespan",
            "rescheduled_makespan",
            "improvement",
            "controller",
        }
        assert result["rescheduled_makespan"] < result["static_makespan"]
        assert result["improvement"] == pytest.approx(
            1.0
            - result["rescheduled_makespan"] / result["static_makespan"]
        )
        assert result["improvement"] > 0.0
        assert result["controller"]["migrations"] >= 1

    def test_execute_request_is_deterministic(self):
        request = _reschedule_request(options=_options())
        first = execute_request(request)
        second = execute_request(request)
        assert first["static_makespan"] == second["static_makespan"]
        assert (
            first["rescheduled_makespan"] == second["rescheduled_makespan"]
        )


class TestOverHttp:
    @pytest.fixture()
    def client(self):
        with make_server(port=0, workers=2) as server:
            yield PlacementClient(server.url)

    def test_submit_reschedule_end_to_end(self, client):
        job = client.submit_reschedule(
            _spec(), num_nodes=4, placement=_placement(),
            reschedule=_options(),
        )
        snapshot = client.wait(job["id"], timeout=60.0)
        assert snapshot["state"] == "done"
        result = snapshot["result"]
        assert result["improvement"] > 0.0
        assert result["controller"]["migrations"] >= 1

    def test_stats_expose_search_and_reschedule_sections(self, client):
        stats = client.stats()
        assert "search" in stats and "reschedule" in stats
        assert "last_routing" in stats["search"]
        assert {
            "searches",
            "vectorized_requested",
            "vectorized_used",
            "vectorized_fallbacks",
        } <= set(stats["search"])
        assert {
            "runs",
            "replans_triggered",
            "replans_accepted",
            "migrations",
            "components_moved",
        } <= set(stats["reschedule"])
