"""PlacementService: execution, cache-first submit, retry, timeout.

The fault-injection tests substitute ``execute_fn`` — a crashing,
slow, or counting stand-in — so the retry/timeout machinery is
exercised without real placement work. The end-to-end tests run the
real :func:`execute_request` on small specs.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.objectives import score_placement
from repro.search.engine import find_best_placement
from repro.service.cache import ResultCache
from repro.service.jobs import JobState
from repro.service.schemas import (
    PlacementRequest,
    score_from_dict,
)
from repro.service.workers import PlacementService, execute_request
from repro.util.errors import ValidationError


def _spec(n_steps: int = 2) -> EnsembleSpec:
    return EnsembleSpec(
        "svc", (default_member("em1", num_analyses=1, n_steps=n_steps),)
    )


def _search(num_nodes: int = 2, n_steps: int = 2) -> PlacementRequest:
    return PlacementRequest(
        kind="search", spec=_spec(n_steps), num_nodes=num_nodes
    )


class TestExecuteRequest:
    def test_search_matches_engine(self):
        request = _search()
        payload = execute_request(request)
        best, evaluated = find_best_placement(
            request.spec, request.num_nodes, request.cores_per_node
        )
        assert payload["evaluated"] == evaluated
        assert score_from_dict(payload["score"]) == best
        assert payload["score"]["objective"] == best.objective

    def test_score_matches_scorer(self):
        spec = _spec()
        placement = EnsemblePlacement(2, (MemberPlacement(0, (1,)),))
        request = PlacementRequest(
            kind="score", spec=spec, num_nodes=2, placement=placement
        )
        payload = execute_request(request)
        direct = score_placement(spec, placement)
        assert payload["score"]["objective"] == direct.objective
        assert payload["score"]["ensemble_makespan"] == direct.ensemble_makespan

    def test_rank_orders_best_first(self):
        spec = _spec()
        candidates = {
            "colocated": EnsemblePlacement(2, (MemberPlacement(0, (0,)),)),
            "split": EnsemblePlacement(2, (MemberPlacement(0, (1,)),)),
        }
        request = PlacementRequest(
            kind="rank",
            spec=spec,
            num_nodes=2,
            candidates=candidates,
            robust_rate=0.01,
        )
        payload = execute_request(request)
        names = [entry["name"] for entry in payload["ranking"]]
        assert sorted(names) == ["colocated", "split"]
        objectives = [entry["objective"] for entry in payload["ranking"]]
        assert objectives == sorted(objectives, reverse=True)


class TestServiceLifecycle:
    def test_submit_wait_done(self):
        with PlacementService(workers=2) as service:
            job = service.submit(_search())
            finished = service.wait(job.id, timeout=30.0)
            assert finished.state is JobState.DONE
            assert not finished.cached
            assert finished.result["score"]["objective"] > 0

    def test_wait_unknown_job_raises(self):
        with PlacementService(workers=1) as service:
            with pytest.raises(ValidationError, match="unknown job"):
                service.wait("job-nope", timeout=1.0)

    def test_stop_leaves_pending_jobs_observable(self):
        started = threading.Event()
        release = threading.Event()

        def stalling(request, stage_cache=None):
            started.set()
            release.wait(10.0)
            return {"ok": True}

        service = PlacementService(workers=1, execute_fn=stalling)
        service.start()
        running = service.submit(_search(num_nodes=2))
        assert started.wait(5.0)
        pending = service.submit(_search(num_nodes=3))
        # initiate shutdown while the worker is mid-job, then release:
        # stop() flags the pool before the worker can claim the second
        # job, so the in-flight one resolves and the queued one stays
        stopper = threading.Thread(target=service.stop)
        stopper.start()
        assert service._stopping.wait(5.0)  # stop() has flagged the pool
        release.set()
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        # the in-flight job resolved; the queued one stayed pending
        assert service.queue.poll(running.id).state is JobState.DONE
        assert service.queue.poll(pending.id).state is JobState.PENDING

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            PlacementService(workers=0)
        with pytest.raises(ValidationError):
            PlacementService(max_retries=-1)


class TestResultCachePath:
    def test_second_submit_is_cache_hit(self):
        with PlacementService(workers=1) as service:
            first = service.wait(service.submit(_search()).id, timeout=30.0)
            second = service.submit(_search())
            assert second.state is JobState.DONE
            assert second.cached
            assert second.result == first.result
            stats = service.result_cache.stats()
            assert stats["hits"] == 1

    def test_empty_caller_cache_is_kept(self):
        # regression: an empty ResultCache is falsy (len 0), so the old
        # ``result_cache or ResultCache()`` silently swapped in a fresh
        # one and shared-cache restarts never saw prior results
        cache = ResultCache()
        service = PlacementService(workers=1, result_cache=cache)
        assert service.result_cache is cache

    def test_distinct_requests_miss(self):
        with PlacementService(workers=1) as service:
            service.wait(service.submit(_search(num_nodes=2)).id, 30.0)
            other = service.submit(_search(num_nodes=3))
            assert other.state is JobState.PENDING
            service.wait(other.id, timeout=30.0)

    def test_pending_duplicates_coalesce(self):
        release = threading.Event()
        claimed = threading.Event()
        calls = []

        def slow_once(request, stage_cache=None):
            calls.append(request.num_nodes)
            claimed.set()
            release.wait(10.0)
            return {"computed": request.num_nodes}

        with PlacementService(workers=1, execute_fn=slow_once) as service:
            jobs = [service.submit(_search()) for _ in range(3)]
            assert claimed.wait(5.0)  # the worker holds the first job
            release.set()
            snapshots = [service.wait(j.id, timeout=10.0) for j in jobs]
            assert [s.result for s in snapshots] == [
                {"computed": 2}
            ] * 3
            # only one execution: duplicates were coalesced or served
            # from the result cache, never recomputed
            assert len(calls) == 1
            assert sum(1 for s in snapshots if s.cached) == 2


class TestRetryAndTimeout:
    def test_crash_retries_then_succeeds(self):
        attempts = []

        def flaky(request, stage_cache=None):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient worker crash")
            return {"ok": True}

        with PlacementService(
            workers=1, max_retries=1, execute_fn=flaky
        ) as service:
            job = service.submit(_search())
            finished = service.wait(job.id, timeout=10.0)
            assert finished.state is JobState.DONE
            assert finished.attempts == 2
            assert len(attempts) == 2

    def test_retries_exhausted_fails_with_error(self):
        def always_crashes(request, stage_cache=None):
            raise RuntimeError("hard crash")

        with PlacementService(
            workers=1, max_retries=2, execute_fn=always_crashes
        ) as service:
            job = service.submit(_search())
            finished = service.wait(job.id, timeout=10.0)
            assert finished.state is JobState.FAILED
            assert finished.attempts == 3  # 1 initial + 2 retries
            assert "RuntimeError" in finished.error
            assert "hard crash" in finished.error

    def test_zero_retries_fails_on_first_crash(self):
        def crashes(request, stage_cache=None):
            raise ValueError("no second chance")

        with PlacementService(
            workers=1, max_retries=0, execute_fn=crashes
        ) as service:
            finished = service.wait(
                service.submit(_search()).id, timeout=10.0
            )
            assert finished.state is JobState.FAILED
            assert finished.attempts == 1

    def test_job_timeout_fails_job(self):
        hang = threading.Event()

        def stalls(request, stage_cache=None):
            hang.wait(30.0)
            return {"too": "late"}

        with PlacementService(
            workers=1, job_timeout=0.1, execute_fn=stalls
        ) as service:
            finished = service.wait(
                service.submit(_search()).id, timeout=10.0
            )
            assert finished.state is JobState.FAILED
            assert "timeout" in finished.error
            hang.set()  # release the abandoned daemon thread

    def test_fast_job_beats_timeout(self):
        with PlacementService(workers=1, job_timeout=60.0) as service:
            finished = service.wait(
                service.submit(_search()).id, timeout=30.0
            )
            assert finished.state is JobState.DONE

    def test_crash_results_never_cached(self):
        def crashes(request, stage_cache=None):
            raise RuntimeError("boom")

        cache = ResultCache()
        with PlacementService(
            workers=1, max_retries=0, result_cache=cache, execute_fn=crashes
        ) as service:
            service.wait(service.submit(_search()).id, timeout=10.0)
            assert len(cache) == 0


class TestStats:
    def test_stats_shape(self):
        with PlacementService(workers=2) as service:
            service.wait(service.submit(_search()).id, timeout=30.0)
            stats = service.stats()
            assert stats["workers"] == 2
            assert stats["queue"]["submitted"] == 1
            assert stats["queue"]["done"] == 1
            assert set(stats["result_cache"]) == {
                "hits", "misses", "evictions", "size", "max_entries"
            }
            assert set(stats["stage_cache"]) == {
                "stage_hits", "stage_misses", "node_hits", "node_misses"
            }
            # the search populated some worker's stage cache
            assert stats["stage_cache"]["stage_misses"] > 0


class TestDesRankPath:
    def _rank_request(self, **overrides):
        spec = _spec()
        fields = dict(
            kind="rank",
            spec=spec,
            num_nodes=2,
            candidates={
                "colocated": EnsemblePlacement(
                    2, (MemberPlacement(0, (0,)),)
                ),
                "split": EnsemblePlacement(2, (MemberPlacement(0, (1,)),)),
            },
            robust_rate=0.05,
        )
        fields.update(overrides)
        return PlacementRequest(**fields)

    def test_des_rank_matches_batched_engine_directly(self):
        from repro.faults.recovery import RetryBackoffPolicy
        from repro.scheduler.robust import (
            crash_straggler_factory,
            rank_placements_robust,
        )

        request = self._rank_request(rank_method="des", trials=4)
        payload = execute_request(request)
        direct = rank_placements_robust(
            request.spec,
            request.candidates,
            crash_straggler_factory(request.robust_rate),
            RetryBackoffPolicy(),
            trials=4,
            base_seed=request.base_seed,
            method="des",
            engine="batched",
        )
        assert [e["name"] for e in payload["ranking"]] == [
            s.name for s in direct
        ]
        assert [e["objective"] for e in payload["ranking"]] == [
            s.objective for s in direct
        ]

    def test_des_rank_scores_carry_trials(self):
        payload = execute_request(
            self._rank_request(rank_method="des", trials=2)
        )
        assert all(e["trials"] == 2 for e in payload["ranking"])

    def test_stats_surface_engine_counters(self):
        from repro.faults.batched import reset_engine_counters

        with PlacementService(workers=1) as service:
            reset_engine_counters()
            job = service.submit(
                self._rank_request(rank_method="des", trials=3)
            )
            service.wait(job.id, timeout=60.0)
            counters = service.stats()["batched"]
            assert counters["baseline_sims"] == 2
            assert counters["replicas_replayed"] == 2 * 3
            assert counters["fallback_reason"] is None
