"""Tests for report rendering (Gantt + summary)."""

import pytest

from repro.monitoring.report import STAGE_GLYPHS, gantt, summary_report
from repro.monitoring.tracer import Stage, StageTracer
from repro.runtime.placement import pack_members_per_node
from repro.runtime.runner import run_ensemble
from repro.util.errors import ValidationError


@pytest.fixture
def result(single_member_spec):
    return run_ensemble(
        single_member_spec, pack_members_per_node(single_member_spec)
    )


class TestGantt:
    def test_renders_all_components(self, result):
        chart = gantt(result.tracer, width=60)
        assert "em1.sim" in chart
        assert "em1.ana1" in chart

    def test_glyphs_present(self, result):
        chart = gantt(result.tracer, width=60)
        assert "S" in chart  # compute stage visible
        assert "A" in chart  # analysis stage visible

    def test_width_respected(self, result):
        chart = gantt(result.tracer, width=40)
        label_w = max(len(c) for c in result.tracer.components) + 1
        for line in chart.splitlines()[1:-1]:
            assert len(line) <= label_w + 40

    def test_component_subset(self, result):
        chart = gantt(result.tracer, components=["em1.sim"], width=30)
        assert "em1.sim" in chart
        assert "em1.ana1" not in chart

    def test_empty_window_rejected(self):
        tracer = StageTracer()
        tracer.record("x", Stage.SIM_COMPUTE, 0, 0.0, 0.0)
        with pytest.raises(ValidationError):
            gantt(tracer, width=10)

    def test_simulation_starts_before_analysis(self, result):
        """The first columns of the sim row are busy while the analysis
        row is still blank (it waits for the first write)."""
        chart = gantt(result.tracer, width=60).splitlines()
        sim_row = next(l for l in chart if l.startswith("em1.sim"))
        ana_row = next(l for l in chart if l.startswith("em1.ana1"))
        label_w = len("em1.ana1") + 1
        assert sim_row[label_w] == "S"
        assert ana_row[label_w] == " "

    def test_all_stage_glyphs_defined(self):
        assert set(STAGE_GLYPHS) == set(Stage)


class TestSummaryReport:
    def test_contains_all_sections(self, result):
        report = summary_report(result)
        assert "ensemble makespan" in report
        assert "em1" in report
        assert "F(P^{U,A,P})" in report
        assert "LLC miss" in report
        assert "em1.sim" in report and "em1.ana1" in report

    def test_indicator_matches_result(self, result):
        from repro.core.indicators import IndicatorStage

        order = (
            IndicatorStage.USAGE,
            IndicatorStage.ALLOCATION,
            IndicatorStage.PROVISIONING,
        )
        report = summary_report(result, order)
        assert f"{result.objective(order):.6f}" in report
