"""Tests for synthetic hardware counters."""

import pytest

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.monitoring.counters import HardwareCounters, synthesize_counters
from repro.platform.cache import CacheSpec
from repro.platform.contention import ContentionModel
from repro.util.errors import ValidationError
from repro.util.rng import RandomSource

FREQ = 2.3e9


@pytest.fixture
def model():
    return ContentionModel(core_freq_hz=FREQ)


@pytest.fixture
def sim():
    return MDSimulationModel("sim")


@pytest.fixture
def ana():
    return EigenAnalysisModel("ana")


class TestHardwareCounters:
    def test_derived_metrics(self):
        c = HardwareCounters(
            instructions=1000.0,
            cycles=2000.0,
            llc_references=100.0,
            llc_misses=25.0,
        )
        assert c.llc_miss_ratio == pytest.approx(0.25)
        assert c.memory_intensity == pytest.approx(0.025)
        assert c.ipc == pytest.approx(0.5)

    def test_zero_denominators(self):
        c = HardwareCounters(0.0, 0.0, 0.0, 0.0)
        assert c.llc_miss_ratio == 0.0
        assert c.memory_intensity == 0.0
        assert c.ipc == 0.0

    def test_misses_cannot_exceed_references(self):
        with pytest.raises(ValidationError):
            HardwareCounters(100.0, 100.0, 10.0, 20.0)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            HardwareCounters(-1.0, 0.0, 0.0, 0.0)


class TestSynthesis:
    def test_solo_counters_reflect_profile(self, model, sim):
        assessment = model.solo_assessment(sim.profile, CacheSpec(), sim.cores)
        counters = synthesize_counters(sim, assessment, FREQ, n_steps=10)
        assert counters.llc_miss_ratio == pytest.approx(
            sim.profile.solo_llc_miss_ratio
        )
        assert counters.ipc == pytest.approx(1.0 / sim.profile.solo_cpi())

    def test_instructions_scale_with_steps(self, model, sim):
        assessment = model.solo_assessment(sim.profile, CacheSpec(), sim.cores)
        c10 = synthesize_counters(sim, assessment, FREQ, n_steps=10)
        c20 = synthesize_counters(sim, assessment, FREQ, n_steps=20)
        assert c20.instructions == pytest.approx(2 * c10.instructions)

    def test_contended_assessment_lowers_ipc(self, model, sim, ana):
        cache = CacheSpec()
        solo = model.solo_assessment(sim.profile, cache, sim.cores)
        shared = model.assess_node(
            [(cache, [(sim.profile, 16), (ana.profile, 8)])]
        )[sim.profile.name]
        c_solo = synthesize_counters(sim, solo, FREQ, n_steps=5)
        c_shared = synthesize_counters(sim, shared, FREQ, n_steps=5)
        assert c_shared.ipc < c_solo.ipc
        assert c_shared.llc_miss_ratio > c_solo.llc_miss_ratio
        # instructions retired are placement-invariant
        assert c_shared.instructions == pytest.approx(c_solo.instructions)

    def test_noise_seeded(self, model, sim):
        assessment = model.solo_assessment(sim.profile, CacheSpec(), sim.cores)
        a = synthesize_counters(
            sim, assessment, FREQ, 5, rng=RandomSource(1), noise=0.05
        )
        b = synthesize_counters(
            sim, assessment, FREQ, 5, rng=RandomSource(1), noise=0.05
        )
        c = synthesize_counters(
            sim, assessment, FREQ, 5, rng=RandomSource(2), noise=0.05
        )
        assert a.instructions == b.instructions
        assert a.instructions != c.instructions

    def test_noisy_misses_never_exceed_references(self, model, ana):
        assessment = model.solo_assessment(ana.profile, CacheSpec(), ana.cores)
        for seed in range(20):
            c = synthesize_counters(
                ana, assessment, FREQ, 5, rng=RandomSource(seed), noise=0.2
            )
            assert c.llc_misses <= c.llc_references

    def test_invalid_args(self, model, sim):
        assessment = model.solo_assessment(sim.profile, CacheSpec(), sim.cores)
        with pytest.raises(ValidationError):
            synthesize_counters(sim, assessment, FREQ, n_steps=0)
        with pytest.raises(ValidationError):
            synthesize_counters(sim, assessment, FREQ, 5, noise=-0.1)
