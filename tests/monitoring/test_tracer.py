"""Tests for the stage tracer."""

import pytest

from repro.monitoring.tracer import Stage, StageRecord, StageTracer
from repro.util.errors import ValidationError


@pytest.fixture
def tracer():
    t = StageTracer()
    t.record("sim", Stage.SIM_COMPUTE, 0, 0.0, 10.0)
    t.record("sim", Stage.SIM_IDLE, 0, 10.0, 10.0)
    t.record("sim", Stage.SIM_WRITE, 0, 10.0, 10.5)
    t.record("sim", Stage.SIM_COMPUTE, 1, 10.5, 20.5)
    t.record("ana", Stage.ANA_READ, 0, 10.5, 11.0)
    t.record("ana", Stage.ANA_COMPUTE, 0, 11.0, 19.0)
    return t


class TestStageRecord:
    def test_duration(self):
        rec = StageRecord("x", Stage.SIM_COMPUTE, 0, 1.0, 3.5)
        assert rec.duration == 2.5

    def test_validation(self):
        with pytest.raises(ValidationError):
            StageRecord("", Stage.SIM_COMPUTE, 0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            StageRecord("x", Stage.SIM_COMPUTE, -1, 0.0, 1.0)
        with pytest.raises(ValidationError):
            StageRecord("x", Stage.SIM_COMPUTE, 0, 2.0, 1.0)

    def test_zero_duration_allowed(self):
        StageRecord("x", Stage.SIM_IDLE, 0, 1.0, 1.0)


class TestQueries:
    def test_len_and_components(self, tracer):
        assert len(tracer) == 6
        assert tracer.components == ["sim", "ana"]

    def test_durations_ordered_by_step(self, tracer):
        assert tracer.durations("sim", Stage.SIM_COMPUTE) == [10.0, 10.0]

    def test_durations_empty_stage(self, tracer):
        assert tracer.durations("ana", Stage.ANA_IDLE) == []

    def test_unknown_component_rejected(self, tracer):
        with pytest.raises(ValidationError):
            tracer.of_component("ghost")

    def test_stage_end(self, tracer):
        assert tracer.stage_end("sim", Stage.SIM_WRITE, 0) == 10.5
        assert tracer.stage_end("sim", Stage.SIM_WRITE, 5) is None

    def test_component_span(self, tracer):
        assert tracer.component_span("sim") == (0.0, 20.5)
        assert tracer.component_span("ana") == (10.5, 19.0)

    def test_num_steps(self, tracer):
        assert tracer.num_steps("sim") == 2
        assert tracer.num_steps("ana") == 1

    def test_records_returns_copy(self, tracer):
        records = tracer.records
        records.clear()
        assert len(tracer) == 6
