"""Tests for Table-1 metric computation."""

import pytest

from repro.monitoring.counters import HardwareCounters
from repro.monitoring.metrics import (
    ComponentMetrics,
    component_metrics,
    ensemble_makespan,
    member_makespan_from_trace,
)
from repro.monitoring.tracer import Stage, StageTracer
from repro.util.errors import ValidationError


@pytest.fixture
def tracer():
    t = StageTracer()
    # simulation from 0 to 21
    t.record("sim", Stage.SIM_COMPUTE, 0, 0.0, 10.0)
    t.record("sim", Stage.SIM_WRITE, 0, 10.0, 10.5)
    t.record("sim", Stage.SIM_COMPUTE, 1, 10.5, 20.5)
    t.record("sim", Stage.SIM_WRITE, 1, 20.5, 21.0)
    # two analyses ending at different times
    t.record("ana1", Stage.ANA_READ, 0, 10.5, 11.0)
    t.record("ana1", Stage.ANA_COMPUTE, 0, 11.0, 19.0)
    t.record("ana2", Stage.ANA_READ, 0, 10.5, 11.0)
    t.record("ana2", Stage.ANA_COMPUTE, 0, 11.0, 23.5)
    return t


@pytest.fixture
def counters():
    return HardwareCounters(
        instructions=1e9, cycles=2e9, llc_references=1e7, llc_misses=2e6
    )


class TestComponentMetrics:
    def test_from_trace_and_counters(self, tracer, counters):
        cm = component_metrics("sim", tracer, counters)
        assert cm.execution_time == pytest.approx(21.0)
        assert cm.llc_miss_ratio == pytest.approx(0.2)
        assert cm.memory_intensity == pytest.approx(2e6 / 1e9)
        assert cm.ipc == pytest.approx(0.5)

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            ComponentMetrics("x", -1.0, 0.1, 0.1, 1.0)


class TestMemberMakespan:
    def test_definition(self, tracer):
        """Timespan between simulation start and latest analysis end."""
        mm = member_makespan_from_trace("em1", "sim", ["ana1", "ana2"], tracer)
        assert mm.makespan == pytest.approx(23.5 - 0.0)

    def test_latest_analysis_wins(self, tracer):
        only_fast = member_makespan_from_trace("em1", "sim", ["ana1"], tracer)
        assert only_fast.makespan == pytest.approx(19.0)

    def test_requires_analyses(self, tracer):
        with pytest.raises(ValidationError):
            member_makespan_from_trace("em1", "sim", [], tracer)


class TestEnsembleMakespan:
    def test_maximum_member(self, tracer):
        m1 = member_makespan_from_trace("em1", "sim", ["ana1"], tracer)
        m2 = member_makespan_from_trace("em2", "sim", ["ana2"], tracer)
        em = ensemble_makespan({"em1": m1, "em2": m2})
        assert em.makespan == pytest.approx(23.5)
        assert em.member_makespans == {
            "em1": pytest.approx(19.0),
            "em2": pytest.approx(23.5),
        }

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ensemble_makespan({})
