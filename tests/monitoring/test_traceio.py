"""Tests for trace serialization and the external-trace bridge."""

import json

import pytest

from repro.core.efficiency import computational_efficiency
from repro.monitoring.tracer import Stage, StageTracer
from repro.monitoring.traceio import (
    load_trace,
    member_stages_from_trace,
    save_trace,
    tracer_from_dict,
    tracer_to_dict,
)
from repro.util.errors import ValidationError


@pytest.fixture
def tracer():
    t = StageTracer()
    for step in range(5):
        base = step * 11.0
        t.record("sim", Stage.SIM_COMPUTE, step, base, base + 10.0)
        t.record("sim", Stage.SIM_IDLE, step, base + 10.0, base + 10.0)
        t.record("sim", Stage.SIM_WRITE, step, base + 10.0, base + 11.0)
        t.record("ana", Stage.ANA_READ, step, base + 11.0, base + 11.5)
        t.record("ana", Stage.ANA_COMPUTE, step, base + 11.5, base + 19.0)
        t.record("ana", Stage.ANA_IDLE, step, base + 19.0, base + 22.0)
    return t


class TestDictRoundTrip:
    def test_round_trip_preserves_records(self, tracer):
        back = tracer_from_dict(tracer_to_dict(tracer))
        assert len(back) == len(tracer)
        for orig, new in zip(tracer.records, back.records):
            assert orig == new

    def test_version_checked(self, tracer):
        payload = tracer_to_dict(tracer)
        payload["version"] = 99
        with pytest.raises(ValidationError, match="version"):
            tracer_from_dict(payload)

    def test_malformed_record_rejected(self):
        with pytest.raises(ValidationError, match="record #0"):
            tracer_from_dict(
                {"version": 1, "records": [{"component": "x"}]}
            )

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValidationError):
            tracer_from_dict(
                {
                    "version": 1,
                    "records": [
                        {
                            "component": "x",
                            "stage": "Z",
                            "step": 0,
                            "start": 0,
                            "end": 1,
                        }
                    ],
                }
            )

    def test_non_dict_rejected(self):
        with pytest.raises(ValidationError):
            tracer_from_dict([1, 2, 3])


class TestFileRoundTrip:
    def test_save_and_load(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(tracer, path)
        back = load_trace(path)
        assert len(back) == len(tracer)
        assert back.durations("sim", Stage.SIM_COMPUTE) == tracer.durations(
            "sim", Stage.SIM_COMPUTE
        )

    def test_file_is_plain_json(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(tracer, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert len(payload["records"]) == 30

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            load_trace(path)


class TestExternalTraceBridge:
    def test_stages_estimated_from_trace(self, tracer):
        stages = member_stages_from_trace(tracer, "sim", ["ana"])
        assert stages.simulation.compute == pytest.approx(10.0)
        assert stages.simulation.write == pytest.approx(1.0)
        assert stages.analyses[0].read == pytest.approx(0.5)
        assert stages.analyses[0].analyze == pytest.approx(7.5)

    def test_feeds_the_indicator_pipeline(self, tracer):
        stages = member_stages_from_trace(tracer, "sim", ["ana"])
        e = computational_efficiency(stages)
        # sim active 11.0, ana active 8.0 -> E = 8/11
        assert e == pytest.approx(8.0 / 11.0)

    def test_hand_written_external_trace(self):
        """Simulates loading a trace recorded outside this library."""
        payload = {
            "version": 1,
            "records": [
                {"component": "gmx", "stage": "S", "step": s,
                 "start": s * 20.0, "end": s * 20.0 + 14.0}
                for s in range(4)
            ]
            + [
                {"component": "gmx", "stage": "W", "step": s,
                 "start": s * 20.0 + 14.0, "end": s * 20.0 + 14.4}
                for s in range(4)
            ]
            + [
                {"component": "cv", "stage": "R", "step": s,
                 "start": s * 20.0 + 14.4, "end": s * 20.0 + 14.6}
                for s in range(4)
            ]
            + [
                {"component": "cv", "stage": "A", "step": s,
                 "start": s * 20.0 + 14.6, "end": s * 20.0 + 19.0}
                for s in range(4)
            ],
        }
        tracer = tracer_from_dict(payload)
        stages = member_stages_from_trace(tracer, "gmx", ["cv"])
        assert computational_efficiency(stages) == pytest.approx(
            (0.2 + 4.4) / (14.0 + 0.4)
        )

    def test_requires_analyses(self, tracer):
        with pytest.raises(ValidationError):
            member_stages_from_trace(tracer, "sim", [])
