"""Tests for the resilience metrics."""

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.faults.injector import FaultLog, FaultRecord
from repro.faults.models import FaultEvent, FaultKind, ScheduledFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.monitoring.resilience import (
    ResilienceMetrics,
    busy_time,
    compute_resilience,
    steps_completed,
)
from repro.runtime.runner import run_ensemble
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def baseline():
    spec = build_spec(TABLE2_CONFIGS["C1.5"], n_steps=5)
    placement = TABLE2_CONFIGS["C1.5"].placement()
    return spec, placement, run_ensemble(spec, placement, seed=0)


def _crash_record(lost=3.0, detected=10.0, recovered=12.0):
    return FaultRecord(
        member="em1",
        component="em1.sim",
        stage="S",
        step=1,
        kind=FaultKind.CRASH,
        policy="retry",
        detected=detected,
        recovered=recovered,
        lost_work=lost,
    )


class TestTraceHelpers:
    def test_busy_time_positive(self, baseline):
        _, _, result = baseline
        assert busy_time(result.tracer) > 0

    def test_steps_completed_counts_sim_steps(self, baseline):
        spec, _, result = baseline
        expected = sum(m.n_steps for m in spec.members)
        assert steps_completed(result.tracer) == expected


class TestComputeResilience:
    def test_clean_run_against_itself(self, baseline):
        _, _, result = baseline
        metrics = compute_resilience(result, result.ensemble_makespan)
        assert metrics.inflation == 1.0
        assert metrics.num_faults == 0
        assert metrics.num_crashes == 0
        assert metrics.lost_work == 0.0
        assert metrics.recovery_times == ()
        assert metrics.goodput > 0
        assert 0 < metrics.effective_efficiency <= 1.0

    def test_injected_run_shows_the_damage(self, baseline):
        spec, placement, clean = baseline
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            failure_model=ScheduledFailureModel(
                [
                    FaultEvent(
                        member="em1",
                        component="em1.sim",
                        step=2,
                        kind=FaultKind.CRASH,
                        stage="S",
                        magnitude=0.5,
                    )
                ]
            ),
            recovery=RetryBackoffPolicy(base_delay=2.0),
        )
        metrics = compute_resilience(result, clean.ensemble_makespan)
        ideal = compute_resilience(clean, clean.ensemble_makespan)
        assert metrics.inflation > 1.0
        assert metrics.num_faults == 1
        assert metrics.num_crashes == 1
        assert metrics.lost_work > 0
        assert metrics.goodput < ideal.goodput
        assert metrics.effective_efficiency < ideal.effective_efficiency
        assert metrics.mean_recovery_time >= 2.0

    def test_explicit_fault_log_overrides(self, baseline):
        _, _, result = baseline
        log = FaultLog()
        log.record(_crash_record(lost=5.0))
        metrics = compute_resilience(
            result, result.ensemble_makespan, fault_log=log
        )
        assert metrics.num_faults == 1
        assert metrics.lost_work == 5.0

    def test_baseline_makespan_validated(self, baseline):
        _, _, result = baseline
        with pytest.raises(ValidationError):
            compute_resilience(result, 0.0)


class TestResilienceMetrics:
    def _metrics(self, recovery_times=(1.0, 2.0, 9.0)):
        return ResilienceMetrics(
            makespan=120.0,
            baseline_makespan=100.0,
            steps_completed=10,
            goodput=10 / 120.0,
            effective_efficiency=0.7,
            num_faults=len(recovery_times),
            num_crashes=1,
            lost_work=4.0,
            recovery_times=tuple(recovery_times),
        )

    def test_inflation(self):
        assert self._metrics().inflation == pytest.approx(1.2)

    def test_recovery_statistics(self):
        m = self._metrics()
        assert m.mean_recovery_time == pytest.approx(4.0)
        assert m.max_recovery_time == 9.0
        assert m.recovery_percentile(50) == pytest.approx(2.0)

    def test_empty_recovery_times(self):
        m = self._metrics(recovery_times=())
        assert m.mean_recovery_time == 0.0
        assert m.max_recovery_time == 0.0
        assert m.recovery_percentile(99) == 0.0

    def test_percentile_validated(self):
        with pytest.raises(ValidationError):
            self._metrics().recovery_percentile(101)

    def test_to_text(self):
        text = self._metrics().to_text()
        assert "inflation x1.200" in text
        assert "goodput" in text
        assert "recovery time" in text
        # no recovery line when nothing was recovered
        assert "recovery" not in self._metrics(()).to_text()


class TestSurrogateAgreement:
    def test_exact_prediction_has_zero_error(self):
        from repro.monitoring.resilience import surrogate_agreement

        assert surrogate_agreement(1.2, [1.1, 1.3]) == pytest.approx(0.0)

    def test_relative_error(self):
        from repro.monitoring.resilience import surrogate_agreement

        assert surrogate_agreement(1.1, [1.0]) == pytest.approx(0.1)

    def test_empty_observations_rejected(self):
        from repro.monitoring.resilience import surrogate_agreement

        with pytest.raises(ValidationError):
            surrogate_agreement(1.1, [])

    def test_non_positive_mean_rejected(self):
        from repro.monitoring.resilience import surrogate_agreement

        with pytest.raises(ValidationError):
            surrogate_agreement(1.1, [0.0])
