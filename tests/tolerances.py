"""Single source for the numeric tolerances the test suite asserts.

Before this module existed, each suite hard-coded its own copies of the
same bands (``rel=1e-6`` analytic-vs-DES stage agreement in
``tests/runtime``, the 8 % / 5 % surrogate envelope in ``tests/faults``,
...). They are consolidated here and aligned with the oracle harness:
the tier-1/tier-2 values re-export
:data:`repro.verify.oracles.DEFAULT_TOLERANCES`, so a policy change in
the harness is immediately reflected in every suite (and vice versa —
there is exactly one place to edit).

``docs/TESTING.md`` documents the rationale behind each band.
"""

from repro.verify.oracles import DEFAULT_TOLERANCES

#: Exact agreement: bit-identical floats (tier 0 — memoized/cached
#: paths vs their reference implementations).
EXACT = DEFAULT_TOLERANCES["cache"]

#: Noise-free DES stage estimates vs the analytic prediction (tier 1).
STAGE_REL = DEFAULT_TOLERANCES["stage"]

#: Noise-free DES makespan vs Eq. 2 + drain (tier 1).
MAKESPAN_REL = DEFAULT_TOLERANCES["makespan"]

#: Placement-indicator values recomputed through independent paths.
INDICATOR_REL = DEFAULT_TOLERANCES["indicator"]

#: Ensemble objective (Eq. 9) recomputed through independent paths.
OBJECTIVE_REL = DEFAULT_TOLERANCES["objective"]

#: First-order fault surrogate vs the DES trial mean (tier 2).
SURROGATE_REL = DEFAULT_TOLERANCES["surrogate"]

#: Noisy-executor convergence: with timing noise the steady-state
#: estimates only approach the analytic values statistically.
NOISY_REL = 0.05

#: Documented surrogate validation envelope (docs/RESILIENCE.md):
#: every grid cell within 8 %, grid mean within 5 %.
SURROGATE_CELL_REL = 0.08
SURROGATE_GRID_MEAN_REL = 0.05

#: Tolerances mapping handed to ``run_differential_oracle`` /
#: ``verify_scenarios`` by the verification tests — today identical to
#: the harness defaults, but passed explicitly so the suite pins the
#: policy rather than inheriting silent changes.
ORACLE_TOLERANCES = dict(DEFAULT_TOLERANCES)
