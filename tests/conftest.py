"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.des.engine import Environment
from repro.platform.specs import make_cori_like_cluster, small_test_cluster
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member


@pytest.fixture
def env() -> Environment:
    """A fresh discrete-event environment."""
    return Environment()


@pytest.fixture
def cori2():
    """A 2-node Cori-like cluster."""
    return make_cori_like_cluster(2)


@pytest.fixture
def cori3():
    """A 3-node Cori-like cluster."""
    return make_cori_like_cluster(3)


@pytest.fixture
def small_cluster():
    """A small fast cluster for structural tests."""
    return small_test_cluster(2)


@pytest.fixture
def balanced_member() -> MemberStages:
    """A member in the Idle Analyzer regime (paper's operating point)."""
    return MemberStages(
        simulation=SimulationStages(compute=14.0, write=0.3),
        analyses=(AnalysisStages(read=0.1, analyze=12.9),),
    )


@pytest.fixture
def idle_sim_member() -> MemberStages:
    """A member in the Idle Simulation regime."""
    return MemberStages(
        simulation=SimulationStages(compute=10.0, write=0.2),
        analyses=(AnalysisStages(read=0.5, analyze=14.0),),
    )


@pytest.fixture
def two_member_spec() -> EnsembleSpec:
    """Two default members with a short step count (fast tests)."""
    return EnsembleSpec(
        "test-ensemble",
        (default_member("em1", n_steps=6), default_member("em2", n_steps=6)),
    )


@pytest.fixture
def single_member_spec() -> EnsembleSpec:
    """One default member with a short step count."""
    return EnsembleSpec("test-single", (default_member("em1", n_steps=6),))


@pytest.fixture
def colocated_placement(two_member_spec) -> EnsemblePlacement:
    """C1.5-style placement for the two-member spec."""
    return EnsemblePlacement(
        2, (MemberPlacement(0, (0,)), MemberPlacement(1, (1,)))
    )


@pytest.fixture
def sim_model() -> MDSimulationModel:
    return MDSimulationModel("sim")


@pytest.fixture
def ana_model() -> EigenAnalysisModel:
    return EigenAnalysisModel("ana")
