"""Tests for bipartite matrix construction."""

import numpy as np
import pytest

from repro.components.kernels.bipartite import (
    bipartite_contact_matrix,
    bipartite_distance_matrix,
    split_groups,
)
from repro.util.errors import ValidationError


class TestSplitGroups:
    def test_half_split(self):
        pos = np.arange(30.0).reshape(10, 3)
        a, b = split_groups(pos, 0.5)
        assert a.shape == (5, 3)
        assert b.shape == (5, 3)
        assert np.array_equal(np.vstack([a, b]), pos)

    def test_uneven_split(self):
        pos = np.zeros((10, 3))
        a, b = split_groups(pos, 0.3)
        assert a.shape[0] == 3
        assert b.shape[0] == 7

    def test_extreme_fractions_keep_both_groups_non_empty(self):
        pos = np.zeros((10, 3))
        a, b = split_groups(pos, 0.999)
        assert a.shape[0] == 9 and b.shape[0] == 1
        a, b = split_groups(pos, 0.001)
        assert a.shape[0] == 1 and b.shape[0] == 9

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValidationError):
            split_groups(np.zeros((4, 3)), 0.0)
        with pytest.raises(ValidationError):
            split_groups(np.zeros((4, 3)), 1.0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            split_groups(np.zeros((4, 2)))


class TestDistanceMatrix:
    def test_known_distances(self):
        a = np.array([[0.0, 0.0, 0.0]])
        b = np.array([[3.0, 4.0, 0.0], [1.0, 0.0, 0.0]])
        d = bipartite_distance_matrix(a, b)
        assert d.shape == (1, 2)
        assert d[0, 0] == pytest.approx(5.0)
        assert d[0, 1] == pytest.approx(1.0)

    def test_gemm_path_matches_naive(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(12, 3))
        b = rng.normal(size=(7, 3))
        d = bipartite_distance_matrix(a, b)
        naive = np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(-1))
        assert np.allclose(d, naive, atol=1e-10)

    def test_periodic_distances_use_minimum_image(self):
        a = np.array([[0.5, 5.0, 5.0]])
        b = np.array([[9.5, 5.0, 5.0]])
        open_d = bipartite_distance_matrix(a, b)
        pbc_d = bipartite_distance_matrix(a, b, box_length=10.0)
        assert open_d[0, 0] == pytest.approx(9.0)
        assert pbc_d[0, 0] == pytest.approx(1.0)

    def test_distances_non_negative(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(20, 3))
        d = bipartite_distance_matrix(a, a.copy())
        assert (d >= 0).all()

    def test_empty_group_rejected(self):
        with pytest.raises(ValidationError):
            bipartite_distance_matrix(np.zeros((0, 3)), np.zeros((3, 3)))


class TestContactMatrix:
    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0, 5, size=(10, 3))
        b = rng.uniform(0, 5, size=(8, 3))
        m = bipartite_contact_matrix(a, b, box_length=10.0)
        assert (m >= 0).all() and (m <= 1).all()

    def test_close_pair_is_contact(self):
        a = np.array([[0.0, 0.0, 0.0]])
        b = np.array([[0.1, 0.0, 0.0]])
        m = bipartite_contact_matrix(a, b, contact_radius=1.5)
        assert m[0, 0] > 0.99

    def test_distant_pair_is_not_contact(self):
        a = np.array([[0.0, 0.0, 0.0]])
        b = np.array([[8.0, 0.0, 0.0]])
        m = bipartite_contact_matrix(a, b, contact_radius=1.5)
        assert m[0, 0] < 0.01

    def test_contact_at_radius_is_half(self):
        a = np.array([[0.0, 0.0, 0.0]])
        b = np.array([[1.5, 0.0, 0.0]])
        m = bipartite_contact_matrix(a, b, contact_radius=1.5)
        assert m[0, 0] == pytest.approx(0.5)

    def test_invalid_params_rejected(self):
        a = np.zeros((2, 3))
        with pytest.raises(ValidationError):
            bipartite_contact_matrix(a, a, contact_radius=0)
        with pytest.raises(ValidationError):
            bipartite_contact_matrix(a, a, steepness=-1)
