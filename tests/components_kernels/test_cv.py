"""Tests for the end-to-end collective-variable analyzer."""

import numpy as np
import pytest

from repro.components.kernels.cv import CollectiveVariableAnalyzer
from repro.components.md.engine import MDEngine
from repro.util.errors import ValidationError


class TestAnalyze:
    def test_returns_positive_cv(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 5, size=(40, 3))
        cva = CollectiveVariableAnalyzer()
        result = cva.analyze(positions, box_length=10.0)
        assert result.value > 0
        assert result.frame_index == 0
        assert result.matrix_shape == (20, 20)

    def test_history_accumulates(self):
        rng = np.random.default_rng(1)
        cva = CollectiveVariableAnalyzer()
        for _ in range(3):
            cva.analyze(rng.uniform(0, 5, size=(20, 3)), box_length=10.0)
        assert len(cva.history) == 3
        assert cva.trajectory.shape == (3,)
        assert [r.frame_index for r in cva.history] == [0, 1, 2]

    def test_explicit_frame_index(self):
        cva = CollectiveVariableAnalyzer()
        r = cva.analyze(
            np.random.default_rng(2).uniform(0, 5, (10, 3)),
            box_length=10.0,
            frame_index=42,
        )
        assert r.frame_index == 42

    def test_periodic_requires_box(self):
        cva = CollectiveVariableAnalyzer(periodic=True)
        with pytest.raises(ValidationError):
            cva.analyze(np.zeros((10, 3)) + np.arange(10)[:, None])

    def test_open_boundaries_mode(self):
        cva = CollectiveVariableAnalyzer(periodic=False)
        positions = np.random.default_rng(3).normal(size=(16, 3))
        result = cva.analyze(positions)
        assert result.value > 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            CollectiveVariableAnalyzer(group_fraction=0.0)
        with pytest.raises(ValidationError):
            CollectiveVariableAnalyzer(contact_radius=-1)


class TestPhysicalBehaviour:
    def test_compact_system_has_higher_cv_than_dilute(self):
        """More contacts -> larger dominant singular value."""
        rng = np.random.default_rng(4)
        compact = rng.uniform(0, 2, size=(30, 3))
        dilute = rng.uniform(0, 20, size=(30, 3))
        cva = CollectiveVariableAnalyzer(periodic=False)
        v_compact = cva.analyze(compact).value
        v_dilute = cva.analyze(dilute).value
        assert v_compact > v_dilute

    def test_cv_varies_smoothly_along_md_trajectory(self):
        """The real pipeline: MD frames in, CV series out."""
        eng = MDEngine(natoms=108, stride=5, seed=0)
        eng.equilibrate(20)
        cva = CollectiveVariableAnalyzer()
        for frame in eng.frames(4):
            cva.analyze(frame.positions, frame.box_length)
        traj = cva.trajectory
        assert traj.shape == (4,)
        assert (traj > 0).all()
        # successive frames are 5 steps apart: CV must not jump wildly
        rel_jumps = np.abs(np.diff(traj)) / traj[:-1]
        assert (rel_jumps < 0.25).all()
