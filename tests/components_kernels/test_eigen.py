"""Tests for power-iteration spectral kernels (validated against numpy)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.components.kernels.eigen import (
    largest_eigenvalue_symmetric,
    largest_singular_value,
)
from repro.util.errors import ValidationError
from repro.util.rng import RandomSource


class TestSymmetricEigenvalue:
    def test_diagonal_matrix(self):
        m = np.diag([1.0, 5.0, 3.0])
        lam, vec = largest_eigenvalue_symmetric(m)
        assert lam == pytest.approx(5.0)
        assert abs(vec[1]) == pytest.approx(1.0, abs=1e-6)

    def test_matches_numpy_on_random_symmetric(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(30, 30))
        m = a + a.T
        lam, _ = largest_eigenvalue_symmetric(m, tol=1e-12)
        expected = np.linalg.eigvalsh(m)
        dominant = expected[np.argmax(np.abs(expected))]
        assert lam == pytest.approx(dominant, rel=1e-6)

    def test_eigenvector_satisfies_definition(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(20, 20))
        m = a @ a.T  # positive semidefinite: dominant eigenvalue unique w.h.p.
        lam, vec = largest_eigenvalue_symmetric(m, tol=1e-12)
        assert np.allclose(m @ vec, lam * vec, atol=1e-5 * abs(lam))

    def test_zero_matrix(self):
        lam, _ = largest_eigenvalue_symmetric(np.zeros((5, 5)))
        assert lam == 0.0

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            largest_eigenvalue_symmetric(np.zeros((3, 4)))

    def test_asymmetric_rejected(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError, match="symmetric"):
            largest_eigenvalue_symmetric(m)

    def test_invalid_params_rejected(self):
        m = np.eye(3)
        with pytest.raises(ValidationError):
            largest_eigenvalue_symmetric(m, tol=0)
        with pytest.raises(ValidationError):
            largest_eigenvalue_symmetric(m, max_iterations=0)


class TestSingularValue:
    def test_matches_numpy_svd(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(40, 25))
        sigma = largest_singular_value(a, tol=1e-13)
        assert sigma == pytest.approx(
            np.linalg.svd(a, compute_uv=False)[0], rel=1e-7
        )

    def test_rectangular_both_orientations(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(10, 50))
        s1 = largest_singular_value(a, tol=1e-13)
        s2 = largest_singular_value(a.T, tol=1e-13)
        assert s1 == pytest.approx(s2, rel=1e-7)

    def test_rank_one_matrix(self):
        u = np.array([3.0, 4.0])  # |u| = 5
        v = np.array([1.0, 0.0, 0.0])
        a = np.outer(u, v)
        assert largest_singular_value(a) == pytest.approx(5.0, rel=1e-9)

    def test_zero_matrix(self):
        assert largest_singular_value(np.zeros((4, 3))) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            largest_singular_value(np.zeros((0, 3)))

    def test_deterministic_given_rng(self):
        a = np.random.default_rng(7).normal(size=(15, 15))
        s1 = largest_singular_value(a, rng=RandomSource(1))
        s2 = largest_singular_value(a, rng=RandomSource(1))
        assert s1 == s2

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_frobenius_norm(self, seed):
        a = np.random.default_rng(seed).normal(size=(8, 6))
        sigma = largest_singular_value(a)
        assert sigma <= np.linalg.norm(a) + 1e-9

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_scaling_homogeneity(self, seed):
        a = np.random.default_rng(seed).normal(size=(6, 9))
        s = largest_singular_value(a, tol=1e-13)
        s3 = largest_singular_value(3.0 * a, tol=1e-13)
        assert s3 == pytest.approx(3.0 * s, rel=1e-6)
