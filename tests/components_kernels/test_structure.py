"""Tests for the structural analysis kernels (RMSD, Rg, RDF)."""

import numpy as np
import pytest

from repro.components.kernels.structure import (
    StructureAnalyzer,
    radial_distribution,
    radius_of_gyration,
    rmsd,
)
from repro.components.md.engine import MDEngine
from repro.util.errors import ValidationError


@pytest.fixture
def cloud():
    return np.random.default_rng(0).normal(size=(30, 3))


class TestRmsd:
    def test_identical_frames_zero(self, cloud):
        assert rmsd(cloud, cloud) == pytest.approx(0.0, abs=1e-10)

    def test_translation_removed_by_superposition(self, cloud):
        shifted = cloud + np.array([5.0, -3.0, 2.0])
        assert rmsd(shifted, cloud) == pytest.approx(0.0, abs=1e-10)

    def test_rotation_removed_by_superposition(self, cloud):
        theta = 0.7
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0.0],
                [np.sin(theta), np.cos(theta), 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        rotated = cloud @ rot.T
        assert rmsd(rotated, cloud) == pytest.approx(0.0, abs=1e-10)

    def test_without_superposition_translation_counts(self, cloud):
        shifted = cloud + np.array([1.0, 0.0, 0.0])
        assert rmsd(shifted, cloud, superpose=False) == pytest.approx(1.0)

    def test_known_deformation(self):
        ref = np.array([[0.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0], [3.0, 0, 0]])
        # symmetric stretch around the centroid keeps COM and principal
        # axis fixed, so RMSD is the pure deformation magnitude
        deformed = ref.copy()
        deformed[:, 0] = (ref[:, 0] - 1.5) * 1.2 + 1.5
        expected = np.sqrt(np.mean((0.2 * (ref[:, 0] - 1.5)) ** 2))
        assert rmsd(deformed, ref) == pytest.approx(expected, rel=1e-6)

    def test_shape_mismatch_rejected(self, cloud):
        with pytest.raises(ValidationError):
            rmsd(cloud, cloud[:-1])

    def test_superposition_never_increases_rmsd(self, cloud):
        rng = np.random.default_rng(1)
        other = cloud + rng.normal(scale=0.3, size=cloud.shape)
        assert rmsd(other, cloud) <= rmsd(other, cloud, superpose=False) + 1e-12


class TestRadiusOfGyration:
    def test_point_cloud_at_origin(self):
        assert radius_of_gyration(np.zeros((5, 3))) == 0.0

    def test_known_value_for_unit_sphere_shell(self):
        # 6 points at distance 1 from centroid
        pos = np.array(
            [
                [1, 0, 0], [-1, 0, 0],
                [0, 1, 0], [0, -1, 0],
                [0, 0, 1], [0, 0, -1],
            ],
            dtype=float,
        )
        assert radius_of_gyration(pos) == pytest.approx(1.0)

    def test_translation_invariant(self, cloud):
        assert radius_of_gyration(cloud + 100.0) == pytest.approx(
            radius_of_gyration(cloud)
        )

    def test_scales_linearly(self, cloud):
        assert radius_of_gyration(3.0 * cloud) == pytest.approx(
            3.0 * radius_of_gyration(cloud)
        )


class TestRdf:
    @pytest.fixture(scope="class")
    def equilibrated_frame(self):
        engine = MDEngine(natoms=256, stride=10, seed=0)
        engine.equilibrate(300)
        frame = next(engine.frames(1))
        return frame.positions.astype(float), frame.box_length

    def test_lj_liquid_first_shell_peak(self, equilibrated_frame):
        positions, box = equilibrated_frame
        r, g = radial_distribution(positions, box, num_bins=40)
        peak_r = r[np.argmax(g)]
        # LJ first shell near the potential minimum 2^(1/6) ~ 1.12
        assert 0.9 < peak_r < 1.4
        assert g.max() > 1.5  # pronounced liquid structure

    def test_excluded_core(self, equilibrated_frame):
        positions, box = equilibrated_frame
        r, g = radial_distribution(positions, box, num_bins=40)
        # essentially no pairs inside the repulsive core
        assert g[r < 0.8].max() < 0.2

    def test_tends_to_one_at_large_r(self, equilibrated_frame):
        positions, box = equilibrated_frame
        r, g = radial_distribution(positions, box, num_bins=40)
        tail = g[r > 0.8 * r.max()]
        assert tail.mean() == pytest.approx(1.0, abs=0.3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            radial_distribution(np.zeros((1, 3)), 10.0)
        with pytest.raises(ValidationError):
            radial_distribution(np.zeros((5, 3)), 10.0, r_max=6.0)
        with pytest.raises(ValidationError):
            radial_distribution(np.zeros((5, 3)), 10.0, num_bins=0)


class TestStructureAnalyzer:
    def test_first_frame_is_reference(self, cloud):
        analyzer = StructureAnalyzer()
        v, rg = analyzer.analyze(cloud)
        assert v == pytest.approx(0.0, abs=1e-10)
        assert rg > 0

    def test_history_accumulates(self, cloud):
        analyzer = StructureAnalyzer()
        analyzer.analyze(cloud)
        analyzer.analyze(cloud + np.random.default_rng(2).normal(
            scale=0.1, size=cloud.shape))
        assert len(analyzer.rmsd_history) == 2
        assert len(analyzer.rg_history) == 2
        assert analyzer.rmsd_history[1] > 0

    def test_on_real_md_trajectory(self):
        engine = MDEngine(natoms=108, stride=5, seed=0)
        engine.equilibrate(20)
        analyzer = StructureAnalyzer()
        for frame in engine.frames(3):
            analyzer.analyze(frame.positions.astype(float))
        assert analyzer.rmsd_history[0] == pytest.approx(0.0, abs=1e-7)
        assert all(v >= 0 for v in analyzer.rmsd_history)
