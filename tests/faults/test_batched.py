"""Tests for the batched delta-replay replication engine.

The contract under test (see ``docs/RESILIENCE.md``): for exactly
replayable recovery policies, one fault-free DES capture plus
closed-form replay of each fault schedule produces *bit-identical*
robust scores to re-simulating every replica — so every parity
assertion here is ``==``, not ``approx``. The adaptive policy drains
its budget in global event order, which replay can only approximate,
hence its banded tier.
"""

import dataclasses

import pytest
from hypothesis import given

from repro.configs.generator import enumerate_placements
from repro.faults.batched import (
    batched_score_placement,
    capture_timeline,
    engine_counters,
    rank_placements_batched,
    replay_schedules,
    reset_engine_counters,
    score_from_timeline,
)
from repro.faults.batched import replay_tier
from repro.faults.models import (
    FaultKind,
    MarkovModulatedArrivals,
    CorrelatedFailureModel,
    NodeFailureModel,
    RandomFailureModel,
)
from repro.faults.recovery import (
    AdaptiveRecoveryPolicy,
    CheckpointRestartPolicy,
    DropAnalysisPolicy,
    RetryBackoffPolicy,
)
from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.robust import (
    crash_straggler_factory,
    rank_placements_robust,
    robust_score_placement,
)
from repro.util.errors import ValidationError
from tests.strategies import common_settings, des_ensembles, des_placements


@pytest.fixture(scope="module")
def spec():
    return EnsembleSpec(
        "batched-test",
        (
            default_member("em1", num_analyses=2, n_steps=4),
            default_member("em2", num_analyses=1, n_steps=4),
        ),
    )


@pytest.fixture(scope="module")
def placement(spec):
    return next(iter(enumerate_placements(spec, 2, 32)))


@pytest.fixture(scope="module")
def candidates(spec):
    pool = list(enumerate_placements(spec, 2, 32))
    stride = max(1, len(pool) // 3)
    return {f"c{i}": p for i, p in enumerate(pool[::stride][:3])}


def _assert_scores_equal(serial, batched):
    assert batched.objective == serial.objective
    assert batched.ideal_objective == serial.ideal_objective
    assert batched.mean_inflation == serial.mean_inflation
    assert batched.mean_goodput == serial.mean_goodput
    assert batched.trials == serial.trials


EXACT_POLICIES = [
    pytest.param(RetryBackoffPolicy, id="retry"),
    pytest.param(CheckpointRestartPolicy, id="restart"),
    pytest.param(DropAnalysisPolicy, id="drop"),
]


class TestExactParity:
    @pytest.mark.parametrize("policy_cls", EXACT_POLICIES)
    def test_bit_identical_to_serial_replication(
        self, spec, placement, policy_cls
    ):
        common = dict(trials=4, base_seed=7)
        serial = robust_score_placement(
            spec,
            placement,
            crash_straggler_factory(0.25),
            policy_cls(),
            **common,
        )
        batched = batched_score_placement(
            spec,
            placement,
            crash_straggler_factory(0.25),
            policy_cls(),
            **common,
        )
        _assert_scores_equal(serial, batched)

    def test_all_fault_kinds_replay_exactly(self, spec, placement):
        factory = lambda seed: RandomFailureModel(  # noqa: E731
            rate=0.3, kinds=tuple(FaultKind), seed=seed
        )
        common = dict(trials=4, base_seed=3)
        serial = robust_score_placement(
            spec, placement, factory, RetryBackoffPolicy(), **common
        )
        batched = batched_score_placement(
            spec, placement, factory, RetryBackoffPolicy(), **common
        )
        _assert_scores_equal(serial, batched)

    def test_correlated_bursts_replay_exactly(self, spec, placement):
        factory = lambda seed: CorrelatedFailureModel(  # noqa: E731
            process=MarkovModulatedArrivals(0.02, 0.4, 0.3, 0.5),
            seed=seed,
        )
        serial = robust_score_placement(
            spec, placement, factory, RetryBackoffPolicy(), trials=3
        )
        batched = batched_score_placement(
            spec, placement, factory, RetryBackoffPolicy(), trials=3
        )
        _assert_scores_equal(serial, batched)

    def test_node_level_crashes_replay_exactly(self, spec, placement):
        factory = lambda seed: NodeFailureModel(  # noqa: E731
            placement, rate=0.15, seed=seed
        )
        serial = robust_score_placement(
            spec, placement, factory, RetryBackoffPolicy(), trials=3
        )
        batched = batched_score_placement(
            spec, placement, factory, RetryBackoffPolicy(), trials=3
        )
        _assert_scores_equal(serial, batched)

    def test_trials_validated(self, spec, placement):
        with pytest.raises(ValidationError):
            batched_score_placement(
                spec,
                placement,
                crash_straggler_factory(0.1),
                RetryBackoffPolicy(),
                trials=0,
            )


class TestHypothesisParity:
    @given(spec=des_ensembles(), placement=des_placements())
    @common_settings
    def test_random_kernels_replay_exactly(self, spec, placement):
        """Batched == serial over randomized kernels and placements.

        The strategies vary atom counts, strides, serial fractions,
        and node assignments enough to exercise both branches of the
        serial-coupling max; retry recovery must stay bit-exact over
        the whole envelope.
        """
        serial = robust_score_placement(
            spec,
            placement,
            crash_straggler_factory(0.3),
            RetryBackoffPolicy(),
            trials=2,
            base_seed=11,
        )
        batched = batched_score_placement(
            spec,
            placement,
            crash_straggler_factory(0.3),
            RetryBackoffPolicy(),
            trials=2,
            base_seed=11,
        )
        _assert_scores_equal(serial, batched)


class TestAdaptiveBanded:
    def test_adaptive_policy_is_banded_tier(self):
        assert replay_tier(AdaptiveRecoveryPolicy()) == "banded"
        for policy_cls in (
            RetryBackoffPolicy,
            CheckpointRestartPolicy,
            DropAnalysisPolicy,
        ):
            assert replay_tier(policy_cls()) == "exact"

    def test_adaptive_scores_agree_within_band(self, spec, placement):
        """Replay approximates the adaptive budget drain within 5%."""
        common = dict(trials=4, base_seed=7)
        serial = robust_score_placement(
            spec,
            placement,
            crash_straggler_factory(0.25),
            AdaptiveRecoveryPolicy(),
            **common,
        )
        batched = batched_score_placement(
            spec,
            placement,
            crash_straggler_factory(0.25),
            AdaptiveRecoveryPolicy(),
            **common,
        )
        assert batched.ideal_objective == serial.ideal_objective
        assert batched.objective == pytest.approx(
            serial.objective, rel=0.05
        )
        assert batched.mean_inflation == pytest.approx(
            serial.mean_inflation, rel=0.05
        )


class TestRankEngineParity:
    def test_batched_ranking_matches_serial(self, spec, candidates):
        common = dict(trials=3, base_seed=0, method="des")
        serial = rank_placements_robust(
            spec,
            candidates,
            crash_straggler_factory(0.2),
            RetryBackoffPolicy(),
            engine="serial",
            **common,
        )
        batched = rank_placements_robust(
            spec,
            candidates,
            crash_straggler_factory(0.2),
            RetryBackoffPolicy(),
            engine="batched",
            **common,
        )
        assert [s.name for s in serial] == [b.name for b in batched]
        for s, b in zip(serial, batched):
            _assert_scores_equal(s, b)

    def test_parallel_chunking_matches_inline(self, spec, candidates):
        """Chunk-sharded pool ranking flattens to the inline order."""
        common = dict(trials=2, base_seed=5)
        inline = rank_placements_batched(
            spec,
            candidates,
            crash_straggler_factory(0.2),
            RetryBackoffPolicy(),
            parallel=False,
            **common,
        )
        pooled = rank_placements_batched(
            spec,
            candidates,
            crash_straggler_factory(0.2),
            RetryBackoffPolicy(),
            parallel=True,
            **common,
        )
        assert [i.name for i in inline] == [p.name for p in pooled]
        for i, p in zip(inline, pooled):
            _assert_scores_equal(i, p)

    def test_unknown_engine_rejected(self, spec, candidates):
        with pytest.raises(ValidationError, match="engine"):
            rank_placements_robust(
                spec,
                candidates,
                crash_straggler_factory(0.2),
                RetryBackoffPolicy(),
                method="des",
                engine="warp",
            )


class TestCommonRandomNumbers:
    def test_crn_pairs_candidate_comparisons(self, spec):
        """CRN reduces the variance of pairwise score differences.

        With common random numbers replica ``t`` draws the same fault
        schedule for every candidate, so the difference between two
        candidates' objectives varies only with the placements'
        response to the *same* faults. Decorrelated seeding adds the
        schedule-to-schedule noise of two independent draws; over many
        base seeds the paired differences must be strictly less
        dispersed.
        """
        import statistics

        pool = list(enumerate_placements(spec, 2, 32))
        names = ("packed", "spread")
        pair = {"packed": pool[0], "spread": pool[-1]}

        def diffs(crn):
            out = []
            for base_seed in range(12):
                scores = {
                    s.name: s.objective
                    for s in rank_placements_batched(
                        spec,
                        pair,
                        crash_straggler_factory(0.3),
                        RetryBackoffPolicy(),
                        trials=2,
                        base_seed=base_seed * 101,
                        crn=crn,
                    )
                }
                out.append(scores[names[0]] - scores[names[1]])
            return out

        paired = statistics.pvariance(diffs(crn=True))
        independent = statistics.pvariance(diffs(crn=False))
        assert paired < independent

    def test_crn_false_decorrelates_candidates(self, spec, candidates):
        """Without CRN each candidate samples its own schedules, so a
        candidate's score changes when scored under its own label vs
        the shared stream."""
        ranked = rank_placements_batched(
            spec,
            candidates,
            crash_straggler_factory(0.3),
            RetryBackoffPolicy(),
            trials=3,
            base_seed=0,
            crn=False,
        )
        shared = rank_placements_batched(
            spec,
            candidates,
            crash_straggler_factory(0.3),
            RetryBackoffPolicy(),
            trials=3,
            base_seed=0,
            crn=True,
        )
        by_name = {s.name: s.objective for s in shared}
        assert any(s.objective != by_name[s.name] for s in ranked)


class TestEngineCounters:
    def test_score_tallies_baseline_and_replicas(self, spec, placement):
        reset_engine_counters()
        batched_score_placement(
            spec,
            placement,
            crash_straggler_factory(0.2),
            RetryBackoffPolicy(),
            trials=5,
        )
        counters = engine_counters()
        assert counters["baseline_sims"] == 1
        assert counters["replicas_replayed"] == 5
        assert counters["fallback_reason"] is None

    def test_ranking_tallies_per_candidate(self, spec, candidates):
        reset_engine_counters()
        rank_placements_batched(
            spec,
            candidates,
            crash_straggler_factory(0.2),
            RetryBackoffPolicy(),
            trials=2,
        )
        counters = engine_counters()
        assert counters["baseline_sims"] == len(candidates)
        assert counters["replicas_replayed"] == len(candidates) * 2

    def test_unpicklable_factory_falls_back_with_reason(
        self, spec, candidates
    ):
        """A lambda factory cannot cross the pool boundary; the rank
        must still complete serially and record why."""
        reset_engine_counters()
        factory = lambda seed: RandomFailureModel(  # noqa: E731
            rate=0.2, seed=seed
        )
        ranked = rank_placements_batched(
            spec,
            candidates,
            factory,
            RetryBackoffPolicy(),
            trials=2,
            parallel=True,
        )
        assert len(ranked) == len(candidates)
        assert engine_counters()["fallback_reason"] is not None

    def test_reset_clears_all_counters(self):
        reset_engine_counters()
        counters = engine_counters()
        assert counters["baseline_sims"] == 0
        assert counters["replicas_replayed"] == 0
        assert counters["fallback_reason"] is None


class TestMutantOracle:
    def test_oracle_passes_on_the_real_engine(self, spec, placement):
        from repro.verify.oracles import run_differential_oracle

        report = run_differential_oracle(
            spec,
            placement,
            fault_factory=lambda s: RandomFailureModel(rate=0.2, seed=s),
            recovery=RetryBackoffPolicy(),
            scenario="batched-tier",
        )
        assert report.passed

    def test_oracle_detects_one_stage_perturbation(self, spec, placement):
        """A 1% perturbation of a single captured stage duration must
        trip the exact serial-vs-batched tier — proof the oracle has
        teeth against replay bugs."""
        from repro.verify.oracles import run_differential_oracle

        def mutant_score(spec, placement, factory, policy, **kwargs):
            kwargs.pop("cluster", None)
            kwargs.pop("dtl", None)
            timeline = capture_timeline(spec, placement)
            member = timeline.members[0]
            warped = member.sim_compute.copy()
            warped[2] *= 1.01
            mutated = dataclasses.replace(
                timeline,
                members=(
                    dataclasses.replace(member, sim_compute=warped),
                )
                + timeline.members[1:],
            )
            return score_from_timeline(
                spec, mutated, placement, factory, policy, **kwargs
            )

        report = run_differential_oracle(
            spec,
            placement,
            fault_factory=lambda s: RandomFailureModel(rate=0.2, seed=s),
            recovery=RetryBackoffPolicy(),
            batched_score_fn=mutant_score,
            scenario="batched-mutant",
        )
        failed = {
            (f.scope, f.metric) for f in report.failures
        }
        assert not report.passed
        assert any(paths == "serial-vs-batched" for paths in
                   (f.paths for f in report.failures)), failed


class TestReplayInternals:
    def test_empty_schedule_reproduces_the_baseline(self, spec, placement):
        """Replaying zero faults must return the fault-free metrics:
        inflation exactly 1 and the ideal objective."""
        from repro.faults.models import FaultSchedule

        timeline = capture_timeline(spec, placement)
        outcome = replay_schedules(
            timeline, [FaultSchedule([])], RetryBackoffPolicy()
        )
        assert outcome.inflations == (1.0,)
        assert outcome.makespans == (timeline.baseline_makespan,)
        assert outcome.objectives[0] == pytest.approx(
            timeline.ideal_objective
        )
