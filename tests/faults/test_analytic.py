"""Tests for the analytic robustness surrogate (repro.faults.analytic).

Covers the documented accuracy bound of docs/FAULT_MODELS.md
(surrogate-vs-DES inflation over the validation rate grid), the
node-level co-failure semantics, determinism of correlated arrivals,
policy pricing, and the RobustnessTerm wiring into the scheduler.
"""

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.faults.analytic import (
    CrashResponse,
    MemberForecast,
    RobustnessTerm,
    SurrogateReport,
    expected_crash_response,
    node_crash_builder,
    surrogate_resilience,
)
from repro.faults.models import (
    CorrelatedFailureModel,
    FaultEvent,
    FaultKind,
    MarkovModulatedArrivals,
    NodeFailureModel,
    NoFailureModel,
    RandomFailureModel,
    ScheduledFailureModel,
    WeibullBurstArrivals,
)
from repro.faults.recovery import (
    AdaptiveRecoveryPolicy,
    CheckpointRestartPolicy,
    DropAnalysisPolicy,
    RecoveryAction,
    RecoveryPolicy,
    RetryBackoffPolicy,
)
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.placement import (
    pack_members_per_node,
    spread_components,
)
from repro.runtime.spec import EnsembleSpec, default_member
from repro.util.errors import ValidationError
from tests.tolerances import (
    MAKESPAN_REL,
    SURROGATE_CELL_REL,
    SURROGATE_GRID_MEAN_REL,
)


@pytest.fixture(scope="module")
def spec():
    return build_spec(TABLE2_CONFIGS["C1.5"], n_steps=6)


@pytest.fixture(scope="module")
def placement():
    return TABLE2_CONFIGS["C1.5"].placement()


def _small_spec(n_steps=8, num_analyses=2):
    return EnsembleSpec(
        "surrogate-test",
        (
            default_member(
                "em1", num_analyses=num_analyses, n_steps=n_steps
            ),
            default_member(
                "em2", num_analyses=num_analyses, n_steps=n_steps
            ),
        ),
    )


class TestCrashResponse:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            CrashResponse(delay=-0.1, drop_fraction=0.0)

    @pytest.mark.parametrize("frac", [-0.1, 1.1])
    def test_drop_fraction_bounds(self, frac):
        with pytest.raises(ValidationError):
            CrashResponse(delay=0.0, drop_fraction=frac)


class TestExpectedCrashResponse:
    def test_retry_prices_first_attempt(self):
        resp = expected_crash_response(
            RetryBackoffPolicy(base_delay=0.7),
            step_time=2.0,
            n_steps=10,
            is_analysis=False,
        )
        assert resp.delay == pytest.approx(0.7)
        assert resp.drop_fraction == 0.0

    def test_restart_prices_mean_checkpoint_distance(self):
        # steps 0..9 with period 5: mean(step mod 5) = 2.0
        resp = expected_crash_response(
            CheckpointRestartPolicy(period=5, restart_latency=1.0),
            step_time=3.0,
            n_steps=10,
            is_analysis=False,
        )
        assert resp.delay == pytest.approx(1.0 + 2.0 * 3.0)
        assert resp.drop_fraction == 0.0

    def test_degrade_drops_analyses_past_step_zero(self):
        resp = expected_crash_response(
            DropAnalysisPolicy(),
            step_time=2.0,
            n_steps=10,
            is_analysis=True,
        )
        # 9 of 10 steps drop; step 0 falls back to retry
        assert resp.drop_fraction == pytest.approx(0.9)
        assert resp.delay == pytest.approx(
            0.1 * RetryBackoffPolicy().base_delay
        )

    def test_degrade_never_drops_simulations(self):
        resp = expected_crash_response(
            DropAnalysisPolicy(),
            step_time=2.0,
            n_steps=10,
            is_analysis=False,
        )
        assert resp.drop_fraction == 0.0
        assert resp.delay == pytest.approx(
            RetryBackoffPolicy().base_delay
        )

    def test_adaptive_fully_covered_matches_primary(self):
        policy = AdaptiveRecoveryPolicy(budget=100.0)
        resp = expected_crash_response(
            policy,
            step_time=2.0,
            n_steps=10,
            is_analysis=True,
            expected_crashes=1.0,
        )
        primary = expected_crash_response(
            policy.primary, 2.0, 10, True, 1.0
        )
        assert resp.delay == pytest.approx(primary.delay)
        assert resp.drop_fraction == pytest.approx(primary.drop_fraction)

    def test_adaptive_exhausted_budget_blends_toward_degrade(self):
        policy = AdaptiveRecoveryPolicy(budget=0.5)
        # expected spend far above budget -> mostly degraded response
        resp = expected_crash_response(
            policy,
            step_time=2.0,
            n_steps=10,
            is_analysis=True,
            expected_crashes=50.0,
        )
        covered = expected_crash_response(
            policy, 2.0, 10, True, expected_crashes=0.0
        )
        assert resp.drop_fraction > covered.drop_fraction
        assert resp.delay < covered.delay

    def test_unknown_policy_is_probed(self):
        class AlwaysDrop(RecoveryPolicy):
            def on_crash(self, ctx, attempt):
                return RecoveryAction(mode="drop", delay=0.0)

        resp = expected_crash_response(
            AlwaysDrop(), step_time=1.0, n_steps=10, is_analysis=True
        )
        assert resp.drop_fraction == 1.0
        assert resp.delay == 0.0


class TestSurrogateBaseline:
    def test_zero_rate_predicts_exactly_the_baseline(
        self, spec, placement
    ):
        report = surrogate_resilience(
            spec, placement, NoFailureModel(), RetryBackoffPolicy()
        )
        assert report.expected_inflation == pytest.approx(1.0)
        assert report.expected_faults == 0.0
        # the baseline is the DES failure-free makespan
        des = EnsembleExecutor(spec, placement).run()
        assert report.baseline_makespan == pytest.approx(
            des.ensemble_makespan, rel=MAKESPAN_REL
        )

    def test_positive_rate_inflates(self, spec, placement):
        report = surrogate_resilience(
            spec,
            placement,
            RandomFailureModel(rate=0.1),
            RetryBackoffPolicy(),
        )
        assert report.expected_inflation > 1.0
        assert report.expected_faults > 0.0
        assert 0.0 < report.effective_efficiency < 1.0

    def test_scheduled_model_has_no_hazard(self, spec, placement):
        model = ScheduledFailureModel(
            [
                FaultEvent(
                    member="em1",
                    component="em1.sim",
                    step=1,
                    kind=FaultKind.CRASH,
                    stage="S",
                    magnitude=0.5,
                )
            ]
        )
        with pytest.raises(ValidationError):
            surrogate_resilience(
                spec, placement, model, RetryBackoffPolicy()
            )

    def test_report_renders(self, spec, placement):
        report = surrogate_resilience(
            spec,
            placement,
            RandomFailureModel(rate=0.05),
            RetryBackoffPolicy(),
        )
        text = report.to_text()
        assert "expected makespan" in text
        assert "inflation" in text
        assert isinstance(report, SurrogateReport)
        assert all(isinstance(m, MemberForecast) for m in report.members)

    def test_monotone_in_rate(self, spec, placement):
        inflations = [
            surrogate_resilience(
                spec,
                placement,
                RandomFailureModel(rate=r),
                RetryBackoffPolicy(),
            ).expected_inflation
            for r in (0.0, 0.02, 0.05, 0.10)
        ]
        assert inflations == sorted(inflations)


class TestSurrogateVsDES:
    """The documented accuracy bound of docs/FAULT_MODELS.md."""

    def test_relative_error_bound_on_rate_grid(self):
        from repro.experiments.resilience import (
            VALIDATION_CONFIGS,
            VALIDATION_RATES,
            run_surrogate_validation,
        )

        result = run_surrogate_validation()
        errors = [row["rel_error"] for row in result.rows]
        assert len(errors) == len(VALIDATION_CONFIGS) * len(
            VALIDATION_RATES
        )
        # documented bound: every cell within 8%, grid mean within 5%
        assert max(errors) <= SURROGATE_CELL_REL
        assert sum(errors) / len(errors) <= SURROGATE_GRID_MEAN_REL

    def test_restart_policy_within_bound(self):
        from repro.experiments.resilience import run_surrogate_validation

        result = run_surrogate_validation(
            config_names=("C1.4",),
            rates=(0.05,),
            policy="restart",
            trials=3,
        )
        assert result.rows[0]["rel_error"] <= SURROGATE_CELL_REL

    def test_node_level_surrogate_tracks_des(self):
        spec = _small_spec(n_steps=10)
        placement = pack_members_per_node(spec)
        model = NodeFailureModel(placement, rate=0.08)
        policy = RetryBackoffPolicy()
        report = surrogate_resilience(spec, placement, model, policy)
        baseline = EnsembleExecutor(spec, placement).run()
        inflations = []
        for t in range(4):
            result = EnsembleExecutor(
                spec,
                placement,
                failure_model=NodeFailureModel(
                    placement, rate=0.08, seed=100 + t
                ),
                recovery=RetryBackoffPolicy(),
            ).run()
            inflations.append(
                result.ensemble_makespan / baseline.ensemble_makespan
            )
        des_mean = sum(inflations) / len(inflations)
        rel_error = abs(report.expected_inflation - des_mean) / des_mean
        assert rel_error <= SURROGATE_CELL_REL


class TestNodeCoFailure:
    """A node crash faults every co-located component at once."""

    def test_all_colocated_components_fault_together(self):
        spec = _small_spec(n_steps=5)
        placement = pack_members_per_node(spec)
        model = NodeFailureModel(placement, rate=1.0, seed=3)
        schedule = model.build_schedule(spec)

        # which components live on which node
        components_on = {}
        for member, mp in zip(spec.members, placement.members):
            components_on.setdefault(mp.simulation_node, set()).add(
                member.simulation.name
            )
            for ana, node in zip(member.analyses, mp.analysis_nodes):
                components_on.setdefault(node, set()).add(ana.name)
        node_of = {
            comp: node
            for node, comps in components_on.items()
            for comp in comps
        }

        # group events by (node, step): each faulting node must carry
        # every component placed on it
        by_site = {}
        for ev in schedule.events:
            by_site.setdefault(
                (node_of[ev.component], ev.step), set()
            ).add(ev.component)
        assert by_site  # rate 1.0 faults every (node, step)
        for (node, _step), comps in by_site.items():
            assert comps == components_on[node]

    def test_spread_placement_separates_fault_domains(self):
        spec = _small_spec(n_steps=5)
        placement = spread_components(spec)
        model = NodeFailureModel(placement, rate=1.0, seed=3)
        schedule = model.build_schedule(spec)
        # every component still faults (rate 1), but each event group
        # on a node only carries that node's single component
        comps = {ev.component for ev in schedule.events}
        expected = set()
        for member in spec.members:
            expected.add(member.simulation.name)
            expected.update(a.name for a in member.analyses)
        assert comps == expected

    def test_placement_mismatch_rejected(self):
        spec = _small_spec()
        other = _small_spec(num_analyses=1)
        model = NodeFailureModel(
            pack_members_per_node(other), rate=0.5
        )
        with pytest.raises(ValidationError):
            model.build_schedule(spec)


class TestCorrelatedDeterminism:
    """Fixed seed => identical schedule, for both arrival processes."""

    @pytest.fixture(scope="class")
    def cspec(self):
        return _small_spec(n_steps=20)

    def _markov(self, seed):
        return CorrelatedFailureModel(
            MarkovModulatedArrivals(
                quiet_rate=0.02,
                burst_rate=0.6,
                p_enter=0.2,
                p_exit=0.4,
            ),
            seed=seed,
        )

    def _weibull(self, seed):
        return CorrelatedFailureModel(
            WeibullBurstArrivals(mean_gap=4.0, burst_rate=0.8),
            seed=seed,
        )

    @pytest.mark.parametrize("factory", ["_markov", "_weibull"])
    def test_same_seed_same_schedule(self, cspec, factory):
        build = getattr(self, factory)
        a = build(11).build_schedule(cspec)
        b = build(11).build_schedule(cspec)
        assert a.events == b.events

    @pytest.mark.parametrize("factory", ["_markov", "_weibull"])
    def test_rebuild_on_same_instance_is_stable(self, cspec, factory):
        model = getattr(self, factory)(7)
        assert (
            model.build_schedule(cspec).events
            == model.build_schedule(cspec).events
        )

    def test_different_seeds_differ(self, cspec):
        a = self._markov(1).build_schedule(cspec)
        b = self._markov(2).build_schedule(cspec)
        assert a.events != b.events

    def test_node_model_with_process_is_deterministic(self, cspec):
        placement = pack_members_per_node(cspec)
        process = MarkovModulatedArrivals(
            quiet_rate=0.05, burst_rate=0.9, p_enter=0.3, p_exit=0.3
        )
        a = NodeFailureModel(
            placement, process=process, seed=5
        ).build_schedule(cspec)
        b = NodeFailureModel(
            placement, process=process, seed=5
        ).build_schedule(cspec)
        assert a.events == b.events

    def test_hazard_uses_stationary_mean_rate(self):
        process = MarkovModulatedArrivals(
            quiet_rate=0.0, burst_rate=0.5, p_enter=0.1, p_exit=0.4
        )
        model = CorrelatedFailureModel(process)
        assert model.hazard().site_rate == pytest.approx(
            process.mean_rate
        )


class TestRobustnessTerm:
    def test_exactly_one_model_source_required(self):
        with pytest.raises(ValidationError):
            RobustnessTerm(policy=RetryBackoffPolicy())
        with pytest.raises(ValidationError):
            RobustnessTerm(
                policy=RetryBackoffPolicy(),
                model=RandomFailureModel(rate=0.1),
                model_builder=node_crash_builder(0.1),
            )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            RobustnessTerm(
                policy=RetryBackoffPolicy(),
                model=RandomFailureModel(rate=0.1),
                weight=-1.0,
            )

    def test_penalty_zero_without_failures(self, spec, placement):
        term = RobustnessTerm(
            policy=RetryBackoffPolicy(), model=NoFailureModel()
        )
        assert term.penalty(spec, placement) == pytest.approx(0.0)

    def test_penalty_scales_with_weight(self, spec, placement):
        kwargs = dict(
            policy=RetryBackoffPolicy(),
            model=RandomFailureModel(rate=0.1),
        )
        p1 = RobustnessTerm(weight=1.0, **kwargs).penalty(
            spec, placement
        )
        p2 = RobustnessTerm(weight=2.0, **kwargs).penalty(
            spec, placement
        )
        assert p1 > 0
        assert p2 == pytest.approx(2 * p1)

    def test_builder_gets_the_candidate_placement(self):
        seen = []

        def builder(placement):
            seen.append(placement)
            return NoFailureModel()

        term = RobustnessTerm(
            policy=RetryBackoffPolicy(), model_builder=builder
        )
        spec = _small_spec()
        placement = pack_members_per_node(spec)
        term.penalty(spec, placement)
        assert seen == [placement]

    def test_node_crash_builder_builds_node_models(self):
        spec = _small_spec()
        placement = pack_members_per_node(spec)
        model = node_crash_builder(rate=0.07, seed=2)(placement)
        assert isinstance(model, NodeFailureModel)
        assert model.rate == pytest.approx(0.07)
        assert model.placement is placement

    def test_planner_pays_the_penalty(self):
        from repro.scheduler.planner import ResourceConstrainedPlanner

        spec = _small_spec()
        term = RobustnessTerm(
            policy=RetryBackoffPolicy(),
            model_builder=node_crash_builder(0.05),
        )
        ideal = ResourceConstrainedPlanner().plan(spec, num_nodes=3)
        robust = ResourceConstrainedPlanner(robustness=term).plan(
            spec, num_nodes=3
        )
        assert ideal.score.robust_penalty == 0.0
        assert robust.score.robust_penalty > 0.0
        assert robust.score.utility == pytest.approx(
            robust.score.objective - robust.score.robust_penalty
        )

    def test_annealer_accepts_the_term(self):
        from repro.scheduler.annealing import SimulatedAnnealingPolicy
        from repro.scheduler.objectives import score_placement

        spec = _small_spec()
        term = RobustnessTerm(
            policy=RetryBackoffPolicy(),
            model_builder=node_crash_builder(0.05),
        )
        annealer = SimulatedAnnealingPolicy(
            seed=4, plateau=40, cooling=0.85,
            min_temperature_ratio=1e-2, robustness=term,
        )
        placement = annealer.place(spec, 3, 32)
        score = score_placement(spec, placement, robustness=term)
        assert score.robust_penalty > 0.0
        assert score.utility == pytest.approx(
            score.objective - score.robust_penalty
        )
