"""Tests for the fault injector and its executor wiring.

The keystone here is the determinism regression: installing a
zero-rate failure model must leave the execution trace *byte-identical*
to a run with no injector at all — the injection hooks are transparent
when nothing is scheduled.
"""

import json

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.des.engine import Environment
from repro.faults.injector import (
    AnalysisDropped,
    FaultInjector,
    FaultLog,
    FaultRecord,
    StageContext,
)
from repro.faults.models import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    NoFailureModel,
    RandomFailureModel,
    ScheduledFailureModel,
)
from repro.faults.recovery import (
    CheckpointRestartPolicy,
    DropAnalysisPolicy,
    RetryBackoffPolicy,
)
from repro.monitoring.traceio import tracer_to_dict
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.runner import run_ensemble
from repro.util.errors import ValidationError


def _spec(name="C1.5", n_steps=5):
    return build_spec(TABLE2_CONFIGS[name], n_steps=n_steps)


def _placement(name="C1.5"):
    return TABLE2_CONFIGS[name].placement()


def _trace_bytes(result):
    return json.dumps(tracer_to_dict(result.tracer), sort_keys=True)


def _crash(component="em1.sim", stage="S", step=2, **kwargs):
    member = component.split(".")[0]
    defaults = dict(
        member=member,
        component=component,
        step=step,
        kind=FaultKind.CRASH,
        stage=stage,
        magnitude=0.5,
    )
    defaults.update(kwargs)
    return FaultEvent(**defaults)


class TestZeroFailureDeterminism:
    """Zero-rate injection is byte-identical to no injection."""

    @pytest.mark.parametrize("noise", [0.0, 0.05])
    def test_zero_rate_trace_byte_identical(self, noise):
        spec, placement = _spec(), _placement()
        baseline = run_ensemble(
            spec, placement, seed=11, timing_noise=noise
        )
        injected = run_ensemble(
            spec,
            placement,
            seed=11,
            timing_noise=noise,
            failure_model=RandomFailureModel(rate=0.0),
        )
        assert _trace_bytes(injected) == _trace_bytes(baseline)
        assert injected.ensemble_makespan == baseline.ensemble_makespan

    def test_no_failure_model_byte_identical(self):
        spec, placement = _spec(), _placement()
        baseline = run_ensemble(spec, placement, seed=3)
        injected = run_ensemble(
            spec, placement, seed=3, failure_model=NoFailureModel()
        )
        assert _trace_bytes(injected) == _trace_bytes(baseline)

    def test_zero_rate_congestion_aware_byte_identical(self):
        spec, placement = _spec("C1.1"), _placement("C1.1")

        def execute(model):
            return EnsembleExecutor(
                spec=spec,
                placement=placement,
                seed=5,
                timing_noise=0.03,
                congestion_aware=True,
                failure_model=model,
            ).run()

        assert _trace_bytes(execute(RandomFailureModel(rate=0.0))) == (
            _trace_bytes(execute(None))
        )

    def test_injected_run_is_reproducible(self):
        spec, placement = _spec(), _placement()
        model = RandomFailureModel(
            rate=0.2, kinds=(FaultKind.CRASH, FaultKind.STRAGGLER), seed=4
        )
        a = run_ensemble(spec, placement, seed=1, failure_model=model)
        b = run_ensemble(spec, placement, seed=1, failure_model=model)
        assert _trace_bytes(a) == _trace_bytes(b)


class TestInjectedFaults:
    def test_crash_inflates_makespan_and_is_logged(self):
        spec, placement = _spec(), _placement()
        baseline = run_ensemble(spec, placement, seed=0)
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            failure_model=ScheduledFailureModel([_crash()]),
            recovery=RetryBackoffPolicy(base_delay=1.0),
        )
        assert result.ensemble_makespan > baseline.ensemble_makespan
        log = result.fault_log
        assert len(log) == 1
        (rec,) = log.records
        assert rec.kind is FaultKind.CRASH
        assert rec.component == "em1.sim"
        assert rec.lost_work > 0
        assert rec.recovery_time >= 1.0  # at least the backoff delay

    def test_straggler_stretches_stage(self):
        spec, placement = _spec(), _placement()
        baseline = run_ensemble(spec, placement, seed=0)
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            failure_model=ScheduledFailureModel(
                [
                    _crash(
                        kind=FaultKind.STRAGGLER,
                        magnitude=4.0,
                    )
                ]
            ),
        )
        assert result.ensemble_makespan > baseline.ensemble_makespan
        (rec,) = result.fault_log.records
        assert rec.kind is FaultKind.STRAGGLER
        assert rec.lost_work > 0

    def test_stall_delays_exactly(self):
        spec, placement = _spec(), _placement()
        baseline = run_ensemble(spec, placement, seed=0)
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            failure_model=ScheduledFailureModel(
                [_crash(kind=FaultKind.STALL, magnitude=7.5)]
            ),
        )
        # C1.5's members are independent; the stalled member's critical
        # path grows by exactly the stall duration.
        assert result.ensemble_makespan == pytest.approx(
            baseline.ensemble_makespan + 7.5
        )

    def test_repeated_crashes_escalate_backoff(self):
        spec, placement = _spec(), _placement()
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            failure_model=ScheduledFailureModel([_crash(repeats=3)]),
            recovery=RetryBackoffPolicy(base_delay=1.0, factor=2.0),
        )
        recs = result.fault_log.records
        assert [r.attempts for r in recs] == [1, 2, 3]

    def test_chunk_loss_charged_to_reader(self):
        spec, placement = _spec(), _placement()
        baseline = run_ensemble(spec, placement, seed=0)
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            failure_model=ScheduledFailureModel(
                [
                    _crash(
                        kind=FaultKind.CHUNK_LOSS,
                        stage="W",
                        # larger than the analysis's idle slack so the
                        # re-read pushes the critical path, not just I_A
                        magnitude=20.0,
                    )
                ]
            ),
        )
        assert result.ensemble_makespan > baseline.ensemble_makespan
        (rec,) = result.fault_log.records
        assert rec.kind is FaultKind.CHUNK_LOSS
        assert rec.stage == "R"  # experienced by the consumer's read
        assert rec.component == "em1.ana1"
        assert rec.recovery_time >= 20.0

    def test_degrade_drops_analysis_and_completes(self):
        spec, placement = _spec(), _placement()
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            failure_model=ScheduledFailureModel(
                [_crash(component="em1.ana1", stage="A", step=2)]
            ),
            recovery=DropAnalysisPolicy(),
        )
        assert result.fault_log.dropped_components == ["em1.ana1"]
        # the simulation still ran all of its steps
        sim_records = [
            r
            for r in result.tracer.records
            if r.component == "em1.sim" and r.stage.value == "S"
        ]
        assert len(sim_records) == spec.members[0].n_steps

    def test_degrade_with_real_chunks_releases_dtl(self):
        spec, placement = _spec(), _placement()
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            stage_real_chunks=True,
            failure_model=ScheduledFailureModel(
                [_crash(component="em1.ana1", stage="A", step=1)]
            ),
            recovery=DropAnalysisPolicy(),
        )
        assert result.fault_log.dropped_components == ["em1.ana1"]

    def test_checkpoint_restart_costs_more_late_in_period(self):
        spec, placement = _spec(), _placement()

        def makespan(step):
            return run_ensemble(
                spec,
                placement,
                seed=0,
                failure_model=ScheduledFailureModel([_crash(step=step)]),
                recovery=CheckpointRestartPolicy(period=5),
            ).ensemble_makespan

        assert makespan(4) > makespan(1)


class TestFaultLog:
    def _record(self, **kwargs):
        defaults = dict(
            member="em1",
            component="em1.sim",
            stage="S",
            step=0,
            kind=FaultKind.CRASH,
            policy="retry",
            detected=10.0,
            recovered=12.5,
            lost_work=3.0,
        )
        defaults.update(kwargs)
        return FaultRecord(**defaults)

    def test_aggregates(self):
        log = FaultLog()
        log.record(self._record())
        log.record(
            self._record(kind=FaultKind.STALL, detected=20.0, recovered=21.0)
        )
        assert len(log) == 2
        assert log.recovery_times == [2.5, 1.0]
        assert log.lost_work_total == 6.0
        assert log.counts_by_kind() == {"crash": 1, "stall": 1}
        assert len(log.of_kind(FaultKind.CRASH)) == 1

    def test_summary_renders(self):
        log = FaultLog()
        assert "no faults" in log.summary()
        log.record(self._record())
        log.mark_dropped("em1.ana1")
        text = log.summary()
        assert "crash=1" in text
        assert "em1.ana1" in text


class TestInjectorUnit:
    def test_requires_a_schedule(self):
        with pytest.raises(ValidationError):
            FaultInjector(schedule=None)

    def test_empty_site_is_single_body_pass(self):
        env = Environment()
        injector = FaultInjector(FaultSchedule(()))
        ctx = StageContext(
            member="em1",
            component="em1.sim",
            stage="S",
            step=0,
            duration=3.0,
        )

        def proc(env):
            yield from injector.execute(env, ctx)

        env.process(proc(env))
        env.run()
        assert env.now == 3.0
        assert len(injector.log) == 0

    def test_analysis_dropped_signals_component(self):
        env = Environment()
        injector = FaultInjector(
            FaultSchedule(
                [_crash(component="em1.ana1", stage="A", step=2)]
            ),
            policy=DropAnalysisPolicy(),
        )
        ctx = StageContext(
            member="em1",
            component="em1.ana1",
            stage="A",
            step=2,
            duration=3.0,
        )
        captured = {}

        def proc(env):
            try:
                yield from injector.execute(env, ctx)
            except AnalysisDropped as exc:
                captured["exc"] = exc

        env.process(proc(env))
        env.run()
        assert captured["exc"].component == "em1.ana1"
        assert captured["exc"].step == 2
        assert injector.log.dropped_components == ["em1.ana1"]
