"""Tests for the recovery policies."""

import pytest

from repro.faults.injector import StageContext
from repro.faults.recovery import (
    POLICY_NAMES,
    CheckpointRestartPolicy,
    DropAnalysisPolicy,
    RecoveryAction,
    RetryBackoffPolicy,
    make_policy,
)
from repro.util.errors import ValidationError


def _ctx(stage="S", step=3, step_time=4.0):
    return StageContext(
        member="em1",
        component="em1.sim" if stage in ("S", "W") else "em1.ana1",
        stage=stage,
        step=step,
        duration=2.0,
        step_time=step_time,
    )


class TestRecoveryAction:
    def test_valid_modes(self):
        for mode in ("retry", "restart", "drop"):
            RecoveryAction(mode, 0.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError):
            RecoveryAction("panic", 0.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            RecoveryAction("retry", -1.0)


class TestRetryBackoffPolicy:
    def test_exponential_growth(self):
        policy = RetryBackoffPolicy(base_delay=1.0, factor=2.0, max_delay=100)
        delays = [policy.on_crash(_ctx(), a).delay for a in range(4)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_capped_at_max_delay(self):
        policy = RetryBackoffPolicy(base_delay=1.0, factor=2.0, max_delay=3.0)
        assert policy.on_crash(_ctx(), 10).delay == 3.0

    def test_mode_is_retry(self):
        assert RetryBackoffPolicy().on_crash(_ctx(), 0).mode == "retry"

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValidationError):
            RetryBackoffPolicy(factor=0.5)


class TestCheckpointRestartPolicy:
    def test_delay_counts_steps_since_checkpoint(self):
        policy = CheckpointRestartPolicy(period=5, restart_latency=2.0)
        action = policy.on_crash(_ctx(step=7, step_time=4.0), 0)
        assert action.mode == "restart"
        # 7 % 5 = 2 lost steps at 4 s each, plus the restart latency
        assert action.delay == 2.0 + 2 * 4.0

    def test_checkpoint_boundary_costs_only_latency(self):
        policy = CheckpointRestartPolicy(period=5, restart_latency=2.0)
        assert policy.on_crash(_ctx(step=5), 0).delay == 2.0

    def test_period_validated(self):
        with pytest.raises(ValidationError):
            CheckpointRestartPolicy(period=0)


class TestDropAnalysisPolicy:
    def test_drops_analysis_after_first_step(self):
        action = DropAnalysisPolicy().on_crash(_ctx(stage="A", step=2), 0)
        assert action.mode == "drop"
        assert action.delay == 0.0

    def test_step_zero_falls_back(self):
        action = DropAnalysisPolicy().on_crash(_ctx(stage="A", step=0), 0)
        assert action.mode == "retry"

    def test_simulation_crash_falls_back(self):
        action = DropAnalysisPolicy().on_crash(_ctx(stage="S", step=2), 0)
        assert action.mode == "retry"

    def test_custom_fallback(self):
        policy = DropAnalysisPolicy(
            fallback=CheckpointRestartPolicy(period=3)
        )
        assert policy.on_crash(_ctx(stage="S", step=2), 0).mode == "restart"


class TestMakePolicy:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_builds_every_named_policy(self, name):
        assert make_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown recovery policy"):
            make_policy("pray")
