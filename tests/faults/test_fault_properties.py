"""Property tests for fault events and schedules via tests.strategies.

The shared ``fault_events`` strategy generates only *valid* events (it
encodes the per-kind magnitude envelopes), so these properties exercise
the schedule container and the injector-facing lookups over the whole
validity space rather than a few hand-picked cases.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.models import (
    CHUNK_KINDS,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)
from repro.util.errors import ValidationError
from tests.strategies import fault_events, fault_schedules

COMPONENTS = ("em1.sim", "em1.ana1")


class TestEventEnvelope:
    @given(fault_events())
    @settings(max_examples=200)
    def test_generated_events_are_valid(self, event):
        """Strategy output always satisfies FaultEvent.__post_init__."""
        if event.kind is FaultKind.CRASH:
            assert 0.0 < event.magnitude <= 1.0
        elif event.kind is FaultKind.STRAGGLER:
            assert event.magnitude > 1.0
        else:
            assert event.magnitude >= 0.0
        assert event.repeats >= 1
        assert event.stage in ("S", "W", "R", "A")

    @given(fault_events())
    @settings(max_examples=100)
    def test_events_round_trip_through_reconstruction(self, event):
        clone = FaultEvent(
            member=event.member,
            component=event.component,
            step=event.step,
            kind=event.kind,
            stage=event.stage,
            magnitude=event.magnitude,
            repeats=event.repeats,
        )
        assert clone == event

    def test_invalid_magnitudes_rejected(self):
        with pytest.raises(ValidationError):
            FaultEvent("em1", "em1.sim", 0, FaultKind.CRASH, "S", 0.0)
        with pytest.raises(ValidationError):
            FaultEvent("em1", "em1.sim", 0, FaultKind.STRAGGLER, "S", 1.0)
        with pytest.raises(ValidationError):
            FaultEvent("em1", "em1.sim", 0, FaultKind.STALL, "S", -0.5)


class TestScheduleProperties:
    @given(fault_schedules())
    @settings(max_examples=100)
    def test_order_is_canonical(self, schedule):
        keys = [
            (e.component, e.step, e.stage, e.kind.value)
            for e in schedule.events
        ]
        assert keys == sorted(keys)
        # rebuilding from any input order yields the same multiset in
        # the same canonical key order (ties keep input order, so only
        # the keys are asserted, not full event identity)
        rebuilt = FaultSchedule(reversed(schedule.events))
        assert sorted(map(repr, rebuilt.events)) == sorted(
            map(repr, schedule.events)
        )
        assert [
            (e.component, e.step, e.stage, e.kind.value)
            for e in rebuilt.events
        ] == keys

    @given(fault_schedules())
    @settings(max_examples=100)
    def test_every_event_reachable_through_lookup(self, schedule):
        """events == union of site lookups: nothing is orphaned."""
        recovered = []
        for event in schedule.events:
            if event.kind in CHUNK_KINDS:
                hits = schedule.chunk_events_for(event.component, event.step)
            else:
                hits = schedule.events_for(
                    event.component, event.step, event.stage
                )
            assert event in hits
            recovered.append(event)
        assert len(recovered) == len(schedule)

    @given(fault_schedules())
    @settings(max_examples=100)
    def test_lookup_misses_are_empty(self, schedule):
        assert schedule.events_for("nope.sim", 0, "S") == ()
        assert schedule.chunk_events_for("nope.sim", 0) == ()

    @given(fault_schedules())
    @settings(max_examples=100)
    def test_len_and_emptiness_agree(self, schedule):
        assert len(schedule) == len(schedule.events)
        assert schedule.is_empty == (len(schedule) == 0)

    @given(
        fault_schedules(),
        st.sampled_from(COMPONENTS),
        st.integers(min_value=0, max_value=7),
        st.sampled_from(["S", "W", "R", "A"]),
    )
    @settings(max_examples=100)
    def test_site_lookup_is_exact(self, schedule, component, step, stage):
        hits = schedule.events_for(component, step, stage)
        for event in hits:
            assert event.component == component
            assert event.step == step
            assert event.stage == stage
            assert event.kind not in CHUNK_KINDS
