"""Tests for failure models and fault schedules."""

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.faults.models import (
    CHUNK_KINDS,
    FailureModel,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    NoFailureModel,
    RandomFailureModel,
    ScheduledFailureModel,
)
from repro.util.errors import ValidationError


def _spec(name="C1.5", n_steps=6):
    return build_spec(TABLE2_CONFIGS[name], n_steps=n_steps)


def _event(**kwargs):
    defaults = dict(
        member="em1",
        component="em1.sim",
        step=2,
        kind=FaultKind.CRASH,
        stage="S",
        magnitude=0.5,
    )
    defaults.update(kwargs)
    return FaultEvent(**defaults)


class TestFaultEvent:
    def test_valid_crash(self):
        ev = _event()
        assert ev.kind is FaultKind.CRASH
        assert ev.repeats == 1

    def test_repr_names_site(self):
        assert "em1.sim:S2" in repr(_event())

    @pytest.mark.parametrize("magnitude", [0.0, -0.1, 1.5])
    def test_crash_magnitude_bounds(self, magnitude):
        with pytest.raises(ValidationError):
            _event(magnitude=magnitude)

    @pytest.mark.parametrize("magnitude", [1.0, 0.5, -2.0])
    def test_straggler_must_inflate(self, magnitude):
        with pytest.raises(ValidationError):
            _event(kind=FaultKind.STRAGGLER, magnitude=magnitude)

    def test_stall_magnitude_non_negative(self):
        with pytest.raises(ValidationError):
            _event(kind=FaultKind.STALL, magnitude=-1.0)
        _event(kind=FaultKind.STALL, magnitude=0.0)  # zero is fine

    def test_bad_stage_rejected(self):
        with pytest.raises(ValidationError):
            _event(stage="X")

    def test_negative_step_rejected(self):
        with pytest.raises(ValidationError):
            _event(step=-1)

    def test_empty_component_rejected(self):
        with pytest.raises(ValidationError):
            _event(component="")

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValidationError):
            _event(repeats=0)


class TestFaultSchedule:
    def test_empty(self):
        sched = FaultSchedule(())
        assert sched.is_empty
        assert len(sched) == 0
        assert sched.events_for("em1.sim", 0, "S") == ()
        assert sched.chunk_events_for("em1.sim", 0) == ()

    def test_site_lookup(self):
        ev = _event()
        sched = FaultSchedule([ev])
        assert sched.events_for("em1.sim", 2, "S") == (ev,)
        assert sched.events_for("em1.sim", 2, "W") == ()
        assert sched.events_for("em1.sim", 3, "S") == ()

    def test_chunk_faults_indexed_by_producer(self):
        ev = _event(
            kind=FaultKind.CHUNK_LOSS, stage="W", magnitude=1.0
        )
        sched = FaultSchedule([ev])
        assert sched.chunk_events_for("em1.sim", 2) == (ev,)
        # chunk faults do not appear in the component-local index
        assert sched.events_for("em1.sim", 2, "W") == ()

    def test_events_ordered_deterministically(self):
        evs = [
            _event(component="b.sim", step=1),
            _event(component="a.sim", step=3),
            _event(component="a.sim", step=0),
        ]
        assert FaultSchedule(evs).events == FaultSchedule(
            reversed(evs)
        ).events


class TestNoFailureModel:
    def test_always_empty(self):
        assert NoFailureModel().build_schedule(_spec()).is_empty

    def test_is_a_failure_model(self):
        assert isinstance(NoFailureModel(), FailureModel)


class TestRandomFailureModel:
    def test_zero_rate_empty(self):
        model = RandomFailureModel(rate=0.0)
        assert model.build_schedule(_spec()).is_empty

    def test_same_seed_same_schedule(self):
        spec = _spec()
        a = RandomFailureModel(rate=0.3, seed=7).build_schedule(spec)
        b = RandomFailureModel(rate=0.3, seed=7).build_schedule(spec)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        spec = _spec()
        a = RandomFailureModel(rate=0.3, seed=1).build_schedule(spec)
        b = RandomFailureModel(rate=0.3, seed=2).build_schedule(spec)
        assert a.events != b.events

    def test_rate_one_faults_every_site(self):
        spec = _spec(n_steps=4)
        sched = RandomFailureModel(rate=1.0).build_schedule(spec)
        n_components = sum(
            1 + len(m.analyses) for m in spec.members
        )
        assert len(sched) == n_components * 4

    def test_chunk_kinds_only_on_simulations(self):
        spec = _spec()
        sched = RandomFailureModel(
            rate=1.0, kinds=CHUNK_KINDS
        ).build_schedule(spec)
        assert not sched.is_empty
        assert all(e.component.endswith(".sim") for e in sched.events)
        assert all(e.stage == "W" for e in sched.events)

    def test_rate_validated(self):
        with pytest.raises(ValidationError):
            RandomFailureModel(rate=1.5)
        with pytest.raises(ValidationError):
            RandomFailureModel(rate=-0.1)

    def test_kinds_validated(self):
        with pytest.raises(ValidationError):
            RandomFailureModel(rate=0.1, kinds=())
        with pytest.raises(ValidationError):
            RandomFailureModel(rate=0.1, kinds=("crash",))


class TestScheduledFailureModel:
    def test_passthrough(self):
        ev = _event()
        model = ScheduledFailureModel([ev])
        assert model.build_schedule(_spec()).events == (ev,)

    def test_unknown_component_rejected(self):
        model = ScheduledFailureModel([_event(component="ghost.sim")])
        with pytest.raises(ValidationError, match="ghost.sim"):
            model.build_schedule(_spec())
