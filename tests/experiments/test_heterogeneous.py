"""Tests for the mixed-regime (Figure 6) experiment."""

import pytest

from repro.core.efficiency import computational_efficiency
from repro.core.insitu import CouplingRegime, non_overlapped_segment
from repro.experiments.heterogeneous import (
    build_mixed_member,
    run_heterogeneous,
)
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement


class TestMixedRegimes:
    @pytest.fixture(scope="class")
    def result(self):
        return run_heterogeneous(slow_cores=4, fast_cores=16, n_steps=6)

    def test_one_coupling_per_regime(self, result):
        """Figure 6's scenario: Idle Simulation and Idle Analyzer at once."""
        regimes = {row["coupling"]: row["regime"] for row in result.rows}
        assert regimes["(Sim, slow)"] == CouplingRegime.IDLE_SIMULATION.value
        assert regimes["(Sim, fast)"] == CouplingRegime.IDLE_ANALYZER.value

    def test_slow_coupling_defines_sigma(self):
        spec = build_mixed_member(slow_cores=4, fast_cores=16, n_steps=1)
        placement = EnsemblePlacement(3, (MemberPlacement(0, (1, 2)),))
        stages = predict_member_stages(spec, placement)["mix"]
        assert non_overlapped_segment(stages) == pytest.approx(
            stages.analyses[0].active
        )
        assert stages.analyses[0].active > stages.simulation.active

    def test_member_e_is_mean_of_couplings(self, result):
        effs = [row["coupling_efficiency"] for row in result.rows]
        spec = build_mixed_member(slow_cores=4, fast_cores=16, n_steps=1)
        placement = EnsemblePlacement(3, (MemberPlacement(0, (1, 2)),))
        stages = predict_member_stages(spec, placement)["mix"]
        assert computational_efficiency(stages) == pytest.approx(
            sum(effs) / 2, rel=1e-3
        )

    def test_fast_coupling_less_efficient_than_balance(self, result):
        """The fast analysis idles most of the step: its per-coupling
        efficiency is the lowest (both it and the sim wait on the slow
        coupling's period)."""
        effs = {
            row["coupling"]: row["coupling_efficiency"]
            for row in result.rows
        }
        assert effs["(Sim, fast)"] < effs["(Sim, slow)"]

    def test_identical_analyses_give_equal_couplings(self):
        result = run_heterogeneous(slow_cores=8, fast_cores=8, n_steps=4)
        effs = [row["coupling_efficiency"] for row in result.rows]
        assert effs[0] == pytest.approx(effs[1], rel=0.02)
