"""Structural tests for each figure experiment (fast settings).

The paper's *claims* about each figure are asserted in
``tests/integration/test_paper_claims.py``; these tests check that each
experiment produces well-formed data.
"""

import math

import pytest

from repro.experiments import (
    run_contention_ablation,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig7,
    run_fig8,
    run_fig9,
    run_headline,
    run_locality_ablation,
    run_tax_ablation,
)
from repro.experiments.fig8 import STAGE_PATHS, ranking
from repro.experiments.headline import run_headline_extended

FAST = dict(trials=2, n_steps=4)


class TestFig3:
    def test_rows_cover_all_configs_and_components(self):
        r = run_fig3(**FAST)
        configs = set(r.column("configuration"))
        assert configs == {"Cf", "Cc", "C1.1", "C1.2", "C1.3", "C1.4", "C1.5"}
        # 2 one-member configs x 2 comps + 5 two-member configs x 4 comps
        assert len(r.rows) == 2 * 2 + 5 * 4

    def test_metrics_in_valid_ranges(self):
        r = run_fig3(**FAST)
        for row in r.rows:
            assert 0 <= row["llc_miss_ratio"] <= 1
            assert row["memory_intensity"] >= 0
            assert row["ipc"] > 0
            assert row["execution_time"] > 0

    def test_config_filter(self):
        r = run_fig3(config_names=["Cc"], **FAST)
        assert set(r.column("configuration")) == {"Cc"}


class TestFig4:
    def test_one_row_per_member(self):
        r = run_fig4(**FAST)
        assert len(r.rows) == 2 * 1 + 5 * 2

    def test_makespans_positive(self):
        r = run_fig4(**FAST)
        assert all(row["makespan"] > 0 for row in r.rows)


class TestFig5:
    def test_one_row_per_config(self):
        r = run_fig5(**FAST)
        assert len(r.rows) == 7

    def test_ensemble_makespan_at_least_member_max(self):
        f4 = run_fig4(**FAST)
        f5 = run_fig5(**FAST)
        for row in f5.rows:
            members = [
                r["makespan"]
                for r in f4.rows
                if r["configuration"] == row["configuration"]
            ]
            assert row["ensemble_makespan"] >= max(members) - 1e-6


class TestFig7:
    def test_default_sweep_columns(self):
        r = run_fig7()
        assert r.column("analysis_cores") == [1, 2, 4, 8, 16, 32]
        for row in r.rows:
            assert row["sigma"] == pytest.approx(
                max(row["simulation_active"], row["analysis_active"])
            )

    def test_sim_side_constant_across_sweep(self):
        r = run_fig7()
        sims = r.column("simulation_active")
        assert max(sims) - min(sims) < 1e-9

    def test_analysis_time_monotone_decreasing(self):
        r = run_fig7()
        ana = r.column("analysis_active")
        assert ana == sorted(ana, reverse=True)


class TestFig8And9:
    def test_fig8_rows_and_paths(self):
        r = run_fig8(**FAST)
        assert set(r.column("configuration")) == {
            "C1.1", "C1.2", "C1.3", "C1.4", "C1.5",
        }
        for row in r.rows:
            for label in STAGE_PATHS:
                assert label in row

    def test_fig8_final_stage_order_independent(self):
        r = run_fig8(**FAST)
        for row in r.rows:
            assert row["U,A,P"] == pytest.approx(row["U,P,A"], rel=1e-9)

    def test_fig9_rows(self):
        r = run_fig9(**FAST)
        assert set(r.column("configuration")) == {
            f"C2.{i}" for i in range(1, 9)
        }

    def test_ranking_helper(self):
        r = run_fig8(**FAST)
        names = ranking(r, "U,A,P")
        assert len(names) == 5
        values = [r.row_for("configuration", n)["U,A,P"] for n in names]
        assert values == sorted(values, reverse=True)


class TestHeadline:
    def test_rows_for_both_sets(self):
        r = run_headline(**FAST)
        assert len(r.rows) == 6  # 2 sets x 3 stages
        for row in r.rows:
            assert row["best_F"] >= row["worst_F"]
            if row["worst_F"] > 0:
                assert row["improvement_ratio"] == pytest.approx(
                    row["best_F"] / row["worst_F"]
                )

    def test_extended_demonstrates_dynamic_range(self):
        r = run_headline_extended(n_steps=4)
        one, two = r.rows
        assert one["worst_F"] < one["best_F"]
        # two stragglers drive F non-positive -> unbounded improvement
        assert two["worst_F"] <= 0
        assert math.isinf(two["improvement_ratio"])


class TestAblations:
    def test_contention_ablation_shape(self):
        r = run_contention_ablation(**FAST)
        assert len(r.rows) == 4
        on = {
            row["configuration"]: row["ensemble_makespan"]
            for row in r.rows
            if row["variant"] == "contention-on"
        }
        off = {
            row["configuration"]: row["ensemble_makespan"]
            for row in r.rows
            if row["variant"] == "contention-off"
        }
        # with contention off the C1.4 penalty collapses
        gap_on = on["C1.4"] / on["C1.5"]
        gap_off = off["C1.4"] / off["C1.5"]
        assert gap_on > gap_off

    def test_locality_ablation(self):
        r = run_locality_ablation(**FAST)
        rows = {
            (row["variant"], row["configuration"]): row["ensemble_makespan"]
            for row in r.rows
        }
        # under DIMES co-location wins; under the burst buffer it loses
        assert rows[("dimes", "Cc")] < rows[("dimes", "Cf")]
        assert rows[("burst-buffer", "Cc")] > rows[("burst-buffer", "Cf")]

    def test_tax_ablation(self):
        r = run_tax_ablation(**FAST)
        rows = {
            (row["variant"], row["configuration"]): row["ensemble_makespan"]
            for row in r.rows
        }
        assert rows[("tax-on", "Cc")] < rows[("tax-on", "Cf")]
        assert rows[("tax-off", "Cf")] < rows[("tax-off", "Cc")]
