"""Tests for the ensemble-size scaling experiment."""

import pytest

from repro.experiments.scaling import run_scaling


@pytest.fixture(scope="module")
def scaling():
    return run_scaling(member_counts=(1, 2, 4, 8), n_steps=10)


def rows_for(result, placement):
    return [r for r in result.rows if r["placement"] == placement]


class TestScaling:
    def test_member_independence(self, scaling):
        """Co-located members on distinct nodes never interact: the
        ensemble makespan is N-invariant (the paper's concluding
        insight that members can be scheduled individually)."""
        spans = [r["ensemble_makespan"] for r in rows_for(scaling, "co-located")]
        assert max(spans) - min(spans) < 1e-6 * spans[0]

    def test_spread_also_independent_but_slower(self, scaling):
        packed = rows_for(scaling, "co-located")
        spread = rows_for(scaling, "spread")
        for p, s in zip(packed, spread):
            assert p["ensemble_makespan"] < s["ensemble_makespan"]

    def test_colocated_dominates_f_at_every_n(self, scaling):
        packed = {r["members"]: r["objective_F"] for r in rows_for(scaling, "co-located")}
        spread = {r["members"]: r["objective_F"] for r in rows_for(scaling, "spread")}
        for n in packed:
            assert packed[n] > spread[n]

    def test_f_scales_inversely_with_nodes(self, scaling):
        """Uniform members: F ~ 1/M exactly (mean of identical values,
        zero std)."""
        packed = {r["members"]: r["objective_F"] for r in rows_for(scaling, "co-located")}
        assert packed[2] == pytest.approx(packed[1] / 2, rel=1e-9)
        assert packed[8] == pytest.approx(packed[1] / 8, rel=1e-9)

    def test_node_counts(self, scaling):
        for r in scaling.rows:
            if r["placement"] == "co-located":
                assert r["nodes"] == r["members"]
            else:
                assert r["nodes"] == 2 * r["members"]
