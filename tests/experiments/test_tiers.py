"""Tests for the staging-tier matrix experiment."""

import pytest

from repro.experiments.tiers import (
    best_placement_per_tier,
    default_tiers,
    run_tier_matrix,
)


@pytest.fixture(scope="module")
def matrix():
    return run_tier_matrix(trials=2, n_steps=4, timing_noise=0.0)


class TestTierMatrix:
    def test_covers_all_tiers_and_configs(self, matrix):
        tiers = {row["tier"] for row in matrix.rows}
        assert tiers == {"in-memory", "burst-buffer", "parallel-fs"}
        configs = {row["configuration"] for row in matrix.rows}
        assert configs == {"Cf", "Cc", "C1.2", "C1.4", "C1.5"}

    def test_in_memory_winner_is_colocated(self, matrix):
        assert best_placement_per_tier(matrix)["in-memory"] in ("Cc", "C1.5")

    def test_external_tiers_flip_winner_to_cf(self, matrix):
        winners = best_placement_per_tier(matrix)
        assert winners["burst-buffer"] == "Cf"
        assert winners["parallel-fs"] == "Cf"

    def test_colocated_nearly_tier_invariant(self, matrix):
        for config in ("Cc", "C1.5"):
            spans = [
                row["ensemble_makespan"]
                for row in matrix.rows
                if row["configuration"] == config
            ]
            assert max(spans) / min(spans) < 1.01

    def test_contention_dominates_every_tier(self, matrix):
        for tier in ("in-memory", "burst-buffer", "parallel-fs"):
            rows = {
                row["configuration"]: row["ensemble_makespan"]
                for row in matrix.rows
                if row["tier"] == tier
            }
            assert max(rows, key=rows.get) == "C1.4"

    def test_custom_tier_set(self):
        tiers = {"in-memory": default_tiers()["in-memory"]}
        result = run_tier_matrix(
            trials=1, n_steps=3, config_names=("Cf", "Cc"), tiers=tiers
        )
        assert len(result.rows) == 2
