"""Tests for the experiment harness machinery."""

import pytest

from repro.configs.table2 import get_config
from repro.experiments.base import (
    ExperimentResult,
    run_configuration,
    run_configuration_trials,
    trial_mean,
)
from repro.util.errors import ValidationError


class TestExperimentResult:
    def test_column_access(self):
        r = ExperimentResult(
            "x",
            "title",
            ["a", "b"],
            [{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}],
        )
        assert r.column("a") == [1, 3]
        with pytest.raises(ValidationError):
            r.column("missing")

    def test_row_lookup(self):
        r = ExperimentResult(
            "x", "t", ["name", "v"], [{"name": "p", "v": 1}]
        )
        assert r.row_for("name", "p") == {"name": "p", "v": 1}
        with pytest.raises(ValidationError):
            r.row_for("name", "missing")

    def test_missing_column_in_row_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentResult("x", "t", ["a", "b"], [{"a": 1}])

    def test_empty_rows_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentResult("x", "t", ["a"], [])

    def test_to_text_renders_all_rows(self):
        r = ExperimentResult(
            "exp1",
            "demo",
            ["cfg", "val"],
            [{"cfg": "a", "val": 1.5}, {"cfg": "b", "val": 2.5}],
            notes="note here",
        )
        text = r.to_text()
        assert "exp1" in text
        assert "a" in text and "b" in text
        assert "1.5" in text and "2.5" in text
        assert "note here" in text


class TestTrialRunning:
    def test_trials_use_distinct_seeds(self):
        config = get_config("Cc")
        results = run_configuration_trials(
            config, trials=3, n_steps=4, timing_noise=0.05
        )
        makespans = {r.ensemble_makespan for r in results}
        assert len(makespans) == 3  # noise + distinct seeds -> all differ

    def test_zero_noise_trials_identical(self):
        config = get_config("Cc")
        results = run_configuration_trials(
            config, trials=3, n_steps=4, timing_noise=0.0
        )
        makespans = {r.ensemble_makespan for r in results}
        assert len(makespans) == 1

    def test_single_run(self):
        result = run_configuration(get_config("Cf"), n_steps=4)
        assert result.ensemble_name == "Cf"
        assert result.total_nodes == 2

    def test_trial_mean(self):
        assert trial_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValidationError):
            trial_mean([])

    def test_invalid_trials(self):
        with pytest.raises(ValidationError):
            run_configuration_trials(get_config("Cc"), trials=0)
