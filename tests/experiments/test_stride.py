"""Tests for the stride-sensitivity experiment."""

import pytest

from repro.experiments.stride import (
    run_stride_sweep,
    smallest_idle_analyzer_stride,
)


@pytest.fixture(scope="module")
def sweep():
    return run_stride_sweep()


class TestStrideSweep:
    def test_analysis_time_stride_invariant(self, sweep):
        """The analysis processes one frame regardless of stride."""
        values = sweep.column("analysis_active")
        assert max(values) - min(values) < 1e-9

    def test_simulation_time_linear_in_stride(self, sweep):
        r100 = sweep.row_for("stride", 100)
        r800 = sweep.row_for("stride", 800)
        # S dominates S+W, so near-8x scaling
        assert r800["simulation_active"] == pytest.approx(
            8 * r100["simulation_active"], rel=0.01
        )

    def test_regime_flips_once_with_growing_stride(self, sweep):
        regimes = sweep.column("regime")
        flip = regimes.index("idle-analyzer")
        assert all(r == "idle-simulation" for r in regimes[:flip])
        assert all(r == "idle-analyzer" for r in regimes[flip:])

    def test_paper_stride_is_smallest_idle_analyzer(self, sweep):
        """The paper's stride 800 is exactly the crossover choice."""
        assert smallest_idle_analyzer_stride(sweep) == 800

    def test_efficiency_peaks_at_crossover(self, sweep):
        effs = {row["stride"]: row["efficiency"] for row in sweep.rows}
        best = max(effs, key=effs.get)
        assert best in (600, 800)  # the two strides bracketing balance

    def test_amortized_cost_plateaus_in_idle_analyzer(self, sweep):
        """Past the crossover, seconds per MD step stops improving —
        larger strides only trade analysis freshness for nothing."""
        idle_analyzer = [
            row["seconds_per_md_step"]
            for row in sweep.rows
            if row["regime"] == "idle-analyzer"
        ]
        assert max(idle_analyzer) - min(idle_analyzer) < 1e-4
        idle_sim = [
            row["seconds_per_md_step"]
            for row in sweep.rows
            if row["regime"] == "idle-simulation"
        ]
        # in the idle-simulation regime the cost per step is worse
        assert min(idle_sim) > max(idle_analyzer)

    def test_sigma_is_max_of_sides(self, sweep):
        for row in sweep.rows:
            assert row["sigma"] == pytest.approx(
                max(row["simulation_active"], row["analysis_active"])
            )

    def test_no_feasible_stride_raises(self):
        result = run_stride_sweep(strides=(10, 20))
        with pytest.raises(ValueError):
            smallest_idle_analyzer_stride(result)
