"""Tests for the resilience sweep experiment."""

import pytest

from repro.experiments.resilience import run_resilience
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def result():
    return run_resilience(
        config_names=("C1.4", "C1.5"),
        rates=(0.05, 0.2),
        policies=("retry", "degrade"),
        trials=1,
        n_steps=4,
    )


class TestRunResilience:
    def test_shape(self, result):
        assert result.experiment_id == "resilience"
        assert result.columns == [
            "config",
            "rate",
            "policy",
            "F_ideal",
            "F_robust",
            "inflation",
            "goodput",
            "rank",
        ]
        # one row per (config, rate, policy)
        assert len(result.rows) == 2 * 2 * 2

    def test_ranks_are_dense_within_cells(self, result):
        for rate in (0.05, 0.2):
            for policy in ("retry", "degrade"):
                cell = [
                    r
                    for r in result.rows
                    if r["rate"] == rate and r["policy"] == policy
                ]
                assert sorted(r["rank"] for r in cell) == [1, 2]
                ranked = sorted(cell, key=lambda r: r["rank"])
                robusts = [r["F_robust"] for r in ranked]
                assert robusts == sorted(robusts, reverse=True)

    def test_objectives_positive_and_bounded(self, result):
        for row in result.rows:
            assert row["F_ideal"] > 0
            assert row["F_robust"] > 0
            assert row["inflation"] >= 1.0 or row["inflation"] > 0
            assert row["goodput"] > 0

    def test_to_text_renders(self, result):
        text = result.to_text()
        assert "resilience" in text
        assert "C1.5" in text

    def test_unknown_config_rejected(self):
        with pytest.raises(ValidationError, match="unknown configurations"):
            run_resilience(config_names=("C1.5", "C9.9"), trials=1)

    def test_empty_rates_rejected(self):
        with pytest.raises(ValidationError):
            run_resilience(rates=(), trials=1)

    def test_empty_policies_rejected(self):
        with pytest.raises(ValidationError):
            run_resilience(policies=(), trials=1)

    def test_trials_validated(self):
        with pytest.raises(ValidationError):
            run_resilience(trials=0)


class TestRunSurrogateValidation:
    @pytest.fixture(scope="class")
    def validation(self):
        from repro.experiments.resilience import run_surrogate_validation

        return run_surrogate_validation(
            config_names=("C1.4", "C2.1"),
            rates=(0.02, 0.08),
            trials=2,
            n_steps=8,
        )

    def test_shape(self, validation):
        assert validation.experiment_id == "surrogate-validation"
        assert validation.columns == [
            "config",
            "rate",
            "inflation_surrogate",
            "inflation_des",
            "rel_error",
        ]
        assert len(validation.rows) == 2 * 2

    def test_inflations_sane(self, validation):
        for row in validation.rows:
            assert row["inflation_surrogate"] >= 1.0
            assert row["inflation_des"] > 0
            assert row["rel_error"] >= 0

    def test_unknown_config_rejected(self):
        from repro.experiments.resilience import run_surrogate_validation

        with pytest.raises(ValidationError, match="unknown configurations"):
            run_surrogate_validation(config_names=("C9.9",), trials=1)

    def test_empty_rates_rejected(self):
        from repro.experiments.resilience import run_surrogate_validation

        with pytest.raises(ValidationError):
            run_surrogate_validation(rates=(), trials=1)
