"""Sanity of the public API surface.

These tests protect downstream users: everything advertised in
``__all__`` must exist, and the quickstart from the README must run.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.components",
    "repro.components.kernels",
    "repro.components.md",
    "repro.configs",
    "repro.core",
    "repro.coschedule",
    "repro.des",
    "repro.dtl",
    "repro.experiments",
    "repro.faults",
    "repro.monitoring",
    "repro.platform",
    "repro.reschedule",
    "repro.runtime",
    "repro.scheduler",
    "repro.search",
    "repro.service",
    "repro.util",
    "repro.verify",
]


class TestApiSurface:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), f"{package} lacks __all__"
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_sorted(self, package):
        mod = importlib.import_module(package)
        assert list(mod.__all__) == sorted(mod.__all__), (
            f"{package}.__all__ is not sorted"
        )

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings_present(self, package):
        mod = importlib.import_module(package)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40

    def test_version(self):
        import repro

        assert repro.__version__


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import IndicatorStage, run_configuration, table2_config

        result = run_configuration(table2_config("C1.5"), n_steps=4)
        assert result.ensemble_makespan > 0
        for member in result.members:
            assert member.makespan > 0
            assert member.efficiency > 0
        stages = [
            IndicatorStage.USAGE,
            IndicatorStage.ALLOCATION,
            IndicatorStage.PROVISIONING,
        ]
        assert result.objective(stages) > 0

    def test_run_ensemble_docstring_example(self):
        from repro.runtime import run_ensemble
        from repro.runtime.placement import pack_members_per_node
        from repro.runtime.spec import EnsembleSpec, default_member

        spec = EnsembleSpec(
            "demo",
            (default_member("em1", n_steps=3),
             default_member("em2", n_steps=3)),
        )
        result = run_ensemble(spec, pack_members_per_node(spec))
        assert result.ensemble_makespan > 0
