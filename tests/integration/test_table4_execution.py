"""Integration: full executor runs of the Table 4 configuration set.

The paper declines to show traditional metrics for set 2 because they
are "not as straightforward ... on inferring from the metrics monitored
which configuration is the best" (§5.2) — most configurations cluster
tightly on makespan while the indicator separates them cleanly. These
tests codify both halves of that observation on our reproduction.
"""

import pytest

from repro.configs.base import build_spec
from repro.configs.table4 import table4
from repro.core.indicators import IndicatorStage
from repro.experiments.base import run_configuration

U = IndicatorStage.USAGE
A = IndicatorStage.ALLOCATION
P = IndicatorStage.PROVISIONING


@pytest.fixture(scope="module")
def results():
    return {
        c.name: run_configuration(c, n_steps=5, timing_noise=0.0)
        for c in table4()
    }


class TestSetTwoExecution:
    def test_all_configs_run_to_completion(self, results):
        for name, result in results.items():
            assert len(result.members) == 2
            for member in result.members:
                assert member.makespan > 0
                assert member.stages.num_couplings == 2

    def test_c28_shortest_makespan(self, results):
        spans = {n: r.ensemble_makespan for n, r in results.items()}
        best = min(spans, key=spans.get)
        assert best == "C2.8"

    def test_four_analyses_one_node_is_worst(self, results):
        """C2.1 and C2.6 put all four analyses on one node — the
        analysis-contention stragglers of set 2."""
        spans = {n: r.ensemble_makespan for n, r in results.items()}
        slowest_two = sorted(spans, key=spans.get)[-2:]
        assert set(slowest_two) == {"C2.1", "C2.6"}

    def test_makespans_cluster_but_indicator_separates(self, results):
        """The paper's motivation for the indicator on set 2: the
        mid-field configurations are nearly indistinguishable on
        makespan (within ~2%), while F(P^{U,A,P}) spreads them by more
        than 2x."""
        midfield = ["C2.2", "C2.3", "C2.4", "C2.5", "C2.7"]
        spans = [results[n].ensemble_makespan for n in midfield]
        assert max(spans) / min(spans) < 1.02
        objectives = [results[n].objective([U, A, P]) for n in midfield]
        assert max(objectives) / min(objectives) > 2.0

    def test_indicator_ranks_c28_first(self, results):
        objectives = {
            n: r.objective([U, A, P]) for n, r in results.items()
        }
        assert max(objectives, key=objectives.get) == "C2.8"

    def test_full_nodes_show_elevated_contention(self, results):
        """C2.6's analysis node hosts four 8-core analyses: their miss
        ratios exceed the solo profile by far."""
        result = results["C2.6"]
        for name, cm in result.component_metrics.items():
            if ".ana" in name:
                assert cm.llc_miss_ratio > 0.5  # solo is 0.25

    def test_sims_sharing_show_moderate_contention(self, results):
        result = results["C2.6"]  # sims share n0
        for name, cm in result.component_metrics.items():
            if ".sim" in name:
                assert 0.1 < cm.llc_miss_ratio < 0.4
