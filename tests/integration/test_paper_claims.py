"""Integration tests asserting the paper's qualitative claims.

Every claim in the paper's evaluation narrative is pinned here, each
with a reference to the text it reproduces. These run the full pipeline
(configs -> executor -> traces -> metrics -> indicators -> F) at the
paper's trial protocol but a reduced step count (steady state is
reached within a few steps; stage times are step-invariant without
noise).
"""

import pytest

from repro.experiments.fig3 import max_miss_ratio, mean_miss_ratio, run_fig3
from repro.experiments.fig4 import (
    best_member_makespan,
    run_fig4,
    worst_member_makespan,
)
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig7 import heuristic_choice, run_fig7
from repro.experiments.fig8 import ranking, run_fig8
from repro.experiments.fig9 import run_fig9

SETTINGS = dict(trials=3, n_steps=8, timing_noise=0.02)
TWO_MEMBER = ["C1.1", "C1.2", "C1.3", "C1.4", "C1.5"]


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(**SETTINGS)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(**SETTINGS)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(**SETTINGS)


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(**SETTINGS)


@pytest.fixture(scope="module")
def fig9():
    return run_fig9(**SETTINGS)


class TestFigure3Claims:
    def test_colocation_raises_miss_ratio_over_cf(self, fig3):
        """§2.3: 'Higher LLC miss ratios ... capture the cache misses in
        Cc, and C1.1 to C1.5 due to resource contention'."""
        baseline = mean_miss_ratio(fig3, "Cf")
        for config in ["Cc"] + TWO_MEMBER:
            assert mean_miss_ratio(fig3, config) > baseline

    def test_analysis_colocation_worse_than_simulation_colocation(self, fig3):
        """§2.3: 'co-locations of the analyses, i.e. C1.1 and C1.4,
        result in higher cache misses than the co-location of the
        simulations, i.e. C1.2'."""
        assert mean_miss_ratio(fig3, "C1.1") > mean_miss_ratio(fig3, "C1.2")
        assert mean_miss_ratio(fig3, "C1.4") > mean_miss_ratio(fig3, "C1.2")

    def test_heterogeneous_colocation_has_highest_miss_ratios(self, fig3):
        """§2.3: 'The co-location of heterogeneous tasks ... lead to
        higher miss rates in C1.3 and C1.5 compared to C1.1, C1.2, and
        C1.4'."""
        het_peak = min(max_miss_ratio(fig3, "C1.3"), max_miss_ratio(fig3, "C1.5"))
        homo_peak = max(
            max_miss_ratio(fig3, c) for c in ("C1.1", "C1.2", "C1.4")
        )
        assert het_peak > homo_peak

    def test_analyses_are_more_memory_intensive(self, fig3):
        """§2.3: 'analyses are more memory-intensive than simulations'."""
        for row in fig3.rows:
            if ".ana" in row["component"]:
                sim_row = fig3.row_for(
                    "component", row["component"].split(".")[0] + ".sim"
                )
                assert row["memory_intensity"] > sim_row["memory_intensity"]


class TestFigure4And5Claims:
    def test_c15_shortest_member_makespan(self, fig4):
        """§2.3: 'C1.5 yields the shortest member makespan among all
        configurations'."""
        c15 = worst_member_makespan(fig4, "C1.5")
        for other in ("C1.1", "C1.2", "C1.4"):
            assert c15 < best_member_makespan(fig4, other)
        # C1.3's co-located member matches C1.5; its split member is slower
        assert c15 <= worst_member_makespan(fig4, "C1.3") * 1.001

    def test_c15_shortest_ensemble_makespan(self, fig5):
        """Figure 5: C1.5 wins at the ensemble level too."""
        spans = {
            row["configuration"]: row["ensemble_makespan"]
            for row in fig5.rows
        }
        for other in TWO_MEMBER[:-1]:
            assert spans["C1.5"] < spans[other]

    def test_analysis_contention_hurts_makespan_most(self, fig4):
        """§2.3: contention from co-located analyses inflates member
        makespan (C1.1/C1.4 are the stragglers)."""
        for bad in ("C1.1", "C1.4"):
            assert best_member_makespan(fig4, bad) > 1.1 * worst_member_makespan(
                fig4, "C1.5"
            )


class TestFigure7Claims:
    def test_small_core_counts_are_idle_simulation(self):
        """§3.4: 'The analysis step when using 1 to 4 cores takes longer
        than the simulation step'."""
        r = run_fig7()
        for cores in (1, 2, 4):
            row = r.row_for("analysis_cores", cores)
            assert row["analysis_active"] > row["simulation_active"]
            assert not row["feasible"]

    def test_eq4_satisfied_from_8_cores(self):
        """§3.4: 'The inequality in Equation (4) is satisfied once the
        analysis uses between 8 and 32 cores'."""
        r = run_fig7()
        for cores in (8, 16, 32):
            assert r.row_for("analysis_cores", cores)["feasible"]

    def test_heuristic_selects_8_cores(self):
        """§3.4: 'we decide to assign 8 cores to each analysis, which
        results in the highest computational efficiency'."""
        assert heuristic_choice().cores == 8

    def test_sigma_minimized_in_feasible_region(self):
        r = run_fig7()
        sigmas = {row["analysis_cores"]: row["sigma"] for row in r.rows}
        min_sigma = min(sigmas.values())
        for cores in (8, 16, 32):
            assert sigmas[cores] == pytest.approx(min_sigma)


class TestFigure8Claims:
    def test_up_cannot_separate_c14_from_c15(self, fig8):
        """§5.2: 'P^{U,P} is not able to differentiate the performance
        of C1.4 from C1.5'."""
        c14 = fig8.row_for("configuration", "C1.4")["U,P"]
        c15 = fig8.row_for("configuration", "C1.5")["U,P"]
        assert abs(c14 - c15) / max(c14, c15) < 0.10

    def test_ua_separates_c14_from_c15(self, fig8):
        """...while P^{U,A} separates them decisively (CP 1/2 vs 1)."""
        c14 = fig8.row_for("configuration", "C1.4")["U,A"]
        c15 = fig8.row_for("configuration", "C1.5")["U,A"]
        assert c15 > 1.5 * c14

    def test_final_stage_ranking(self, fig8):
        """§5.2: 'the performance of C1.4 is degraded to lower than
        C1.5, but higher than C1.1, C1.2, C1.3' and 'our performance
        indicator confirms that C1.5 is the best choice'."""
        order = ranking(fig8, "U,A,P")
        assert order[0] == "C1.5"
        assert order[1] == "C1.4"
        assert set(order[2:]) == {"C1.1", "C1.2", "C1.3"}


class TestFigure9Claims:
    def test_up_groups_by_node_count(self, fig9):
        """§5.2: 'P^{U,P} separates the set of configurations in two
        groups defined by the number of compute nodes' (C2.6-C2.8 use 2,
        the rest 3)."""
        two_node = {"C2.6", "C2.7", "C2.8"}
        values = {
            row["configuration"]: row["U,P"] for row in fig9.rows
        }
        worst_two_node = min(values[c] for c in two_node)
        best_three_node = max(
            v for c, v in values.items() if c not in two_node
        )
        assert worst_two_node > best_three_node

    def test_c28_wins_final_stage(self, fig9):
        """§5.2: 'the chosen configuration C2.8 is also the optimal
        configuration in terms of co-location'."""
        values = {
            row["configuration"]: row["U,A,P"] for row in fig9.rows
        }
        best = max(values, key=values.get)
        assert best == "C2.8"

    def test_ua_isolates_c28(self, fig9):
        """§5.2: 'when adding layer A, we first isolate C2.8 from the
        other configurations'."""
        values = {row["configuration"]: row["U,A"] for row in fig9.rows}
        c28 = values.pop("C2.8")
        assert c28 > max(values.values())
