"""End-to-end real-data pipeline: MD frames -> chunks -> DTL -> analysis.

This exercises the full runtime code path with *real* computation: the
mini-MD engine produces frames, the DTL plugin marshals them to bytes
and back through the in-memory staging store (protocol enforced), and
the collective-variable analyzer computes the paper's spectral CV on
the staged payloads — the in-process equivalent of the paper's
GROMACS + DIMES + eigenvalue-analysis stack.
"""

import numpy as np
import pytest

from repro.components.kernels.cv import CollectiveVariableAnalyzer
from repro.components.md.engine import MDEngine
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.plugin import DTLPlugin
from repro.util.errors import ProtocolError


@pytest.fixture
def pipeline():
    dtl = InMemoryStagingDTL()
    producer = DTLPlugin(dtl, component="sim", node=0)
    consumer = DTLPlugin(dtl, component="ana", node=0)
    engine = MDEngine(natoms=108, stride=5, seed=7)
    engine.equilibrate(30)
    analyzer = CollectiveVariableAnalyzer()
    return dtl, producer, consumer, engine, analyzer


class TestInSituLoop:
    def test_full_coupled_loop(self, pipeline):
        dtl, producer, consumer, engine, analyzer = pipeline
        n_steps = 5
        write_costs, read_costs = [], []
        for frame in engine.frames(n_steps):
            receipt = producer.stage_out(
                frame.positions,
                {"box_length": frame.box_length, "md_step": frame.md_step},
            )
            write_costs.append(receipt.cost.total)
            payload, meta, read_receipt = consumer.stage_in(
                "sim", receipt.key.step
            )
            read_costs.append(read_receipt.cost.total)
            analyzer.analyze(payload, meta["box_length"])

        assert len(analyzer.history) == n_steps
        assert (analyzer.trajectory > 0).all()
        assert dtl.live_slots == 0  # every chunk consumed
        assert dtl.reads_served_total == n_steps
        assert all(c > 0 for c in write_costs + read_costs)

    def test_payload_survives_marshaling_bit_exact(self, pipeline):
        _, producer, consumer, engine, _ = pipeline
        frame = next(engine.frames(1))
        producer.stage_out(frame.positions)
        payload, _, _ = consumer.stage_in("sim", 0)
        assert payload.dtype == np.float32
        assert np.array_equal(payload, frame.positions)

    def test_skipping_a_read_violates_protocol(self, pipeline):
        _, producer, _, engine, _ = pipeline
        frames = list(engine.frames(2))
        producer.stage_out(frames[0].positions)
        with pytest.raises(ProtocolError):
            producer.stage_out(frames[1].positions)

    def test_two_consumers_local_and_remote(self, pipeline):
        dtl, producer, _, engine, _ = pipeline
        local = DTLPlugin(dtl, component="ana-local", node=0)
        remote = DTLPlugin(dtl, component="ana-remote", node=3)
        frame = next(engine.frames(1))
        producer.stage_out(frame.positions, expected_consumers=2)
        p_local, _, r_local = local.stage_in("sim", 0)
        p_remote, _, r_remote = remote.stage_in("sim", 0)
        assert np.array_equal(p_local, p_remote)
        # DIMES locality: the co-located read is cheaper and tax-free
        assert r_local.cost.total < r_remote.cost.total
        assert r_local.cost.producer_overhead == 0.0
        assert r_remote.cost.producer_overhead > 0.0

    def test_cv_is_deterministic_for_fixed_seed(self):
        def run():
            engine = MDEngine(natoms=108, stride=5, seed=11)
            engine.equilibrate(20)
            dtl = InMemoryStagingDTL()
            w = DTLPlugin(dtl, "sim", 0)
            r = DTLPlugin(dtl, "ana", 0)
            analyzer = CollectiveVariableAnalyzer()
            for frame in engine.frames(3):
                receipt = w.stage_out(
                    frame.positions, {"box": frame.box_length}
                )
                payload, meta, _ = r.stage_in("sim", receipt.key.step)
                analyzer.analyze(payload, meta["box"])
            return analyzer.trajectory

        assert np.array_equal(run(), run())
