"""Seed determinism end to end: same seed, byte-identical behaviour.

Determinism is what the golden store, the fault tier of the oracle,
and every "regressions reproduce" debugging session all lean on, so it
gets its own integration suite: the DES trace, the fault schedule, the
distilled results, and the cached search must all replay exactly.
"""

import json

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.faults.models import FaultKind, RandomFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.monitoring.traceio import tracer_to_dict
from repro.runtime.runner import run_ensemble
from repro.search.cache import StageCache
from repro.search.engine import find_best_placement
from repro.verify.goldens import canonical_json


def _c15(n_steps=6):
    config = TABLE2_CONFIGS["C1.5"]
    return build_spec(config, n_steps=n_steps), config.placement()


def _trace_bytes(result):
    return json.dumps(tracer_to_dict(result.tracer), sort_keys=True)


class TestTraceDeterminism:
    def test_noisy_runs_replay_byte_identically(self):
        spec, placement = _c15()
        a = run_ensemble(spec, placement, seed=13, timing_noise=0.05)
        b = run_ensemble(spec, placement, seed=13, timing_noise=0.05)
        assert _trace_bytes(a) == _trace_bytes(b)
        assert a.ensemble_makespan == b.ensemble_makespan
        assert a.member_makespans == b.member_makespans

    def test_different_seeds_diverge(self):
        spec, placement = _c15()
        a = run_ensemble(spec, placement, seed=13, timing_noise=0.05)
        b = run_ensemble(spec, placement, seed=14, timing_noise=0.05)
        assert _trace_bytes(a) != _trace_bytes(b)

    def test_faulted_runs_replay_byte_identically(self):
        spec, placement = _c15()
        kwargs = dict(
            seed=5,
            timing_noise=0.02,
            failure_model=RandomFailureModel(
                rate=0.2,
                kinds=(FaultKind.CRASH, FaultKind.STRAGGLER),
                seed=9,
            ),
            recovery=RetryBackoffPolicy(),
        )
        a = run_ensemble(spec, placement, **kwargs)
        b = run_ensemble(spec, placement, **kwargs)
        assert _trace_bytes(a) == _trace_bytes(b)
        assert canonical_json(
            {"log": [repr(r) for r in a.fault_log.records]}
        ) == canonical_json({"log": [repr(r) for r in b.fault_log.records]})
        assert len(a.fault_log) == len(b.fault_log)


class TestScheduleDeterminism:
    def test_fault_schedule_replays_exactly(self):
        spec, _ = _c15()
        events = [
            RandomFailureModel(rate=0.3, seed=21).build_schedule(spec).events
            for _ in range(2)
        ]
        assert events[0] == events[1]

    def test_schedule_order_is_canonical(self):
        spec, _ = _c15()
        schedule = RandomFailureModel(rate=0.3, seed=21).build_schedule(spec)
        keys = [
            (e.component, e.step, e.stage, e.kind.value)
            for e in schedule.events
        ]
        assert keys == sorted(keys)


class TestSearchDeterminism:
    def test_cached_search_replays_exactly(self):
        spec, _ = _c15(n_steps=4)
        cache = StageCache(None, None)
        first, n_first = find_best_placement(spec, 4, 32, cache=cache)
        # a warm cache must not change the winner or any score float
        second, n_second = find_best_placement(spec, 4, 32, cache=cache)
        cold, n_cold = find_best_placement(spec, 4, 32)
        assert n_first == n_second == n_cold
        for other in (second, cold):
            assert other.placement == first.placement
            assert other.objective == first.objective
            assert other.ensemble_makespan == first.ensemble_makespan
            assert other.member_indicators == first.member_indicators

    def test_verified_run_replays_like_unverified(self):
        spec, placement = _c15()
        plain = run_ensemble(spec, placement, seed=3, timing_noise=0.04)
        verified = run_ensemble(
            spec, placement, seed=3, timing_noise=0.04, verify=True
        )
        assert _trace_bytes(plain) == _trace_bytes(verified)
