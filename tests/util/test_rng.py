"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.util.rng import RandomSource, derive_replica_seed, spawn_rngs


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42).generator.random(10)
        b = RandomSource(42).generator.random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomSource(1).generator.random(10)
        b = RandomSource(2).generator.random(10)
        assert not np.array_equal(a, b)

    def test_spawned_children_are_independent(self):
        root = RandomSource(0)
        a = root.spawn("a").generator.random(10)
        b = root.spawn("b").generator.random(10)
        assert not np.array_equal(a, b)

    def test_spawn_is_reproducible_across_roots(self):
        a = RandomSource(9).spawn("x").generator.random(5)
        b = RandomSource(9).spawn("x").generator.random(5)
        assert np.array_equal(a, b)

    def test_spawn_names_compose(self):
        child = RandomSource(0, name="root").spawn("timing")
        assert child.name == "root/timing"

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            RandomSource(-1)

    def test_bool_seed_rejected(self):
        with pytest.raises(ValidationError):
            RandomSource(True)

    def test_float_seed_rejected(self):
        with pytest.raises(ValidationError):
            RandomSource(1.5)

    def test_none_seed_allowed(self):
        RandomSource(None).generator.random()


class TestUniformJitter:
    def test_zero_width_returns_base_exactly(self):
        src = RandomSource(3)
        before = src.generator.bit_generator.state["state"]["state"]
        assert src.uniform_jitter(10.0, 0.0) == 10.0
        after = src.generator.bit_generator.state["state"]["state"]
        assert before == after  # no randomness consumed

    def test_jitter_stays_within_bounds(self):
        src = RandomSource(4)
        for _ in range(200):
            v = src.uniform_jitter(10.0, 0.05)
            assert 9.5 <= v <= 10.5

    def test_negative_width_rejected(self):
        with pytest.raises(ValidationError):
            RandomSource(0).uniform_jitter(1.0, -0.1)


class TestSpawnRngs:
    def test_returns_one_source_per_name(self):
        rngs = spawn_rngs(5, ["a", "b", "c"])
        assert set(rngs) == {"a", "b", "c"}
        assert all(isinstance(v, RandomSource) for v in rngs.values())

    def test_deterministic(self):
        a = spawn_rngs(5, ["x", "y"])
        b = spawn_rngs(5, ["x", "y"])
        assert np.array_equal(
            a["y"].generator.random(5), b["y"].generator.random(5)
        )


class TestDeriveReplicaSeed:
    def test_empty_label_is_literal_sum(self):
        """The historical serial scheme — and the CRN pairing scheme:
        same base_seed + replica everywhere means shared fault draws."""
        assert derive_replica_seed(10, 0) == 10
        assert derive_replica_seed(10, 3) == 13
        assert derive_replica_seed(0, 0) == 0

    def test_label_offset_is_deterministic(self):
        a = derive_replica_seed(10, 3, label="c1")
        assert derive_replica_seed(10, 3, label="c1") == a
        assert a != derive_replica_seed(10, 3)

    def test_distinct_labels_decorrelate(self):
        seeds = {
            derive_replica_seed(0, 0, label=name)
            for name in ("c0", "c1", "c2", "c3")
        }
        assert len(seeds) == 4

    def test_labelled_seeds_stay_non_negative(self):
        assert derive_replica_seed(0, 0, label="anything") >= 0

    def test_bool_and_negative_rejected(self):
        with pytest.raises(ValidationError):
            derive_replica_seed(True, 0)
        with pytest.raises(ValidationError):
            derive_replica_seed(0, True)
        with pytest.raises(ValidationError):
            derive_replica_seed(-1, 0)
        with pytest.raises(ValidationError):
            derive_replica_seed(0, -2)
        with pytest.raises(ValidationError):
            derive_replica_seed(1.5, 0)
