"""Tests for repro.util.validation and the error hierarchy."""

import math

import pytest

from repro.util.errors import (
    ConfigurationError,
    DTLError,
    PlacementError,
    ProtocolError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.util.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_positive_int,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ValidationError,
            ConfigurationError,
            PlacementError,
            SimulationError,
            ProtocolError,
            DTLError,
        ):
            assert issubclass(exc, ReproError)

    def test_validation_error_is_a_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_placement_error_is_a_configuration_error(self):
        assert issubclass(PlacementError, ConfigurationError)

    def test_protocol_error_is_a_simulation_error(self):
        assert issubclass(ProtocolError, SimulationError)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="x"):
            require_positive("x", bad)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValidationError):
            require_positive("x", bad)

    def test_rejects_non_numbers(self):
        with pytest.raises(ValidationError):
            require_positive("x", "3")
        with pytest.raises(ValidationError):
            require_positive("x", True)


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            require_non_negative("x", -1e-9)


class TestRequirePositiveInt:
    def test_accepts_int(self):
        assert require_positive_int("n", 3) == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.0, "2", True, None])
    def test_rejects_non_positive_ints(self, bad):
        with pytest.raises(ValidationError):
            require_positive_int("n", bad)


class TestRequireInRange:
    def test_inclusive_bounds_by_default(self):
        assert require_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert require_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            require_in_range("x", 0.0, 0.0, 1.0, inclusive_low=False)
        with pytest.raises(ValidationError):
            require_in_range("x", 1.0, 0.0, 1.0, inclusive_high=False)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            require_in_range("x", 1.5, 0.0, 1.0)
        with pytest.raises(ValidationError):
            require_in_range("x", -0.5, 0.0, 1.0)

    def test_error_message_names_argument_and_bounds(self):
        with pytest.raises(ValidationError, match=r"frac must be in \[0, 1\]"):
            require_in_range("frac", 2.0, 0, 1)
