"""Tests for repro.util.stats."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.errors import ValidationError
from repro.util.stats import (
    RunningStats,
    population_std,
    summarize,
    trimmed_mean,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestPopulationStd:
    def test_constant_sample_has_zero_std(self):
        assert population_std([2.0, 2.0, 2.0]) == 0.0

    def test_known_value(self):
        # population std of [1, 3] is 1 (mean 2, deviations +-1)
        assert population_std([1.0, 3.0]) == pytest.approx(1.0)

    def test_divides_by_n_not_n_minus_1(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert population_std(values) == pytest.approx(
            float(np.std(values))  # numpy default is population std
        )

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            population_std([])

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_always_non_negative(self, values):
        assert population_std(values) >= 0.0

    @given(st.lists(finite_floats, min_size=1, max_size=50), finite_floats)
    def test_translation_invariant(self, values, shift):
        a = population_std(values)
        b = population_std([v + shift for v in values])
        assert a == pytest.approx(b, abs=1e-6 * max(1.0, abs(shift)))


class TestTrimmedMean:
    def test_no_trim_is_plain_mean(self):
        assert trimmed_mean([1.0, 2.0, 3.0], 0.0) == pytest.approx(2.0)

    def test_outlier_is_discarded(self):
        values = [10.0] * 18 + [1000.0, 0.001]
        assert trimmed_mean(values, 0.1) == pytest.approx(10.0)

    def test_small_samples_not_trimmed(self):
        assert trimmed_mean([1.0, 100.0], 0.25) == pytest.approx(50.5)

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            trimmed_mean([])

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValidationError):
            trimmed_mean([1.0], 0.5)
        with pytest.raises(ValidationError):
            trimmed_mean([1.0], -0.1)

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_bounded_by_min_and_max(self, values):
        tm = trimmed_mean(values, 0.2)
        eps = 1e-9 * max(1.0, abs(min(values)), abs(max(values)))
        assert min(values) - eps <= tm <= max(values) + eps


class TestRunningStats:
    def test_matches_batch_statistics(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=500)
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(float(values.mean()))
        assert rs.std == pytest.approx(float(values.std()), rel=1e-9)
        assert rs.min == pytest.approx(float(values.min()))
        assert rs.max == pytest.approx(float(values.max()))
        assert rs.count == 500

    def test_empty_accumulator_raises(self):
        rs = RunningStats()
        with pytest.raises(ValidationError):
            _ = rs.mean
        with pytest.raises(ValidationError):
            _ = rs.variance
        with pytest.raises(ValidationError):
            _ = rs.min

    def test_single_observation(self):
        rs = RunningStats()
        rs.add(5.0)
        assert rs.mean == 5.0
        assert rs.variance == 0.0


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.median == pytest.approx(2.0)
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.std == pytest.approx(population_std([1.0, 2.0, 3.0]))

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            summarize([])
