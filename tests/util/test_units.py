"""Tests for repro.util.units."""

import pytest

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    MILLISECONDS,
    MICROSECONDS,
    MINUTES,
    SECONDS,
    format_bytes,
    format_time,
)


class TestConstants:
    def test_byte_prefixes_are_powers_of_1024(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_time_constants_convert_to_seconds(self):
        assert SECONDS == 1.0
        assert MILLISECONDS == 1e-3
        assert MICROSECONDS == 1e-6
        assert MINUTES == 60.0


class TestFormatBytes:
    def test_small_counts_render_as_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_mebibytes(self):
        assert format_bytes(3 * MIB) == "3.00 MiB"

    def test_gibibytes(self):
        assert format_bytes(2 * GIB) == "2.00 GiB"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_negative_is_mirrored(self):
        assert format_bytes(-3 * MIB) == "-3.00 MiB"

    def test_boundary_just_below_prefix(self):
        assert format_bytes(KIB - 1) == "1023 B"


class TestFormatTime:
    def test_zero(self):
        assert format_time(0) == "0 s"

    def test_milliseconds(self):
        assert format_time(0.0035) == "3.50 ms"

    def test_seconds(self):
        assert format_time(2.5) == "2.50 s"

    def test_minutes(self):
        assert format_time(90) == "1.50 min"

    def test_microseconds(self):
        assert format_time(42e-6) == "42.00 us"

    def test_negative_is_mirrored(self):
        assert format_time(-2.5) == "-2.50 s"

    def test_sub_nanosecond_falls_back_to_seconds(self):
        out = format_time(1e-12)
        assert out.endswith(" s")
