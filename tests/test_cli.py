"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_configurations(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Cf", "Cc", "C1.5", "C2.8"):
            assert name in out


class TestRun:
    def test_runs_configuration(self, capsys):
        assert main(["run", "C1.5", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "ensemble makespan" in out
        assert "F(P^{U,A,P})" in out
        assert "em1.sim" in out

    def test_unknown_configuration_fails(self, capsys):
        assert main(["run", "C9.9"]) == 2
        assert "unknown configuration" in capsys.readouterr().err

    def test_seed_and_noise_flags(self, capsys):
        assert (
            main(["run", "Cc", "--steps", "4", "--seed", "3",
                  "--noise", "0.05"]) == 0
        )


class TestSweep:
    def test_prints_sweep_table(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "analysis_cores" in out
        assert "heuristic selects 8 cores" in out

    def test_custom_settings(self, capsys):
        assert main(["sweep", "--sim-cores", "8", "--stride", "400"]) == 0

    def test_invalid_settings_exit_one(self, capsys):
        assert main(["sweep", "--sim-cores", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestFaults:
    def test_injected_run_prints_report(self, capsys):
        assert (
            main(["faults", "C1.5", "--rate", "0.2", "--steps", "5",
                  "--policy", "retry"]) == 0
        )
        out = capsys.readouterr().out
        assert "fault log" in out
        assert "goodput" in out
        assert "F(P^{U,A,P})" in out

    def test_experiment_mode(self, capsys):
        assert (
            main(["faults", "--experiment", "--steps", "3",
                  "--trials", "1"]) == 0
        )
        out = capsys.readouterr().out
        assert "resilience" in out
        assert "rank" in out

    def test_unknown_configuration_fails(self, capsys):
        assert main(["faults", "C9.9"]) == 2
        assert "unknown configuration" in capsys.readouterr().err

    def test_missing_configuration_fails(self, capsys):
        assert main(["faults"]) == 2
        assert "required unless --experiment" in capsys.readouterr().err

    def test_unknown_kind_fails(self, capsys):
        assert main(["faults", "C1.5", "--kinds", "crash,gremlin"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "C1.5", "--policy", "pray"])
        assert exc.value.code == 2


class TestPlan:
    def test_plans_and_prints(self, capsys):
        assert (
            main(["plan", "--members", "2", "--analyses", "1",
                  "--nodes", "2", "--steps", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "F(P^{U,A,P})" in out

    def test_impossible_budget_reports_error(self, capsys):
        assert (
            main(["plan", "--members", "4", "--analyses", "2",
                  "--nodes", "1"]) == 1
        )
        assert "error:" in capsys.readouterr().err


class TestPlanJson:
    def test_json_output_is_wire_format(self, capsys):
        import json

        assert (
            main(["plan", "--members", "2", "--analyses", "1",
                  "--nodes", "2", "--steps", "4", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["node_budget"] == 2
        assert len(payload["spec"]["members"]) == 2

    def test_json_deserializes_and_rescores_exactly(self, capsys):
        import json

        from repro.scheduler.objectives import score_placement
        from repro.service.schemas import (
            placement_from_dict,
            score_from_dict,
            spec_from_dict,
        )

        assert (
            main(["plan", "--members", "2", "--analyses", "1",
                  "--nodes", "2", "--steps", "4", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        spec = spec_from_dict(payload["spec"])
        placement = placement_from_dict(payload["placement"])
        reported = score_from_dict(payload["score"])
        rescored = score_placement(spec, placement)
        assert rescored.objective == reported.objective
        assert rescored.ensemble_makespan == reported.ensemble_makespan


class TestServe:
    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.workers == 2
        assert args.cache_entries == 1024
        assert args.job_timeout is None

    def test_verify_service_flag(self, capsys):
        assert main(["verify", "C1.1", "--steps", "4", "--service"]) == 0
        assert "ok" in capsys.readouterr().out


class TestFigures:
    def test_fast_figures(self, capsys):
        assert main(["figures", "--fast"]) == 0
        out = capsys.readouterr().out
        for artifact in ("fig3", "fig4", "fig5", "fig7", "fig8", "fig9",
                         "headline", "ablation-contention"):
            assert artifact in out


class TestCompare:
    def test_default_set(self, capsys):
        assert main(["compare", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "F(U,A,P)" in out
        # C1.5 ranked first
        first_row = out.splitlines()[1]
        assert first_row.startswith("C1.5")

    def test_explicit_configs(self, capsys):
        assert main(["compare", "C2.6", "C2.8", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[1].startswith("C2.8")

    def test_unknown_config_rejected(self, capsys):
        assert main(["compare", "C7.7"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_mixed_shapes_rejected(self, capsys):
        assert main(["compare", "Cf", "C1.5"]) == 2
        assert "share member" in capsys.readouterr().err


class TestFiguresOutput:
    def test_json_artifacts_written(self, capsys, tmp_path):
        outdir = tmp_path / "artifacts"
        assert main(["figures", "--fast", "--output", str(outdir)]) == 0
        files = {p.name for p in outdir.glob("*.json")}
        assert "fig8.json" in files
        assert "headline.json" in files
        from repro.experiments.base import ExperimentResult

        loaded = ExperimentResult.load(outdir / "fig8.json")
        assert loaded.experiment_id == "fig8"
