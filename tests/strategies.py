"""Shared hypothesis strategies for the whole test suite.

Every suite used to grow its own generators for the same domain
objects (stage timings in ``tests/core``, random ensembles in
``tests/scheduler``, grid specs in ``tests/search``, ...). They live
here now, in one library that encodes the *validity envelope* of each
domain type once:

- :data:`durations` / :data:`node_sets` — scalar building blocks;
- :func:`member_stages` / :func:`placement_sets` — the closed-form
  model's inputs (Eqs. 1-3, 5-9);
- :func:`ensembles` — small random :class:`EnsembleSpec` instances
  with varied core demands, for scheduling-policy properties;
- :func:`des_ensembles` / :func:`des_placements` — single-member
  specs with randomized kernel parameters plus feasible two-node
  placements, for executor cross-validation;
- :func:`search_grids` — ``(spec, num_nodes, cores_per_node)`` tuples
  spanning the grid the paper's evaluation section enumerates;
- :func:`fault_events` / :func:`fault_schedules` — faults honouring
  the per-kind magnitude envelopes ``FaultEvent.__post_init__``
  enforces (crash fraction in (0, 1], straggler factor > 1, ...);
- :func:`ensemble_stream` / :func:`cluster_partition` — arrival-time
  ordered co-scheduling request streams and valid node partitions,
  for the cluster-level admission/allocation properties.

``common_settings`` is the profile property tests that execute the
DES (or other slow paths) should apply; pure-arithmetic properties can
afford more examples and usually pass an explicit ``max_examples``.
"""

from hypothesis import HealthCheck, settings, strategies as st

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.core.indicators import PlacementSets
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.coschedule.requests import EnsembleRequest
from repro.faults.models import FAULT_STAGES, FaultEvent, FaultKind, FaultSchedule
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec, default_member

#: Settings profile for properties that run the DES or another slow
#: path: fewer examples, no deadline (wall time varies with load).
common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Positive stage durations in seconds, away from denormal territory.
durations = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False)

#: Non-empty node-index sets for :class:`PlacementSets`.
node_sets = st.sets(
    st.integers(min_value=0, max_value=7), min_size=1, max_size=4
).map(frozenset)


@st.composite
def member_stages(draw, max_analyses=4):
    """A :class:`MemberStages` with 1..``max_analyses`` couplings."""
    sim = SimulationStages(draw(durations), draw(durations))
    k = draw(st.integers(min_value=1, max_value=max_analyses))
    analyses = tuple(
        AnalysisStages(draw(durations), draw(durations)) for _ in range(k)
    )
    return MemberStages(sim, analyses)


@st.composite
def placement_sets(draw, k=None):
    """A :class:`PlacementSets` with ``k`` (or 1..4 random) couplings."""
    sim_nodes = draw(node_sets)
    count = k if k is not None else draw(st.integers(min_value=1, max_value=4))
    analyses = tuple(draw(node_sets) for _ in range(count))
    return PlacementSets(sim_nodes, analyses)


@st.composite
def ensembles(draw):
    """Random small ensembles with varied core demands."""
    n_members = draw(st.integers(min_value=1, max_value=3))
    members = []
    for i in range(n_members):
        sim_cores = draw(st.sampled_from([8, 16]))
        k = draw(st.integers(min_value=1, max_value=2))
        ana_cores = draw(st.sampled_from([4, 8]))
        sim = MDSimulationModel(f"em{i}.sim", cores=sim_cores)
        analyses = tuple(
            EigenAnalysisModel(f"em{i}.ana{j}", cores=ana_cores)
            for j in range(k)
        )
        members.append(MemberSpec(f"em{i}", sim, analyses, n_steps=2))
    return EnsembleSpec("prop", tuple(members))


@st.composite
def des_ensembles(draw):
    """Single-member specs with randomized kernel parameters.

    Paired with :func:`des_placements` for executor-vs-Eqs. 1-2
    cross-validation: the kernels vary enough to exercise both branches
    of Eq. 1's max while every draw stays feasible on two 32-core
    nodes.
    """
    sim = MDSimulationModel(
        "p.sim",
        cores=draw(st.sampled_from([8, 16])),
        natoms=draw(st.integers(min_value=50_000, max_value=500_000)),
        stride=draw(st.integers(min_value=100, max_value=1600)),
        seconds_per_atom_step=draw(st.floats(min_value=1e-7, max_value=2e-6)),
        serial_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
    )
    ana = EigenAnalysisModel(
        "p.ana",
        cores=draw(st.sampled_from([4, 8, 16])),
        single_core_time=draw(st.floats(min_value=5.0, max_value=200.0)),
        serial_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
    )
    n_steps = draw(st.integers(min_value=2, max_value=6))
    return EnsembleSpec("prop", (MemberSpec("p", sim, (ana,), n_steps=n_steps),))


@st.composite
def des_placements(draw):
    """Feasible two-node placements for :func:`des_ensembles` draws."""
    sim_node = draw(st.integers(min_value=0, max_value=1))
    ana_node = draw(st.integers(min_value=0, max_value=1))
    return EnsemblePlacement(2, (MemberPlacement(sim_node, (ana_node,)),))


@st.composite
def search_grids(draw):
    """``(spec, num_nodes, cores_per_node)`` over the evaluation grid.

    Spans the (N, K, M, node) combinations the canonical-enumeration
    contract is property-tested on — small enough that the reference
    product-then-dedup stream stays tractable.
    """
    num_members = draw(st.integers(min_value=1, max_value=3))
    num_analyses = draw(st.integers(min_value=1, max_value=2))
    num_nodes = draw(st.integers(min_value=1, max_value=4))
    cores_per_node = draw(st.sampled_from([24, 32, 48]))
    spec = EnsembleSpec(
        f"grid-{num_members}-{num_analyses}",
        tuple(
            default_member(f"em{i}", num_analyses=num_analyses, n_steps=4)
            for i in range(num_members)
        ),
    )
    return spec, num_nodes, cores_per_node


@st.composite
def ensemble_stream(draw, max_requests=4, total_nodes=4):
    """An arrival-time-ordered co-scheduling request stream.

    Every request is feasible on a ``total_nodes`` x 32-core cluster
    (members demand at most 16+8 cores), names are unique, deadlines
    are either absent or generous-but-finite, and arrival times are
    non-decreasing — the envelope ``validate_stream`` accepts.
    """
    n_requests = draw(st.integers(min_value=1, max_value=max_requests))
    arrivals = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
                min_size=n_requests,
                max_size=n_requests,
            )
        )
    )
    requests = []
    for i in range(n_requests):
        n_members = draw(st.integers(min_value=1, max_value=2))
        spec = EnsembleSpec(
            f"stream{i}",
            tuple(
                default_member(
                    f"stream{i}-m{j}",
                    num_analyses=1,
                    n_steps=draw(st.integers(min_value=2, max_value=8)),
                    sim_cores=16,
                    ana_cores=8,
                )
                for j in range(n_members)
            ),
        )
        requests.append(
            EnsembleRequest(
                name=f"stream{i}",
                spec=spec,
                arrival_time=arrivals[i],
                deadline=draw(
                    st.one_of(
                        st.none(),
                        st.floats(
                            min_value=50_000.0,
                            max_value=500_000.0,
                            allow_nan=False,
                        ),
                    )
                ),
                priority=draw(st.integers(min_value=0, max_value=3)),
                max_nodes=draw(
                    st.one_of(
                        st.none(),
                        st.integers(min_value=1, max_value=total_nodes),
                    )
                ),
            )
        )
    return tuple(requests)


@st.composite
def cluster_partition(draw, total_nodes=8, max_blocks=4):
    """A valid node partition: disjoint contiguous blocks summing <= total.

    Returned as ``(total_nodes, [(offset, size), ...])`` — the shape
    :class:`~repro.coschedule.allocator.EnsembleAllocation` records
    and the conservation property checks.
    """
    n_blocks = draw(st.integers(min_value=1, max_value=max_blocks))
    sizes = [
        draw(st.integers(min_value=1, max_value=2)) for _ in range(n_blocks)
    ]
    while sum(sizes) > total_nodes:
        sizes.pop()
    offset = 0
    blocks = []
    for size in sizes:
        blocks.append((offset, size))
        offset += size
    return total_nodes, blocks


_fault_kinds = st.sampled_from(list(FaultKind))


@st.composite
def fault_events(draw, components=("em1.sim", "em1.ana1"), max_step=7):
    """A valid :class:`FaultEvent` honouring the per-kind envelopes."""
    kind = draw(_fault_kinds)
    component = draw(st.sampled_from(list(components)))
    member = component.split(".")[0]
    step = draw(st.integers(min_value=0, max_value=max_step))
    stage = draw(st.sampled_from(FAULT_STAGES))
    if kind is FaultKind.CRASH:
        magnitude = draw(
            st.floats(
                min_value=0.0,
                max_value=1.0,
                exclude_min=True,
                allow_nan=False,
            )
        )
        repeats = draw(st.integers(min_value=1, max_value=3))
    elif kind is FaultKind.STRAGGLER:
        magnitude = draw(
            st.floats(
                min_value=1.0,
                max_value=10.0,
                exclude_min=True,
                allow_nan=False,
            )
        )
        repeats = 1
    else:  # STALL / CHUNK_LOSS / CHUNK_CORRUPT: >= 0 seconds
        magnitude = draw(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
        )
        repeats = 1
    return FaultEvent(
        member=member,
        component=component,
        step=step,
        kind=kind,
        stage=stage,
        magnitude=magnitude,
        repeats=repeats,
    )


@st.composite
def fault_schedules(draw, components=("em1.sim", "em1.ana1"), max_events=6):
    """A :class:`FaultSchedule` of 0..``max_events`` valid events."""
    events = draw(
        st.lists(
            fault_events(components=components), min_size=0, max_size=max_events
        )
    )
    return FaultSchedule(events)
