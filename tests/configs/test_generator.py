"""Tests for placement enumeration."""

import pytest

from repro.configs.generator import (
    count_feasible_placements,
    enumerate_placements,
)
from repro.runtime.spec import EnsembleSpec, default_member
from repro.util.errors import ValidationError


@pytest.fixture
def one_member():
    return EnsembleSpec("e", (default_member("em1", n_steps=1),))


@pytest.fixture
def two_members(two_member_spec):
    return two_member_spec


class TestEnumeration:
    def test_single_member_two_nodes(self, one_member):
        """sim+ana over 2 interchangeable nodes: co-located or split."""
        placements = list(enumerate_placements(one_member, 2, 32))
        assert len(placements) == 2
        patterns = {
            (p.members[0].simulation_node, p.members[0].analysis_nodes)
            for p in placements
        }
        assert patterns == {(0, (0,)), (0, (1,))}

    def test_without_dedup_counts_raw_assignments(self, one_member):
        placements = list(
            enumerate_placements(one_member, 2, 32, dedup_symmetric=False)
        )
        assert len(placements) == 4  # 2^2 assignments, all feasible

    def test_capacity_filters_infeasible(self, two_members):
        # 1 node of 32 cores cannot hold 48 cores of components
        assert list(enumerate_placements(two_members, 1, 32)) == []

    def test_two_members_two_nodes(self, two_members):
        """Valid 2-node placements must keep <=32 cores per node."""
        placements = list(enumerate_placements(two_members, 2, 32))
        assert placements  # C1.4- and C1.5-like patterns exist
        for p in placements:
            spec_demand = {}
            for mp, member in zip(p.members, two_members.members):
                spec_demand[mp.simulation_node] = (
                    spec_demand.get(mp.simulation_node, 0)
                    + member.simulation.cores
                )
                for node, ana in zip(mp.analysis_nodes, member.analyses):
                    spec_demand[node] = spec_demand.get(node, 0) + ana.cores
            assert max(spec_demand.values()) <= 32

    def test_includes_paper_configurations(self, two_members):
        """The canonical enumeration over 3 nodes covers C1.1-C1.5's
        equivalence classes."""
        placements = list(enumerate_placements(two_members, 3, 32))
        signatures = {
            tuple(
                (mp.simulation_node, mp.analysis_nodes) for mp in p.members
            )
            for p in placements
        }
        # C1.5 canonical form: ((0,(0,)), (1,(1,)))
        assert ((0, (0,)), (1, (1,))) in signatures
        # C1.4 canonical form: ((0,(1,)), (0,(1,)))
        assert ((0, (1,)), (0, (1,))) in signatures

    def test_deterministic_order(self, two_members):
        a = [
            tuple((m.simulation_node, m.analysis_nodes) for m in p.members)
            for p in enumerate_placements(two_members, 2, 32)
        ]
        b = [
            tuple((m.simulation_node, m.analysis_nodes) for m in p.members)
            for p in enumerate_placements(two_members, 2, 32)
        ]
        assert a == b

    def test_count_helper(self, one_member):
        assert count_feasible_placements(one_member, 2, 32) == 2

    def test_invalid_args(self, one_member):
        with pytest.raises(ValidationError):
            list(enumerate_placements(one_member, 0, 32))
        with pytest.raises(ValidationError):
            list(enumerate_placements(one_member, 2, 0))
