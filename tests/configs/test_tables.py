"""Tests for the Table 2 / Table 4 configuration definitions."""

import pytest

from repro.configs.base import Configuration, build_spec
from repro.configs.table2 import TABLE2_CONFIGS, get_config as t2, table2
from repro.configs.table4 import TABLE4_CONFIGS, get_config as t4, table4
from repro.runtime.placement import MemberPlacement
from repro.util.errors import ConfigurationError


class TestTable2:
    def test_all_seven_present_in_order(self):
        names = [c.name for c in table2()]
        assert names == ["Cf", "Cc", "C1.1", "C1.2", "C1.3", "C1.4", "C1.5"]

    def test_matches_paper_table2_exactly(self):
        """Node indexes straight from the paper's Table 2."""
        expected = {
            "Cf": (2, [(0, (1,))]),
            "Cc": (1, [(0, (0,))]),
            "C1.1": (3, [(0, (2,)), (1, (2,))]),
            "C1.2": (3, [(0, (1,)), (0, (2,))]),
            "C1.3": (3, [(0, (0,)), (1, (2,))]),
            "C1.4": (2, [(0, (1,)), (0, (1,))]),
            "C1.5": (2, [(0, (0,)), (1, (1,))]),
        }
        for name, (nodes, members) in expected.items():
            config = t2(name)
            assert config.num_nodes == nodes
            assert [
                (m.simulation_node, m.analysis_nodes) for m in config.members
            ] == members

    def test_one_analysis_per_member(self):
        for c in table2():
            assert c.num_analyses_per_member == 1

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            t2("C9.9")


class TestTable4:
    def test_all_eight_present_in_order(self):
        names = [c.name for c in table4()]
        assert names == [f"C2.{i}" for i in range(1, 9)]

    def test_matches_paper_table4_exactly(self):
        expected = {
            "C2.1": (3, [(0, (2, 2)), (1, (2, 2))]),
            "C2.2": (3, [(0, (1, 1)), (0, (2, 2))]),
            "C2.3": (3, [(0, (1, 2)), (0, (1, 2))]),
            "C2.4": (3, [(0, (0, 2)), (1, (1, 2))]),
            "C2.5": (3, [(0, (1, 2)), (1, (0, 2))]),
            "C2.6": (2, [(0, (1, 1)), (0, (1, 1))]),
            "C2.7": (2, [(0, (0, 1)), (1, (0, 1))]),
            "C2.8": (2, [(0, (0, 0)), (1, (1, 1))]),
        }
        for name, (nodes, members) in expected.items():
            config = t4(name)
            assert config.num_nodes == nodes
            assert [
                (m.simulation_node, m.analysis_nodes) for m in config.members
            ] == members

    def test_two_analyses_per_member(self):
        for c in table4():
            assert c.num_analyses_per_member == 2

    def test_all_fit_cori_nodes(self):
        """Every Table 4 placement fits 32-core nodes exactly (the paper
        notes C2.6-C2.8 fully saturate their nodes)."""
        for c in table4():
            spec = build_spec(c)
            demand = c.placement().validate_against(spec, cores_per_node=32)
            assert max(demand.values()) <= 32
        for name in ("C2.6", "C2.7", "C2.8"):
            spec = build_spec(t4(name))
            demand = t4(name).placement().validate_against(spec, 32)
            assert all(d == 32 for d in demand.values())

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            t4("C1.1")


class TestConfiguration:
    def test_members_must_agree_on_k(self):
        with pytest.raises(ConfigurationError):
            Configuration(
                "bad",
                "mismatched couplings",
                2,
                (MemberPlacement(0, (0,)), MemberPlacement(1, (0, 1))),
            )

    def test_build_spec_shapes(self):
        spec = build_spec(t4("C2.8"), n_steps=5)
        assert spec.num_members == 2
        assert spec.members[0].num_couplings == 2
        assert spec.members[0].n_steps == 5
        assert spec.members[0].simulation.cores == 16
        assert spec.members[0].analyses[0].cores == 8

    def test_placement_round_trip(self):
        config = t2("C1.5")
        placement = config.placement()
        assert placement.num_nodes == config.num_nodes
        assert placement.members == config.members
