"""Tests for the analytic component cost models."""

import pytest

from repro.components.analysis import EigenAnalysisModel
from repro.components.base import (
    ComponentKind,
    ComponentSpec,
    amdahl_time,
)
from repro.components.simulation import BYTES_PER_ATOM_FRAME, MDSimulationModel
from repro.util.errors import ValidationError


class TestAmdahl:
    def test_one_core_is_full_time(self):
        assert amdahl_time(10.0, 0.1, 1) == pytest.approx(10.0)

    def test_fully_parallel_scales_linearly(self):
        assert amdahl_time(10.0, 0.0, 4) == pytest.approx(2.5)

    def test_fully_serial_never_scales(self):
        assert amdahl_time(10.0, 1.0, 64) == pytest.approx(10.0)

    def test_monotone_decreasing_in_cores(self):
        times = [amdahl_time(10.0, 0.1, c) for c in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)

    def test_bounded_below_by_serial_fraction(self):
        assert amdahl_time(10.0, 0.2, 10_000) >= 2.0

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            amdahl_time(0.0, 0.1, 4)
        with pytest.raises(ValidationError):
            amdahl_time(10.0, 1.5, 4)
        with pytest.raises(ValidationError):
            amdahl_time(10.0, 0.1, 0)
        with pytest.raises(ValidationError):
            amdahl_time(10.0, 0.1, 2.5)


class TestComponentSpec:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ComponentSpec("", ComponentKind.SIMULATION, 4)
        with pytest.raises(ValidationError):
            ComponentSpec("x", "simulation", 4)
        with pytest.raises(ValidationError):
            ComponentSpec("x", ComponentKind.SIMULATION, 0)
        with pytest.raises(ValidationError):
            ComponentSpec("x", ComponentKind.SIMULATION, True)


class TestSimulationModel:
    def test_paper_operating_point(self, sim_model):
        """16 cores, stride 800, 250k atoms -> an in situ step of ~15 s."""
        t = sim_model.solo_compute_time()
        assert 10.0 < t < 25.0

    def test_step_time_scales_with_stride(self):
        short = MDSimulationModel("s", stride=100).solo_compute_time()
        long = MDSimulationModel("s", stride=800).solo_compute_time()
        assert long == pytest.approx(8 * short)

    def test_step_time_scales_with_atoms(self):
        small = MDSimulationModel("s", natoms=100_000).solo_compute_time()
        big = MDSimulationModel("s", natoms=200_000).solo_compute_time()
        assert big == pytest.approx(2 * small)

    def test_more_cores_faster(self):
        t8 = MDSimulationModel("s", cores=8).solo_compute_time()
        t16 = MDSimulationModel("s", cores=16).solo_compute_time()
        assert t16 < t8

    def test_frame_payload_size(self, sim_model):
        assert sim_model.payload_bytes() == 250_000 * BYTES_PER_ATOM_FRAME

    def test_kind_is_simulation(self, sim_model):
        assert sim_model.spec.kind is ComponentKind.SIMULATION


class TestAnalysisModel:
    def test_paper_operating_point(self, sim_model, ana_model):
        """At 8 cores the analysis step is just below the simulation step
        (Idle Analyzer regime, §3.4)."""
        a = ana_model.solo_compute_time()
        s = sim_model.solo_compute_time()
        assert a < s
        assert a > 0.7 * s  # close to it: E was maximized

    def test_crossover_matches_figure7(self, sim_model, ana_model):
        """1-4 cores: analysis slower than simulation; 8-32: faster."""
        s = sim_model.solo_compute_time()
        for c in (1, 2, 4):
            assert ana_model.with_cores(c).solo_compute_time() > s
        for c in (8, 16, 32):
            assert ana_model.with_cores(c).solo_compute_time() < s

    def test_with_cores_preserves_other_settings(self, ana_model):
        clone = ana_model.with_cores(4)
        assert clone.cores == 4
        assert clone.natoms == ana_model.natoms
        assert clone.single_core_time == ana_model.single_core_time
        assert clone.name == ana_model.name

    def test_reads_one_frame(self, ana_model, sim_model):
        assert ana_model.payload_bytes() == sim_model.payload_bytes()

    def test_kind_is_analysis(self, ana_model):
        assert ana_model.spec.kind is ComponentKind.ANALYSIS


class TestModelProfileBinding:
    def test_name_mismatch_rejected(self):
        from repro.components.profiles import simulation_profile

        with pytest.raises(ValidationError):
            MDSimulationModel("a", profile=simulation_profile("b"))
