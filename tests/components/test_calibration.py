"""Tests for cost-model calibration."""

import numpy as np
import pytest

from repro.components.analysis import EigenAnalysisModel
from repro.components.calibration import (
    AnalysisSample,
    SimulationSample,
    fit_analysis_model,
    fit_simulation_model,
)
from repro.components.simulation import MDSimulationModel
from repro.util.errors import ValidationError


def sim_samples(model: MDSimulationModel, core_counts, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for c in core_counts:
        clone = MDSimulationModel(
            "probe",
            cores=c,
            natoms=model.natoms,
            stride=model.stride,
            seconds_per_atom_step=model.seconds_per_atom_step,
            serial_fraction=model.serial_fraction,
        )
        t = clone.solo_compute_time()
        if noise:
            t *= 1 + rng.uniform(-noise, noise)
        out.append(
            SimulationSample(
                cores=c, stride=model.stride, natoms=model.natoms, seconds=t
            )
        )
    return out


class TestSimulationFit:
    def test_exact_recovery(self):
        truth = MDSimulationModel("truth")
        samples = sim_samples(truth, [1, 2, 4, 8, 16, 32])
        model, report = fit_simulation_model("fit", samples)
        assert report.single_core_time == pytest.approx(
            truth.seconds_per_atom_step, rel=1e-9
        )
        assert report.serial_fraction == pytest.approx(
            truth.serial_fraction, abs=1e-9
        )
        assert report.rmse == pytest.approx(0.0, abs=1e-12)

    def test_noisy_recovery(self):
        truth = MDSimulationModel("truth")
        samples = sim_samples(truth, [1, 2, 4, 8, 16, 32], noise=0.03)
        _, report = fit_simulation_model("fit", samples)
        assert report.serial_fraction == pytest.approx(
            truth.serial_fraction, abs=0.03
        )
        assert report.single_core_time == pytest.approx(
            truth.seconds_per_atom_step, rel=0.05
        )

    def test_fitted_model_predicts_held_out_cores(self):
        truth = MDSimulationModel("truth")
        samples = sim_samples(truth, [1, 4, 16])
        model, _ = fit_simulation_model("fit", samples)
        probe = MDSimulationModel(
            "probe",
            cores=8,  # held-out core count
            natoms=truth.natoms,
            stride=truth.stride,
            seconds_per_atom_step=model.seconds_per_atom_step,
            serial_fraction=model.serial_fraction,
        )
        truth8 = MDSimulationModel(
            "t8", cores=8, natoms=truth.natoms, stride=truth.stride
        )
        assert probe.solo_compute_time() == pytest.approx(
            truth8.solo_compute_time(), rel=1e-6
        )

    def test_mixed_strides_and_sizes(self):
        truth = MDSimulationModel("truth")
        samples = [
            SimulationSample(
                cores=c,
                stride=stride,
                natoms=natoms,
                seconds=MDSimulationModel(
                    "p", cores=c, natoms=natoms, stride=stride
                ).solo_compute_time(),
            )
            for c, stride, natoms in [
                (1, 100, 50_000),
                (4, 800, 250_000),
                (16, 400, 100_000),
            ]
        ]
        _, report = fit_simulation_model("fit", samples)
        assert report.serial_fraction == pytest.approx(0.05, abs=1e-6)

    def test_single_core_count_rejected(self):
        truth = MDSimulationModel("truth")
        samples = sim_samples(truth, [8, 8, 8])
        with pytest.raises(ValidationError, match="distinct core"):
            fit_simulation_model("fit", samples)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            fit_simulation_model("fit", [])

    def test_non_amdahl_data_rejected(self):
        # superlinear "measurements" produce negative serial fraction
        samples = [
            SimulationSample(cores=1, stride=100, natoms=1000, seconds=10.0),
            SimulationSample(cores=2, stride=100, natoms=1000, seconds=2.0),
            SimulationSample(cores=4, stride=100, natoms=1000, seconds=0.4),
        ]
        with pytest.raises(ValidationError):
            fit_simulation_model("fit", samples)


class TestAnalysisFit:
    def test_exact_recovery(self):
        truth = EigenAnalysisModel("truth")
        samples = [
            AnalysisSample(
                cores=c, seconds=truth.with_cores(c).solo_compute_time()
            )
            for c in (1, 2, 4, 8, 16, 32)
        ]
        model, report = fit_analysis_model("fit", samples)
        assert report.single_core_time == pytest.approx(
            truth.single_core_time, rel=1e-9
        )
        assert report.serial_fraction == pytest.approx(
            truth.serial_fraction, abs=1e-9
        )
        assert model.with_cores(8).solo_compute_time() == pytest.approx(
            truth.solo_compute_time(), rel=1e-9
        )

    def test_validation_mirrors_simulation_fit(self):
        with pytest.raises(ValidationError):
            fit_analysis_model("fit", [])
        with pytest.raises(ValidationError):
            fit_analysis_model(
                "fit",
                [AnalysisSample(4, 10.0), AnalysisSample(4, 10.0)],
            )

    def test_poor_fit_detected(self):
        # oscillating data: the least-squares f lands in [0, 1] but the
        # residuals are enormous relative to the mean
        samples = [
            AnalysisSample(1, 30.0),
            AnalysisSample(2, 10.0),
            AnalysisSample(4, 30.0),
            AnalysisSample(8, 10.0),
        ]
        with pytest.raises(ValidationError, match="poor calibration fit"):
            fit_analysis_model("fit", samples)

    def test_unphysical_scaling_detected(self):
        # superlinear speedup pushes the serial fraction out of range
        samples = [
            AnalysisSample(1, 10.0),
            AnalysisSample(2, 2.0),
            AnalysisSample(4, 0.4),
        ]
        with pytest.raises(ValidationError, match="Amdahl"):
            fit_analysis_model("fit", samples)
