"""Canonical (RGS) enumeration vs the seed product-then-dedup stream.

The fast generator's contract is exact: same placements, same order,
same counts as the reference implementation, on every (N, K, M, node)
combination — property-tested over the grid the paper's evaluation
actually spans.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.configs.generator import (
    count_feasible_placements,
    enumerate_placements,
)
from repro.runtime.spec import EnsembleSpec, default_member
from repro.search.canonical import (
    component_core_demands,
    count_canonical_assignments,
    count_raw_assignments,
    enumerate_canonical_placements,
    iter_canonical_assignments,
)
from repro.search.reference import (
    canonical_signature,
    count_feasible_placements_reference,
    enumerate_placements_reference,
)
from tests.strategies import search_grids


class TestCanonicalMatchesReference:
    @settings(max_examples=30, deadline=None)
    @given(grid=search_grids())
    def test_same_stream_same_order(self, grid):
        spec, num_nodes, cores_per_node = grid
        fast = list(
            enumerate_canonical_placements(spec, num_nodes, cores_per_node)
        )
        seed = list(
            enumerate_placements_reference(spec, num_nodes, cores_per_node)
        )
        assert fast == seed

    @settings(max_examples=30, deadline=None)
    @given(grid=search_grids())
    def test_counts_match_reference(self, grid):
        spec, num_nodes, cores_per_node = grid
        cores = component_core_demands(spec)
        assert count_canonical_assignments(
            cores, num_nodes, cores_per_node
        ) == count_feasible_placements_reference(
            spec, num_nodes, cores_per_node
        )
        assert count_raw_assignments(
            cores, num_nodes, cores_per_node
        ) == count_feasible_placements_reference(
            spec, num_nodes, cores_per_node, dedup_symmetric=False
        )

    def test_every_yielded_assignment_is_rgs(self):
        # labels open in first-use order: prefix max rule
        for assignment in iter_canonical_assignments([16, 8, 16, 8], 3, 32):
            seen_max = -1
            for label in assignment:
                assert label <= seen_max + 1
                seen_max = max(seen_max, label)
            assert assignment == canonical_signature(assignment)

    def test_capacity_respected(self):
        for assignment in iter_canonical_assignments([16, 8, 16, 8], 2, 24):
            demand = {}
            for label, cores in zip(assignment, [16, 8, 16, 8]):
                demand[label] = demand.get(label, 0) + cores
            assert all(d <= 24 for d in demand.values())

    def test_infeasible_space_is_empty(self):
        assert list(iter_canonical_assignments([40], 2, 32)) == []
        assert count_canonical_assignments([40], 2, 32) == 0
        assert count_raw_assignments([40], 2, 32) == 0


class TestGeneratorDelegation:
    """The public generator API now runs on the canonical engine."""

    def test_dedup_stream_unchanged(self, two_member_spec):
        fast = list(enumerate_placements(two_member_spec, 3, 32))
        seed = list(
            enumerate_placements_reference(two_member_spec, 3, 32)
        )
        assert fast == seed

    def test_raw_stream_unchanged(self, two_member_spec):
        fast = list(
            enumerate_placements(
                two_member_spec, 2, 32, dedup_symmetric=False
            )
        )
        seed = list(
            enumerate_placements_reference(
                two_member_spec, 2, 32, dedup_symmetric=False
            )
        )
        assert fast == seed

    def test_count_without_materializing(self, two_member_spec):
        # the count comes from the closed-form recursion, and agrees
        # with brute-force enumeration in both dedup modes
        assert count_feasible_placements(
            two_member_spec, 3, 32
        ) == count_feasible_placements_reference(two_member_spec, 3, 32)
        assert count_feasible_placements(
            two_member_spec, 3, 32, dedup_symmetric=False
        ) == count_feasible_placements_reference(
            two_member_spec, 3, 32, dedup_symmetric=False
        )

    def test_count_scales_past_enumeration(self):
        # a space big enough that materializing it would be absurd —
        # the DP sizes it instantly (raw space here is 64^10)
        spec = EnsembleSpec(
            "big",
            tuple(
                default_member(f"em{i}", n_steps=4) for i in range(5)
            ),
        )
        count = count_feasible_placements(spec, 64, 32)
        assert count > 0

    def test_invalid_inputs_raise(self, two_member_spec):
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError):
            count_feasible_placements(two_member_spec, 0, 32)
        with pytest.raises(ValidationError):
            list(enumerate_placements(two_member_spec, 2, 0))
