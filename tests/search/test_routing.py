"""The engine's vectorized/scalar routing is observable, not silent.

``find_best_placement(vectorized=True)`` may legitimately run the
scalar path — small canonical space, robustness term, parallel pool,
unvectorizable context. Each of those decisions is now recorded:
:func:`last_search_routing` carries the structured reason for the most
recent search and :func:`search_counters` tallies requests, uses, and
fallbacks process-wide. These tests pin the exact reason strings the
service stats and the benchmarks surface.
"""

import pytest

import repro.search.vectorized as vectorized_mod
from repro.faults.analytic import RobustnessTerm
from repro.faults.models import RandomFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.runtime.spec import EnsembleSpec, default_member
from repro.search.engine import (
    find_best_placement,
    last_search_routing,
    reset_search_counters,
    search_counters,
)
from repro.search.vectorized import VectorizedUnsupported


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_search_counters()
    yield
    reset_search_counters()


def _spec(n_members: int = 2) -> EnsembleSpec:
    return EnsembleSpec(
        "route",
        tuple(
            default_member(f"em{i}", num_analyses=1, n_steps=4)
            for i in range(n_members)
        ),
    )


class TestScalarOnly:
    def test_unrequested_search_records_nothing_vectorized(self):
        find_best_placement(_spec(), 2, 32)
        routing = last_search_routing()
        assert routing == {
            "vectorized_requested": False,
            "vectorized_used": False,
            "fallback_reason": None,
        }
        counters = search_counters()
        assert counters["searches"] == 1
        assert counters["vectorized_requested"] == 0
        assert counters["vectorized_fallbacks"] == 0


class TestFallbackReasons:
    def test_below_threshold(self):
        find_best_placement(_spec(), 2, 32, vectorized=True)
        routing = last_search_routing()
        assert routing["vectorized_requested"]
        assert not routing["vectorized_used"]
        assert routing["fallback_reason"].startswith(
            "canonical space below threshold ("
        )
        assert "candidates)" in routing["fallback_reason"]
        counters = search_counters()
        assert counters["vectorized_requested"] == 1
        assert counters["vectorized_fallbacks"] == 1
        assert counters["vectorized_used"] == 0

    def test_robustness_term_present(self):
        term = RobustnessTerm(
            policy=RetryBackoffPolicy(), model=RandomFailureModel(rate=0.05)
        )
        find_best_placement(_spec(), 2, 32, robustness=term, vectorized=True)
        assert (
            last_search_routing()["fallback_reason"]
            == "robustness term present"
        )

    def test_parallel_engine_requested(self):
        find_best_placement(
            _spec(), 2, 32, parallel=True, processes=1, vectorized=True
        )
        assert (
            last_search_routing()["fallback_reason"]
            == "parallel engine requested"
        )

    def test_unvectorizable_context(self, monkeypatch):
        def raise_unsupported(*args, **kwargs):
            raise VectorizedUnsupported("custom component model")

        monkeypatch.setattr(vectorized_mod, "MIN_VECTORIZED_CANDIDATES", 1)
        monkeypatch.setattr(
            vectorized_mod,
            "find_best_placement_vectorized",
            raise_unsupported,
        )
        find_best_placement(_spec(), 2, 32, vectorized=True)
        assert (
            last_search_routing()["fallback_reason"]
            == "context not vectorizable: custom component model"
        )
        assert search_counters()["vectorized_fallbacks"] == 1


class TestVectorizedUsed:
    def test_success_path_recorded(self, monkeypatch):
        monkeypatch.setattr(vectorized_mod, "MIN_VECTORIZED_CANDIDATES", 1)
        scalar_best, scalar_n = find_best_placement(_spec(), 2, 32)
        best, n = find_best_placement(_spec(), 2, 32, vectorized=True)
        routing = last_search_routing()
        assert routing["vectorized_used"]
        assert routing["fallback_reason"] is None
        assert best.objective == scalar_best.objective
        assert n == scalar_n
        counters = search_counters()
        assert counters["vectorized_used"] == 1
        assert counters["vectorized_fallbacks"] == 0

    def test_counters_reset(self):
        find_best_placement(_spec(), 2, 32)
        assert search_counters()["searches"] == 1
        reset_search_counters()
        counters = search_counters()
        assert all(value == 0 for value in counters.values())
