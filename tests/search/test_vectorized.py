"""The vectorized batch kernel returns exactly what the scalar paths do.

Covers :mod:`repro.search.vectorized` against the scalar engine on
three contracts:

- **stream identity** — chunked array enumeration concatenates to the
  exact canonical assignment stream, for any chunk size, and the
  closed-form :class:`CompletionCounter` sizes it without enumerating;
- **score agreement** — :meth:`VectorizedScorer.score_chunk` matches
  :func:`~repro.scheduler.objectives.score_placement` within the
  oracle's ``vectorized`` tolerance (1e-9 relative) on every
  enumerated candidate;
- **search identity** — branch-and-bound never prunes the true
  optimum: :func:`find_best_placement_vectorized` returns the scalar
  engine's winner bit for bit, with the whole canonical space
  accounted for, and the batch argmax helpers reproduce the serial
  loop's strict ``>`` tie-breaking on tie-heavy grids.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtl.pfs import ParallelFilesystemDTL
from repro.platform.cluster import Cluster
from repro.platform.network import DragonflyNetwork
from repro.platform.specs import cori_like_node
from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.objectives import PlacementScore, score_placement
from repro.scheduler.policies import ExhaustiveSearchPolicy
from repro.search import find_best_placement
from repro.search.canonical import (
    CompletionCounter,
    assignment_to_placement,
    component_core_demands,
    count_canonical_assignments,
    iter_assignment_chunks,
    iter_canonical_assignments,
)
from repro.search.vectorized import (
    VectorizedScorer,
    VectorizedUnsupported,
    argmax_batch,
    best_score_index,
    find_best_placement_vectorized,
)
from repro.util.errors import PlacementError
from tests.strategies import search_grids

# the oracle's ``vectorized`` tier tolerance (see DEFAULT_TOLERANCES)
VECTORIZED_TOL = 1e-9

CHUNK_SIZES = st.sampled_from([1, 3, 17, 8192])


def _tie_heavy_spec(num_members: int = 3) -> EnsembleSpec:
    """Identical members: many placements score exactly the same."""
    return EnsembleSpec(
        "ties",
        tuple(
            default_member(f"em{i}", num_analyses=1, n_steps=4)
            for i in range(num_members)
        ),
    )


def _rel_err(ref: float, cand: float) -> float:
    if ref == cand:
        return 0.0
    return abs(ref - cand) / max(abs(ref), abs(cand))


class TestChunkedEnumeration:
    @given(grid=search_grids(), chunk_size=CHUNK_SIZES)
    @settings(max_examples=30, deadline=None)
    def test_chunks_concatenate_to_canonical_stream(self, grid, chunk_size):
        spec, num_nodes, cores_per_node = grid
        cores = component_core_demands(spec)
        reference = list(
            iter_canonical_assignments(cores, num_nodes, cores_per_node)
        )
        chunks = list(
            iter_assignment_chunks(
                cores, num_nodes, cores_per_node, chunk_size=chunk_size
            )
        )
        assert all(c.shape[0] <= chunk_size for c in chunks)
        if not reference:
            assert chunks == []
            return
        stacked = np.concatenate(chunks, axis=0)
        assert stacked.shape == (len(reference), len(cores))
        assert [tuple(row) for row in stacked.tolist()] == reference

    @given(grid=search_grids())
    @settings(max_examples=30, deadline=None)
    def test_completion_counter_totals_the_space(self, grid):
        spec, num_nodes, cores_per_node = grid
        cores = component_core_demands(spec)
        counter = CompletionCounter(cores, num_nodes, cores_per_node)
        assert counter.total() == count_canonical_assignments(
            cores, num_nodes, cores_per_node
        )


class TestScoreAgreement:
    @given(grid=search_grids())
    @settings(max_examples=15, deadline=None)
    def test_chunk_scores_match_scalar_scorer(self, grid):
        spec, num_nodes, cores_per_node = grid
        cores = component_core_demands(spec)
        assignments = list(
            iter_canonical_assignments(cores, num_nodes, cores_per_node)
        )[:200]
        if not assignments:
            return
        scorer = VectorizedScorer(spec, num_nodes)
        # a search budget above the physical node capacity (cori: 32
        # cores) can enumerate candidates both paths refuse to score
        overloaded = any(
            max(
                sum(c for c, n in zip(cores, row) if n == node)
                for node in set(row)
            )
            > 32
            for row in assignments
        )
        if overloaded:
            with pytest.raises(PlacementError):
                scorer.score_chunk(np.asarray(assignments, dtype=np.int64))
            return
        batch = scorer.score_chunk(np.asarray(assignments, dtype=np.int64))
        for i, assignment in enumerate(assignments):
            scalar = score_placement(
                spec, assignment_to_placement(spec, assignment, num_nodes)
            )
            assert (
                _rel_err(scalar.objective, float(batch.objectives[i]))
                <= VECTORIZED_TOL
            )
            assert (
                _rel_err(
                    scalar.ensemble_makespan, float(batch.makespans[i])
                )
                <= VECTORIZED_TOL
            )
            for ref, cand in zip(
                scalar.member_indicators, batch.indicators[i]
            ):
                assert _rel_err(ref, float(cand)) <= VECTORIZED_TOL

    def test_score_assignments_validates_oversubscription(self):
        spec = _tie_heavy_spec(2)
        scorer = VectorizedScorer(spec, 2)
        # every component on node 0: 2 x (16 + 8) = 48 > 32 cores
        with pytest.raises(PlacementError):
            scorer.score_assignments([[0, 0, 0, 0]])

    def test_score_chunk_rejects_bad_shapes_and_labels(self):
        spec = _tie_heavy_spec(2)
        scorer = VectorizedScorer(spec, 3)
        with pytest.raises(PlacementError):
            scorer.score_chunk(np.zeros((2, 9), dtype=np.int64))
        with pytest.raises(PlacementError):
            scorer.score_assignments([[0, 1, 2, 3]])  # label 3 >= 3


class _SubclassedNetwork(DragonflyNetwork):
    """A model the kernel tables were not derived for."""


class TestUnsupportedContexts:
    def test_subclassed_network_raises(self):
        # the hop kernel replicates DragonflyNetwork exactly; any
        # subclass may override hops/latency, so the strict type check
        # must refuse it
        cluster = Cluster(
            node_spec=cori_like_node(),
            num_nodes=4,
            network=_SubclassedNetwork(),
        )
        with pytest.raises(VectorizedUnsupported):
            VectorizedScorer(_tie_heavy_spec(2), 4, cluster=cluster)

    def test_non_default_dtl_raises(self):
        with pytest.raises(VectorizedUnsupported):
            VectorizedScorer(
                _tie_heavy_spec(2), 4, dtl=ParallelFilesystemDTL()
            )

    def test_engine_falls_back_to_scalar(self):
        # a space large enough to route through the kernel, but an
        # unsupported DTL: vectorized=True must silently fall back to
        # the scalar path and still return the scalar winner
        spec = EnsembleSpec(
            "fallback",
            tuple(
                default_member(f"em{i}", num_analyses=2, n_steps=4)
                for i in range(3)
            ),
        )
        from repro.search.vectorized import MIN_VECTORIZED_CANDIDATES

        cores = component_core_demands(spec)
        assert (
            count_canonical_assignments(cores, 8, 32)
            >= MIN_VECTORIZED_CANDIDATES
        )
        dtl = ParallelFilesystemDTL()
        vectorized = find_best_placement(spec, 8, 32, dtl=dtl, vectorized=True)
        scalar = find_best_placement(spec, 8, 32, dtl=dtl)
        assert vectorized[0].placement == scalar[0].placement
        assert vectorized[0].objective == scalar[0].objective
        assert vectorized[1] == scalar[1]


class TestBranchAndBound:
    @given(grid=search_grids(), chunk_size=CHUNK_SIZES)
    @settings(max_examples=15, deadline=None)
    def test_never_prunes_the_optimum(self, grid, chunk_size):
        spec, num_nodes, cores_per_node = grid
        cores = component_core_demands(spec)
        total = count_canonical_assignments(
            cores, num_nodes, cores_per_node
        )
        if total == 0:
            with pytest.raises(PlacementError):
                find_best_placement_vectorized(
                    spec, num_nodes, cores_per_node, chunk_size=chunk_size
                )
            return
        try:
            scalar, evaluated = find_best_placement(
                spec, num_nodes, cores_per_node
            )
        except PlacementError:
            # search budget above physical capacity: the scalar engine
            # refuses the grid, and the kernel must refuse it too
            with pytest.raises(PlacementError):
                find_best_placement_vectorized(
                    spec, num_nodes, cores_per_node, chunk_size=chunk_size
                )
            return
        result = find_best_placement_vectorized(
            spec, num_nodes, cores_per_node, chunk_size=chunk_size
        )
        assert result.scored + result.pruned == total == evaluated
        assert result.best.placement == scalar.placement
        assert result.best.objective == scalar.objective
        assert result.best.ensemble_makespan == scalar.ensemble_makespan
        assert result.best.member_indicators == scalar.member_indicators

    def test_tie_heavy_grid_keeps_first_optimum(self):
        # identical members make the objective landscape massively
        # degenerate; the B&B winner must still be the serial loop's
        # first strict optimum (pruning is strict-< only)
        spec = _tie_heavy_spec(3)
        result = find_best_placement_vectorized(spec, 4, 32, chunk_size=64)
        scalar, evaluated = find_best_placement(spec, 4, 32)
        assert result.scored + result.pruned == evaluated
        assert result.best.placement == scalar.placement
        assert result.best.objective == scalar.objective

    def test_pruning_disabled_scores_everything(self):
        spec = _tie_heavy_spec(3)
        unpruned = find_best_placement_vectorized(spec, 4, 32, prune=False)
        pruned = find_best_placement_vectorized(spec, 4, 32)
        assert unpruned.pruned == 0
        assert unpruned.scored == pruned.scored + pruned.pruned
        assert unpruned.best.placement == pruned.best.placement
        assert unpruned.best.objective == pruned.best.objective

    def test_engine_routes_large_spaces_through_the_kernel(self):
        # ~10k canonical candidates: above MIN_VECTORIZED_CANDIDATES,
        # so vectorized=True actually takes the batch path — and must
        # return the scalar engine's exact result
        spec = EnsembleSpec(
            "routed",
            tuple(
                default_member(f"em{i}", num_analyses=2, n_steps=4)
                for i in range(3)
            ),
        )
        scalar, n_scalar = find_best_placement(spec, 8, 32)
        fast, n_fast = find_best_placement(spec, 8, 32, vectorized=True)
        assert n_fast == n_scalar
        assert fast.placement == scalar.placement
        assert fast.objective == scalar.objective
        assert fast.ensemble_makespan == scalar.ensemble_makespan

    def test_exhaustive_policy_vectorized_same_placement(self):
        spec = _tie_heavy_spec(3)
        plain = ExhaustiveSearchPolicy()
        fast = ExhaustiveSearchPolicy(vectorized=True)
        assert fast.place(spec, 4, 32) == plain.place(spec, 4, 32)
        assert fast.evaluated == plain.evaluated


class TestBatchArgmax:
    def test_argmax_batch_matches_serial_loop_on_ties(self):
        rng = np.random.default_rng(7)
        objectives = rng.choice([0.25, 0.5, 0.75], size=200)
        makespans = rng.choice([1.0, 2.0, 3.0], size=200)
        best = None
        best_index = -1
        for i, key in enumerate(zip(objectives, -makespans)):
            if best is None or key > best:
                best = key
                best_index = i
        assert argmax_batch(objectives, makespans) == best_index

    def test_argmax_batch_on_real_tie_heavy_scores(self):
        spec = _tie_heavy_spec(3)
        cores = component_core_demands(spec)
        rows = np.asarray(
            list(iter_canonical_assignments(cores, 4, 32)), dtype=np.int64
        )
        batch = VectorizedScorer(spec, 4).score_chunk(rows)
        # the landscape really is degenerate, else the test is vacuous
        assert len(np.unique(batch.objectives)) < rows.shape[0]
        serial_best = None
        serial_index = -1
        for i in range(rows.shape[0]):
            key = (batch.objectives[i], -batch.makespans[i])
            if serial_best is None or key > serial_best:
                serial_best = key
                serial_index = i
        assert (
            argmax_batch(batch.objectives, batch.makespans) == serial_index
        )

    def test_argmax_batch_rejects_empty(self):
        with pytest.raises(ValueError):
            argmax_batch(np.empty(0), np.empty(0))

    def _score(self, utility, num_nodes, makespan, tag):
        placement = assignment_to_placement(
            _tie_heavy_spec(1), [0, 0], num_nodes
        )
        return PlacementScore(
            placement=placement,
            objective=utility,
            ensemble_makespan=makespan,
            num_nodes=num_nodes,
            member_indicators=(float(tag),),
        )

    def test_best_score_index_full_key_tie_breaking(self):
        # exercise every tie level of PlacementScore._key: utility,
        # then fewest nodes, then lowest makespan, then first-found
        scores = [
            self._score(0.5, 4, 9.0, 0),
            self._score(0.7, 4, 9.0, 1),  # best utility, first of ties
            self._score(0.7, 3, 9.0, 2),  # fewer nodes wins
            self._score(0.7, 3, 5.0, 3),  # lower makespan wins
            self._score(0.7, 3, 5.0, 4),  # exact tie: first kept
        ]
        serial = None
        serial_index = -1
        for i, score in enumerate(scores):
            if serial is None or score > serial:
                serial = score
                serial_index = i
        assert serial_index == 3
        assert best_score_index(scores) == serial_index

    def test_best_score_index_rejects_empty(self):
        with pytest.raises(ValueError):
            best_score_index([])

    def test_parallel_engine_tie_breaking_matches_serial(self):
        # the parallel branch reduces with best_score_index; on a
        # tie-heavy grid it must agree with the serial strict-> loop
        spec = _tie_heavy_spec(3)
        serial, n_serial = find_best_placement(spec, 4, 32)
        parallel, n_parallel = find_best_placement(
            spec, 4, 32, parallel=True
        )
        assert n_parallel == n_serial
        assert parallel.placement == serial.placement
        assert parallel.objective == serial.objective
        assert parallel.ensemble_makespan == serial.ensemble_makespan


class TestOracleTier:
    def test_oracle_runs_the_vectorized_tier(self):
        from repro.configs.base import build_spec
        from repro.configs.table2 import TABLE2_CONFIGS
        from repro.verify.oracles import run_differential_oracle

        config = TABLE2_CONFIGS["C1.2"]
        report = run_differential_oracle(
            build_spec(config, n_steps=4),
            config.placement(),
            scenario="vectorized-tier",
        )
        vectorized = [
            c for c in report.checks if c.paths == "score-vs-vectorized"
        ]
        assert len(vectorized) >= 3  # objective, makespan, indicators
        assert all(c.tolerance == VECTORIZED_TOL for c in vectorized)
        assert all(c.ok for c in vectorized)
        assert report.passed
