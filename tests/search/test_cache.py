"""StageCache bit-identity: cached paths return the predictor's floats.

The cache's contract is exact equality with
:func:`repro.runtime.analytic.predict_member_stages` and
:func:`repro.scheduler.objectives.score_placement` — asserted here with
``==``, never ``approx``, across full enumerations, warm re-use, delta
(incremental) evaluation, and robustness-weighted scoring.
"""

from __future__ import annotations

import pytest

from repro.configs.generator import enumerate_placements
from repro.dtl.pfs import ParallelFilesystemDTL
from repro.faults.analytic import RobustnessTerm
from repro.faults.models import RandomFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.platform.specs import make_cori_like_cluster, small_test_cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.scheduler.objectives import score_placement
from repro.search.cache import StageCache
from repro.search.canonical import component_core_demands
from repro.util.errors import PlacementError


class TestPredictBitIdentity:
    def test_predict_matches_predictor_on_full_enumeration(
        self, two_member_spec
    ):
        cache = StageCache()
        for placement in enumerate_placements(two_member_spec, 3, 32):
            assert cache.predict(
                two_member_spec, placement
            ) == predict_member_stages(two_member_spec, placement)

    def test_warm_cache_returns_identical_stages(self, two_member_spec):
        cache = StageCache()
        placements = list(enumerate_placements(two_member_spec, 3, 32))
        cold = [cache.predict(two_member_spec, p) for p in placements]
        misses_after_cold = cache.stage_misses
        warm = [cache.predict(two_member_spec, p) for p in placements]
        assert warm == cold
        # the second pass is all hits — nothing was recomputed
        assert cache.stage_misses == misses_after_cold
        assert cache.stage_hits > 0

    def test_explicit_context_matches_predictor(self, two_member_spec):
        cluster = make_cori_like_cluster(2)
        dtl = ParallelFilesystemDTL()
        cache = StageCache(cluster=cluster, dtl=dtl)
        placement = EnsemblePlacement(
            2, (MemberPlacement(0, (1,)), MemberPlacement(1, (0,)))
        )
        assert cache.predict(
            two_member_spec, placement
        ) == predict_member_stages(
            two_member_spec, placement, cluster=cluster, dtl=dtl
        )

    def test_oversubscription_raises(self, two_member_spec):
        cache = StageCache()
        everything_on_one_node = EnsemblePlacement(
            1, (MemberPlacement(0, (0,)), MemberPlacement(0, (0,)))
        )
        with pytest.raises(PlacementError):
            cache.predict(two_member_spec, everything_on_one_node)


class TestScorePlacementCachedPath:
    def test_cached_score_is_exact(self, two_member_spec):
        cache = StageCache()
        for placement in enumerate_placements(two_member_spec, 3, 32):
            cached = score_placement(
                two_member_spec, placement, cache=cache
            )
            plain = score_placement(two_member_spec, placement)
            assert cached.objective == plain.objective
            assert cached.ensemble_makespan == plain.ensemble_makespan
            assert cached.member_indicators == plain.member_indicators
            assert cached.robust_penalty == plain.robust_penalty

    def test_cached_score_with_robustness_is_exact(
        self, two_member_spec, colocated_placement
    ):
        term = RobustnessTerm(
            policy=RetryBackoffPolicy(),
            model=RandomFailureModel(rate=0.01, seed=0),
        )
        cache = StageCache()
        cached = score_placement(
            two_member_spec, colocated_placement,
            robustness=term, cache=cache,
        )
        plain = score_placement(
            two_member_spec, colocated_placement, robustness=term
        )
        assert cached.robust_penalty == plain.robust_penalty
        assert cached.utility == plain.utility

    def test_mismatched_cache_is_ignored_not_wrong(
        self, two_member_spec, colocated_placement
    ):
        # a default-context cache offered alongside a different cluster
        # must not poison the score: the result is the plain one
        cache = StageCache()
        other = make_cori_like_cluster(2, contention_enabled=False)
        assert not cache.matches(other, None)
        scored = score_placement(
            two_member_spec, colocated_placement,
            cluster=other, cache=cache,
        )
        plain = score_placement(
            two_member_spec, colocated_placement, cluster=other
        )
        assert scored.objective == plain.objective
        assert scored.ensemble_makespan == plain.ensemble_makespan
        # and nothing was cached through the mismatch
        assert cache.stage_misses == 0

    def test_matches_default_context(self):
        cache = StageCache()
        assert cache.matches(None, None)
        assert cache.matches(make_cori_like_cluster(2), None)
        assert not cache.matches(None, ParallelFilesystemDTL())


class TestDeltaEvaluation:
    def _flats(self, spec, num_nodes, cores_per_node):
        from repro.search.canonical import iter_canonical_assignments

        cores = component_core_demands(spec)
        return [
            list(a)
            for a in iter_canonical_assignments(
                cores, num_nodes, cores_per_node
            )
        ]

    def test_single_move_delta_equals_fresh(self, two_member_spec):
        cache = StageCache()
        flats = self._flats(two_member_spec, 3, 32)
        # walk consecutive canonical assignments; when they differ by
        # relocating components between exactly two nodes, delta-update
        for prev_flat, next_flat in zip(flats, flats[1:]):
            changed = frozenset(
                {a for a, b in zip(prev_flat, next_flat) if a != b}
                | {b for a, b in zip(prev_flat, next_flat) if a != b}
            )
            if not changed or len(changed) > 2:
                continue
            previous = cache.evaluate_flat(two_member_spec, prev_flat, 3)
            delta = cache.evaluate_flat(
                two_member_spec, next_flat, 3,
                changed_nodes=changed, previous=previous,
            )
            # non-delta evaluation on the same cache: signatures use
            # the same interning, so everything must agree exactly
            fresh = cache.evaluate_flat(two_member_spec, next_flat, 3)
            assert delta.indicators == fresh.indicators
            assert delta.makespans == fresh.makespans
            assert delta.sigs == fresh.sigs
            assert delta.worst_makespan == fresh.worst_makespan
            # and against a cold cache, the numeric terms still match
            cold = StageCache().evaluate_flat(
                two_member_spec, next_flat, 3
            )
            assert delta.indicators == cold.indicators
            assert delta.makespans == cold.makespans

    def test_untouched_member_carries_over_without_recompute(
        self, two_member_spec
    ):
        cache = StageCache()
        prev_flat = [0, 0, 1, 1]  # em1 on node 0, em2 on node 1
        next_flat = [0, 0, 2, 2]  # em2 relocated wholesale to node 2
        previous = cache.evaluate_flat(two_member_spec, prev_flat, 3)
        misses_before = cache.stage_misses
        delta = cache.evaluate_flat(
            two_member_spec, next_flat, 3,
            changed_nodes=frozenset({1, 2}), previous=previous,
        )
        # em1 never touched nodes 1 or 2: its terms are the same
        # objects, carried over, not recomputed
        assert delta.stages[0] is previous.stages[0]
        assert delta.indicators[0] == previous.indicators[0]
        # em2's new neighborhood (alone on a node) is the same local
        # signature as before, so even its re-signing hits the cache
        assert cache.stage_misses == misses_before
