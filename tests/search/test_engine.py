"""The fast search engine returns exactly what the seed search would.

Covers :func:`repro.search.engine.find_best_placement` against a
verbatim seed loop (reference enumerator + ``score_placement`` + first
strict optimum), the rewired :class:`ExhaustiveSearchPolicy`, the
incremental annealer's trajectory parity, robust ranking through the
cache, and the planner's probe memoization.
"""

from __future__ import annotations

import pytest

from repro.faults.analytic import RobustnessTerm
from repro.faults.models import RandomFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.scheduler.annealing import SimulatedAnnealingPolicy
from repro.scheduler.objectives import score_placement
from repro.scheduler.planner import ResourceConstrainedPlanner
from repro.scheduler.policies import ExhaustiveSearchPolicy
from repro.scheduler.robust import (
    crash_straggler_factory,
    rank_placements_robust,
)
from repro.search import find_best_placement
from repro.search.cache import StageCache
from repro.search.reference import enumerate_placements_reference
from repro.util.errors import PlacementError


def _seed_best(spec, num_nodes, cores_per_node, robustness=None):
    """The pre-engine search loop, verbatim: first strict optimum wins."""
    best = None
    evaluated = 0
    for placement in enumerate_placements_reference(
        spec, num_nodes, cores_per_node
    ):
        score = score_placement(spec, placement, robustness=robustness)
        evaluated += 1
        if best is None or score > best:
            best = score
    return best, evaluated


def _robustness_term():
    return RobustnessTerm(
        policy=RetryBackoffPolicy(),
        model=RandomFailureModel(rate=0.01, seed=0),
    )


class TestFindBestPlacement:
    def test_matches_seed_loop(self, two_member_spec):
        fast, fast_n = find_best_placement(two_member_spec, 3, 32)
        seed, seed_n = _seed_best(two_member_spec, 3, 32)
        assert fast_n == seed_n
        assert fast.placement == seed.placement
        assert fast.objective == seed.objective
        assert fast.ensemble_makespan == seed.ensemble_makespan
        assert fast.member_indicators == seed.member_indicators

    def test_matches_seed_loop_with_robustness(self, two_member_spec):
        term = _robustness_term()
        fast, fast_n = find_best_placement(
            two_member_spec, 3, 32, robustness=term
        )
        seed, seed_n = _seed_best(two_member_spec, 3, 32, robustness=term)
        assert fast_n == seed_n
        assert fast.placement == seed.placement
        assert fast.robust_penalty == seed.robust_penalty
        assert fast.utility == seed.utility

    def test_parallel_mode_same_winner(self, two_member_spec):
        serial, n_serial = find_best_placement(two_member_spec, 3, 32)
        parallel, n_parallel = find_best_placement(
            two_member_spec, 3, 32, parallel=True
        )
        assert n_parallel == n_serial
        assert parallel.placement == serial.placement
        assert parallel.objective == serial.objective

    def test_shared_cache_same_winner(self, two_member_spec):
        cache = StageCache()
        first, _ = find_best_placement(
            two_member_spec, 3, 32, cache=cache
        )
        misses = cache.stage_misses
        second, _ = find_best_placement(
            two_member_spec, 3, 32, cache=cache
        )
        assert cache.stage_misses == misses  # warm re-search: all hits
        assert second.placement == first.placement
        assert second.objective == first.objective

    def test_infeasible_budget_raises(self, two_member_spec):
        with pytest.raises(PlacementError):
            find_best_placement(two_member_spec, 1, 8)


class TestExhaustivePolicy:
    def test_policy_matches_engine(self, two_member_spec):
        policy = ExhaustiveSearchPolicy()
        placement = policy.place(two_member_spec, 3, 32)
        best, evaluated = find_best_placement(two_member_spec, 3, 32)
        assert placement == best.placement
        assert policy.evaluated == evaluated
        assert policy.evaluated > 0

    def test_policy_matches_seed_loop(self, two_member_spec):
        seed, _ = _seed_best(two_member_spec, 3, 32)
        placement = ExhaustiveSearchPolicy().place(two_member_spec, 3, 32)
        assert placement == seed.placement

    def test_parallel_policy_same_placement(self, two_member_spec):
        serial = ExhaustiveSearchPolicy().place(two_member_spec, 3, 32)
        parallel = ExhaustiveSearchPolicy(parallel=True).place(
            two_member_spec, 3, 32
        )
        assert parallel == serial


class TestIncrementalAnnealing:
    KWARGS = dict(plateau=20, cooling=0.8, min_temperature_ratio=1e-2)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_trajectory_parity(self, two_member_spec, seed):
        # the incremental annealer must make the same RNG draws, the
        # same acceptance decisions, and land on the same placement as
        # the full score-everything path
        full = SimulatedAnnealingPolicy(
            seed=seed, incremental=False, **self.KWARGS
        )
        fast = SimulatedAnnealingPolicy(
            seed=seed, incremental=True, **self.KWARGS
        )
        full_placement = full.place(two_member_spec, 3, 32)
        fast_placement = fast.place(two_member_spec, 3, 32)
        assert fast_placement == full_placement
        assert fast.stats.evaluations == full.stats.evaluations
        assert fast.stats.accepted == full.stats.accepted
        assert fast.stats.improved == full.stats.improved

    def test_trajectory_parity_with_robustness(self, two_member_spec):
        full = SimulatedAnnealingPolicy(
            seed=3, incremental=False,
            robustness=_robustness_term(), **self.KWARGS,
        )
        fast = SimulatedAnnealingPolicy(
            seed=3, incremental=True,
            robustness=_robustness_term(), **self.KWARGS,
        )
        full_placement = full.place(two_member_spec, 3, 32)
        fast_placement = fast.place(two_member_spec, 3, 32)
        assert fast_placement == full_placement
        assert fast.stats.accepted == full.stats.accepted

    def test_shared_cache_same_result(self, two_member_spec):
        cache = StageCache()
        a = SimulatedAnnealingPolicy(
            seed=5, cache=cache, **self.KWARGS
        ).place(two_member_spec, 3, 32)
        b = SimulatedAnnealingPolicy(
            seed=5, cache=cache, **self.KWARGS
        ).place(two_member_spec, 3, 32)
        assert a == b


class TestRobustRankingCache:
    def _candidates(self, two_member_spec):
        from repro.runtime.placement import (
            EnsemblePlacement,
            MemberPlacement,
        )

        return {
            "colocated": EnsemblePlacement(
                2, (MemberPlacement(0, (0,)), MemberPlacement(1, (1,)))
            ),
            "split": EnsemblePlacement(
                4, (MemberPlacement(0, (1,)), MemberPlacement(2, (3,)))
            ),
        }

    def test_surrogate_ranking_with_cache_identical(self, two_member_spec):
        candidates = self._candidates(two_member_spec)
        factory = crash_straggler_factory(0.05)
        policy = RetryBackoffPolicy()
        plain = rank_placements_robust(
            two_member_spec, candidates, factory, policy,
            method="surrogate",
        )
        cached = rank_placements_robust(
            two_member_spec, candidates, factory, policy,
            method="surrogate", cache=StageCache(),
        )
        assert [s.name for s in cached] == [s.name for s in plain]
        assert [s.objective for s in cached] == [
            s.objective for s in plain
        ]
        assert [s.mean_inflation for s in cached] == [
            s.mean_inflation for s in plain
        ]

    def test_parallel_ranking_identical(self, two_member_spec):
        candidates = self._candidates(two_member_spec)
        factory = crash_straggler_factory(0.05)
        policy = RetryBackoffPolicy()
        serial = rank_placements_robust(
            two_member_spec, candidates, factory, policy,
            method="surrogate",
        )
        parallel = rank_placements_robust(
            two_member_spec, candidates, factory, policy,
            method="surrogate", parallel=True,
        )
        assert [s.name for s in parallel] == [s.name for s in serial]
        assert [s.objective for s in parallel] == [
            s.objective for s in serial
        ]


class TestPlannerProbeMemoization:
    def test_probes_run_once_per_core_count(self, two_member_spec):
        planner = ResourceConstrainedPlanner()
        planner.plan(two_member_spec, 3)
        # the heuristic, its fallback, and the sweep may each walk the
        # candidate list, but every count is predicted at most once
        assert 0 < planner.probe_evaluations <= len(planner.core_counts)

    def test_cached_planner_same_plan(self, two_member_spec):
        plain = ResourceConstrainedPlanner().plan(two_member_spec, 3)
        cached = ResourceConstrainedPlanner(cache=StageCache()).plan(
            two_member_spec, 3
        )
        assert cached.placement == plain.placement
        assert cached.analysis_cores == plain.analysis_cores
        assert cached.score.objective == plain.score.objective
        assert (
            cached.score.ensemble_makespan
            == plain.score.ensemble_makespan
        )
