"""Batch/parallel scoring and parallel trials: identical to serial.

Parallelism in :mod:`repro.search.batch` and
:func:`repro.experiments.base.run_configuration_trials` is an opt-in
accelerator with a guaranteed serial fallback — on any host, with any
worker count, the results must equal the serial ones exactly.
"""

from __future__ import annotations

from repro.configs.generator import enumerate_placements
from repro.configs.table2 import get_config
from repro.experiments.base import run_configuration_trials
from repro.faults.analytic import RobustnessTerm
from repro.faults.models import RandomFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.scheduler.objectives import score_placement
from repro.search import MIN_PARALLEL_BATCH, score_placements_batch
from repro.search.cache import StageCache


def _same_scores(batch, serial):
    assert len(batch) == len(serial)
    for got, want in zip(batch, serial):
        assert got.placement == want.placement
        assert got.objective == want.objective
        assert got.ensemble_makespan == want.ensemble_makespan
        assert got.member_indicators == want.member_indicators
        assert got.robust_penalty == want.robust_penalty


class TestScorePlacementsBatch:
    def test_serial_batch_equals_map(self, two_member_spec):
        placements = list(enumerate_placements(two_member_spec, 3, 32))
        batch = score_placements_batch(two_member_spec, placements)
        serial = [
            score_placement(two_member_spec, p) for p in placements
        ]
        _same_scores(batch, serial)

    def test_parallel_flag_changes_nothing(self, two_member_spec):
        # with min_parallel lowered the pool path is exercised on
        # multi-core hosts and the fallback on single-core ones — the
        # contract is the same either way
        placements = list(enumerate_placements(two_member_spec, 3, 32))
        parallel = score_placements_batch(
            two_member_spec, placements, parallel=True, min_parallel=2
        )
        serial = [
            score_placement(two_member_spec, p) for p in placements
        ]
        _same_scores(parallel, serial)

    def test_parallel_with_explicit_processes(self, two_member_spec):
        placements = list(enumerate_placements(two_member_spec, 3, 32))
        parallel = score_placements_batch(
            two_member_spec, placements,
            parallel=True, processes=2, min_parallel=2,
        )
        serial = [
            score_placement(two_member_spec, p) for p in placements
        ]
        _same_scores(parallel, serial)

    def test_batch_with_robustness(self, two_member_spec):
        term = RobustnessTerm(
            policy=RetryBackoffPolicy(),
            model=RandomFailureModel(rate=0.01, seed=0),
        )
        placements = list(enumerate_placements(two_member_spec, 2, 32))
        batch = score_placements_batch(
            two_member_spec, placements, robustness=term
        )
        serial = [
            score_placement(two_member_spec, p, robustness=term)
            for p in placements
        ]
        _same_scores(batch, serial)

    def test_shared_cache_is_reused(self, two_member_spec):
        cache = StageCache()
        placements = list(enumerate_placements(two_member_spec, 3, 32))
        first = score_placements_batch(
            two_member_spec, placements, cache=cache
        )
        misses = cache.stage_misses
        second = score_placements_batch(
            two_member_spec, placements, cache=cache
        )
        assert cache.stage_misses == misses  # warm: no new predictions
        _same_scores(second, first)

    def test_small_batches_stay_serial_by_default(self, two_member_spec):
        placements = list(enumerate_placements(two_member_spec, 2, 32))
        assert len(placements) < MIN_PARALLEL_BATCH
        batch = score_placements_batch(
            two_member_spec, placements, parallel=True
        )
        serial = [
            score_placement(two_member_spec, p) for p in placements
        ]
        _same_scores(batch, serial)

    def test_empty_batch(self, two_member_spec):
        assert score_placements_batch(two_member_spec, []) == []


class TestParallelTrials:
    def test_parallel_trials_equal_serial(self):
        config = get_config("Cc")
        serial = run_configuration_trials(
            config, trials=3, n_steps=4, timing_noise=0.05
        )
        parallel = run_configuration_trials(
            config, trials=3, n_steps=4, timing_noise=0.05, parallel=True
        )
        assert [r.ensemble_makespan for r in parallel] == [
            r.ensemble_makespan for r in serial
        ]
        assert [r.ensemble_name for r in parallel] == [
            r.ensemble_name for r in serial
        ]

    def test_single_trial_parallel_flag_is_noop(self):
        config = get_config("Cc")
        serial = run_configuration_trials(
            config, trials=1, n_steps=4, timing_noise=0.0
        )
        parallel = run_configuration_trials(
            config, trials=1, n_steps=4, timing_noise=0.0, parallel=True
        )
        assert (
            parallel[0].ensemble_makespan == serial[0].ensemble_makespan
        )
