"""Property tests for the windowed drift detector.

The detector's contract is asymmetric: it must *never* fire on a
healthy node (ratios near 1.0, noise half-width well below the
threshold excess), and it must fire within one window of a genuine
step drift whose factor clears the threshold. The hysteresis and
minimum-dwell guards bound the alarm rate on a persistently slow
node.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reschedule.detector import DriftDetector
from repro.util.errors import ValidationError

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestNoFalseAlarms:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=20, max_value=60),
    )
    @settings(max_examples=100)
    def test_exact_ratios_never_fire(self, window, n_obs):
        """Zero drift + zero noise: every ratio is exactly 1.0."""
        detector = DriftDetector(window=window, threshold=1.25)
        for step in range(n_obs):
            assert detector.observe(0, 1.0, step) is None
        assert detector.alerts == []

    @given(seeds, st.floats(min_value=0.0, max_value=0.05))
    @settings(max_examples=150)
    def test_bounded_noise_never_fires(self, seed, noise):
        """Ratios within 1 +/- 0.05 cannot reach a 1.25 windowed mean."""
        import random

        gen = random.Random(seed)
        detector = DriftDetector(window=4, threshold=1.25)
        for step in range(64):
            ratio = 1.0 + gen.uniform(-noise, noise)
            for node in range(3):
                assert detector.observe(node, ratio, step) is None
        assert detector.alerts == []

    def test_partial_window_never_fires(self):
        """Even a huge ratio cannot alarm before the window fills."""
        detector = DriftDetector(window=6, threshold=1.25)
        for step in range(5):
            assert detector.observe(0, 10.0, step) is None
        assert detector.observe(0, 10.0, 5) is not None


class TestDetectionBound:
    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=1.5, max_value=4.0, allow_nan=False),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=150)
    def test_step_drift_detected_within_one_window(
        self, window, factor, onset
    ):
        """A clean step to ``factor`` >= threshold alarms within
        ``window`` observations of onset (once the window is full)."""
        detector = DriftDetector(window=window, threshold=1.25)
        step = 0
        for _ in range(onset):
            detector.observe(0, 1.0, step)
            step += 1
        fired_at = None
        for k in range(2 * window):
            alert = detector.observe(0, factor, step)
            if alert is not None:
                fired_at = k
                break
            step += 1
        assert fired_at is not None
        # worst case: the window must refill with drifted samples, and
        # the mean crosses 1.25 strictly before it is all-drifted
        assert fired_at <= window

    @given(
        st.floats(min_value=0.1, max_value=0.5, allow_nan=False),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=100)
    def test_ramp_drift_eventually_detected(self, increment, window):
        """A ramp grows without bound (pre-cap), so it must alarm."""
        detector = DriftDetector(window=window, threshold=1.25)
        fired = False
        for step in range(40):
            ratio = 1.0 + increment * step
            if detector.observe(0, ratio, step) is not None:
                fired = True
                break
        assert fired


class TestGuards:
    def test_hysteresis_blocks_until_release(self):
        detector = DriftDetector(
            window=2, threshold=1.5, hysteresis=0.5, min_dwell=1
        )
        assert detector.release == pytest.approx(1.25)
        assert detector.observe(0, 2.0, 0) is None  # filling
        assert detector.observe(0, 2.0, 1) is not None  # alarm, dis-arm
        # still above the release mean: stays dis-armed, never re-fires
        for step in range(2, 10):
            assert detector.observe(0, 1.6, step) is None
        # decay below release re-arms; the next threshold crossing fires
        assert detector.observe(0, 0.5, 10) is None  # mean 1.05 < 1.25
        assert detector.observe(0, 2.6, 11) is not None  # mean 1.55

    def test_min_dwell_spaces_alarms(self):
        detector = DriftDetector(
            window=1, threshold=1.25, hysteresis=0.0, min_dwell=5
        )
        # hysteresis=0 means release == 1.0: a ratio of 2.0 keeps the
        # node dis-armed, so drop to 0.5 between alarms to re-arm and
        # isolate the dwell guard.
        steps_fired = []
        for step in range(20):
            ratio = 2.0 if step % 2 == 0 else 0.5
            if detector.observe(0, ratio, step) is not None:
                steps_fired.append(step)
        assert len(steps_fired) >= 2
        gaps = [b - a for a, b in zip(steps_fired, steps_fired[1:])]
        assert all(gap >= 5 for gap in gaps)

    def test_nodes_are_independent(self):
        detector = DriftDetector(window=2, threshold=1.25)
        detector.observe(0, 3.0, 0)
        detector.observe(1, 1.0, 0)
        alert = detector.observe(0, 3.0, 1)
        assert alert is not None and alert.node == 0
        assert detector.observe(1, 1.0, 1) is None
        assert detector.mean_ratio(0) == pytest.approx(3.0)
        assert detector.mean_ratio(1) == pytest.approx(1.0)

    def test_reset_node_clears_window_and_rearms(self):
        detector = DriftDetector(window=2, threshold=1.25, min_dwell=1)
        detector.observe(0, 3.0, 0)
        assert detector.observe(0, 3.0, 1) is not None
        detector.reset_node(0)
        assert detector.mean_ratio(0) == 1.0
        # window cleared: one sample is not enough to alarm again
        assert detector.observe(0, 3.0, 5) is None
        assert detector.observe(0, 3.0, 6) is not None

    def test_mean_ratio_defaults_to_unity(self):
        assert DriftDetector().mean_ratio(7) == 1.0


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            DriftDetector(threshold=1.0)
        with pytest.raises(ValidationError):
            DriftDetector(hysteresis=1.5)
        with pytest.raises(ValidationError):
            DriftDetector(window=0)
        with pytest.raises(ValidationError):
            DriftDetector(min_dwell=0)
