"""Property tests for drift events, schedules, and coercion.

Drift is the stimulus the rescheduling loop reacts to; these
properties pin the schedule algebra the executor and the zero-drift
byte-identity guarantee rely on: factors are 1.0 before onset, step
events are flat, ramp events are monotone and saturate at the cap,
events on one node compose multiplicatively, and empty schedules
collapse to ``None`` so the executor's hot path stays a single
``is None`` test.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reschedule.drift import (
    DEFAULT_DRIFT_STAGES,
    DriftEvent,
    DriftKind,
    DriftSchedule,
    RandomDriftModel,
    StaticDriftModel,
    coerce_drift,
)
from repro.util.errors import ValidationError


@st.composite
def drift_events(draw, max_node=3, max_start=8):
    """A valid :class:`DriftEvent` honouring the per-kind envelopes."""
    kind = draw(st.sampled_from(list(DriftKind)))
    if kind is DriftKind.STEP:
        magnitude = draw(
            st.floats(
                min_value=1.0,
                max_value=5.0,
                exclude_min=True,
                allow_nan=False,
            )
        )
    else:
        magnitude = draw(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
        )
    return DriftEvent(
        node=draw(st.integers(min_value=0, max_value=max_node)),
        kind=kind,
        start_step=draw(st.integers(min_value=0, max_value=max_start)),
        magnitude=magnitude,
        cap=draw(st.floats(min_value=1.0, max_value=6.0, allow_nan=False)),
    )


@st.composite
def drift_schedules(draw, max_events=5):
    events = draw(st.lists(drift_events(), min_size=0, max_size=max_events))
    return DriftSchedule(events)


class TestEventEnvelope:
    @given(drift_events())
    @settings(max_examples=200)
    def test_unit_factor_before_onset(self, event):
        for step in range(event.start_step):
            assert event.factor_at(step) == 1.0

    @given(drift_events(), st.integers(min_value=0, max_value=40))
    @settings(max_examples=200)
    def test_factor_never_exceeds_cap(self, event, step):
        assert 1.0 <= event.factor_at(step) <= max(event.cap, 1.0)

    @given(drift_events())
    @settings(max_examples=200)
    def test_step_kind_is_flat_after_onset(self, event):
        if event.kind is not DriftKind.STEP:
            return
        expected = min(event.magnitude, event.cap)
        values = {
            event.factor_at(step)
            for step in range(event.start_step, event.start_step + 10)
        }
        assert values == {expected}

    @given(drift_events())
    @settings(max_examples=200)
    def test_ramp_is_monotone_and_saturates(self, event):
        if event.kind is not DriftKind.RAMP:
            return
        factors = [
            event.factor_at(step)
            for step in range(event.start_step, event.start_step + 50)
        ]
        assert factors == sorted(factors)
        # with a per-step increment > 0 a long enough ramp must hit the cap
        horizon = event.start_step + int(event.cap / event.magnitude) + 2
        assert event.factor_at(horizon) == event.cap

    def test_validation_rejects_bad_magnitudes(self):
        with pytest.raises(ValidationError):
            DriftEvent(0, DriftKind.STEP, 0, 1.0)  # factor must be > 1
        with pytest.raises(ValidationError):
            DriftEvent(0, DriftKind.RAMP, 0, 0.0)  # increment must be > 0
        with pytest.raises(ValidationError):
            DriftEvent(-1, DriftKind.STEP, 0, 2.0)
        with pytest.raises(ValidationError):
            DriftEvent(0, DriftKind.STEP, -1, 2.0)
        with pytest.raises(ValidationError):
            DriftEvent(0, DriftKind.STEP, 0, 2.0, cap=0.5)
        with pytest.raises(ValidationError):
            DriftEvent(0, DriftKind.STEP, 0, 2.0, stages=("X",))


class TestScheduleAlgebra:
    @given(drift_schedules(), st.integers(min_value=0, max_value=12))
    @settings(max_examples=150)
    def test_factor_composes_multiplicatively_per_node(self, schedule, step):
        for node in range(5):
            expected = 1.0
            for event in schedule.events:
                if event.node == node and "S" in event.stages:
                    expected *= event.factor_at(step)
            assert schedule.factor(node, "S", step) == pytest.approx(
                expected
            )

    @given(drift_schedules())
    @settings(max_examples=100)
    def test_events_sorted_by_node_then_onset(self, schedule):
        keys = [(e.node, e.start_step) for e in schedule.events]
        assert keys == sorted(keys)

    def test_stage_filter_applies(self):
        event = DriftEvent(0, DriftKind.STEP, 0, 2.0, stages=("S",))
        schedule = DriftSchedule([event])
        assert schedule.factor(0, "S", 0) == 2.0
        assert schedule.factor(0, "A", 0) == 1.0  # not targeted
        assert schedule.factor(1, "S", 0) == 1.0  # other node

    def test_default_stages_are_compute(self):
        assert DEFAULT_DRIFT_STAGES == ("S", "A")


class TestCoercion:
    def test_none_and_empty_collapse_to_none(self):
        assert coerce_drift(None, 4, 8) is None
        assert coerce_drift(DriftSchedule(), 4, 8) is None
        assert coerce_drift(StaticDriftModel(()), 4, 8) is None
        assert coerce_drift(RandomDriftModel(rate=0.0), 4, 8) is None

    def test_schedule_passes_through(self):
        schedule = DriftSchedule([DriftEvent(0, DriftKind.STEP, 0, 2.0)])
        assert coerce_drift(schedule, 4, 8) is schedule

    def test_static_model_validates_geometry(self):
        model = StaticDriftModel(
            (DriftEvent(5, DriftKind.STEP, 0, 2.0),)
        )
        with pytest.raises(ValidationError):
            coerce_drift(model, 4, 8)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            coerce_drift(object(), 4, 8)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50)
    def test_random_model_is_seed_deterministic(self, seed):
        first = RandomDriftModel(rate=0.5, seed=seed).build_schedule(6, 8)
        second = RandomDriftModel(rate=0.5, seed=seed).build_schedule(6, 8)
        assert [repr(e) for e in first.events] == [
            repr(e) for e in second.events
        ]
