"""End-to-end guarantees of the rescheduling loop on real DES runs.

Three contracts, in increasing strength:

- **byte-identity** — a run with the controller attached and *zero*
  drift produces a trace record-for-record identical to a bare run
  (the hooks read, never schedule);
- **invariants under migration** — scripted exact-mode migrations and
  detector-driven migrations both keep every
  :class:`~repro.verify.invariants.InvariantChecker` check green
  (segmented Eq. 1 periods, conservation, DTL accounting);
- **the point of the exercise** — on the canonical drift scenario the
  closed loop beats the static placement by a clear margin (the
  committed benchmark floors this at 15%).
"""

import pytest

from repro.runtime.executor import EnsembleExecutor
from repro.reschedule import (
    DriftEvent,
    DriftKind,
    RescheduleController,
    ScriptedMigration,
    StaticDriftModel,
)
from repro.runtime import run_ensemble
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member


def _spec(n_steps: int = 16) -> EnsembleSpec:
    return EnsembleSpec(
        "drift",
        tuple(
            default_member(f"em{i}", num_analyses=1, n_steps=n_steps)
            for i in range(3)
        ),
    )


def _placement() -> EnsemblePlacement:
    """Members packed one per node; node 3 idle (the escape hatch)."""
    return EnsemblePlacement(
        4, tuple(MemberPlacement(i, (i,)) for i in range(3))
    )


def _drift() -> StaticDriftModel:
    """Node 0 slows 2.5x from step 4 — the canonical scenario."""
    return StaticDriftModel(
        (DriftEvent(node=0, kind=DriftKind.STEP, start_step=4, magnitude=2.5),)
    )


def _controller(**overrides) -> RescheduleController:
    knobs = dict(window=4, threshold=1.2, min_dwell=4, max_migrations=4)
    knobs.update(overrides)
    return RescheduleController(**knobs)


class TestZeroDriftByteIdentity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_controller_is_trace_invisible_without_drift(self, seed):
        spec, placement = _spec(n_steps=6), _placement()
        bare = run_ensemble(
            spec, placement, seed=seed, timing_noise=0.02
        )
        watched = run_ensemble(
            spec,
            placement,
            seed=seed,
            timing_noise=0.02,
            rescheduler=_controller(),
        )
        assert watched.tracer.records == bare.tracer.records
        assert watched.ensemble_makespan == bare.ensemble_makespan

    def test_controller_observed_but_never_migrated(self):
        spec, placement = _spec(n_steps=6), _placement()
        controller = _controller()
        run_ensemble(
            spec,
            placement,
            seed=0,
            timing_noise=0.02,
            rescheduler=controller,
        )
        summary = controller.summary()
        assert summary["observations"] > 0
        assert summary["migrations"] == 0
        assert summary["alerts"] == 0
        assert summary["migration_records"] == []


class TestScriptedMigrationInvariants:
    def test_exact_mode_migration_passes_invariants(self):
        """Noise-free, drift-free run through a forced migration: the
        checker's exact mode tolerates zero slack, so any accounting
        error in the segmented periods or the transfer pause fails."""
        spec, placement = _spec(n_steps=8), _placement()
        target = EnsemblePlacement(
            4,
            (
                MemberPlacement(3, (3,)),  # em0 moves 0 -> 3
                MemberPlacement(1, (1,)),
                MemberPlacement(2, (2,)),
            ),
        )
        controller = _controller(
            scripted=(ScriptedMigration(step=3, placement=target),)
        )
        executor = EnsembleExecutor(
            spec=spec,
            placement=placement,
            seed=None,
            timing_noise=0.0,
            rescheduler=controller,
            verify=True,
        )
        executor.run()  # raises InvariantViolation on any failed check
        assert executor.invariant_report is not None
        assert executor.invariant_report.passed, (
            executor.invariant_report.to_text()
        )
        assert controller.migrations_executed == 1
        assert controller.components_moved == 2
        moves = controller.migration_log[0].moves
        assert {(m.from_node, m.to_node) for m in moves} == {(0, 3)}
        assert all(m.cost > 0 for m in moves)

    def test_migration_delay_is_charged(self):
        """The migrating member pays its transfer bill in DES time."""
        spec, placement = _spec(n_steps=8), _placement()
        target = EnsemblePlacement(
            4,
            (
                MemberPlacement(3, (3,)),
                MemberPlacement(1, (1,)),
                MemberPlacement(2, (2,)),
            ),
        )
        controller = _controller(
            scripted=(ScriptedMigration(step=3, placement=target),)
        )
        run_ensemble(
            spec,
            placement,
            seed=None,
            timing_noise=0.0,
            rescheduler=controller,
        )
        record = controller.migration_log[0]
        assert record.delay > 0.0
        assert record.end - record.start == pytest.approx(record.delay)


class TestClosedLoopUnderDrift:
    @pytest.fixture(scope="class")
    def scenario(self):
        spec, placement = _spec(n_steps=16), _placement()
        static = run_ensemble(
            spec, placement, seed=0, timing_noise=0.02, drift=_drift()
        )
        controller = _controller()
        executor = EnsembleExecutor(
            spec=spec,
            placement=placement,
            seed=0,
            timing_noise=0.02,
            drift=_drift(),
            rescheduler=controller,
            verify=True,
        )
        rescheduled = executor.run()
        return static, rescheduled, controller, executor

    def test_invariants_hold_through_real_migrations(self, scenario):
        _, _, controller, executor = scenario
        assert controller.migrations_executed >= 1
        assert executor.invariant_report is not None
        assert executor.invariant_report.passed, (
            executor.invariant_report.to_text()
        )

    def test_makespan_improves_by_floor_margin(self, scenario):
        """The acceptance floor: >= 15% on the canonical scenario."""
        static, rescheduled, _, _ = scenario
        improvement = 1.0 - (
            rescheduled.ensemble_makespan / static.ensemble_makespan
        )
        assert improvement >= 0.15

    def test_migration_escapes_the_drifted_node(self, scenario):
        _, _, controller, _ = scenario
        moved_off = [
            move
            for record in controller.migration_log
            for move in record.moves
            if move.from_node == 0
        ]
        assert moved_off
        assert all(move.to_node != 0 for move in moved_off)

    def test_summary_is_json_ready(self, scenario):
        import json

        _, _, controller, _ = scenario
        payload = json.loads(json.dumps(controller.summary()))
        assert payload["replans_triggered"] >= payload["replans_accepted"]
        assert payload["migrations"] == controller.migrations_executed
        assert len(payload["migration_records"]) >= 1
