"""Single-ensemble degeneration: tier-0 float identity with the search.

The complete-partition rule guarantees a one-ensemble stream hands its
only resident the whole cluster, so the co-scheduler's winning score
must be *float-identical* to calling ``find_best_placement`` directly —
property-tested here and asserted at tolerance 0.0 by the differential
oracle's ``search-vs-coschedule`` tier (whose teeth are proven by a
mutated hook).
"""

import dataclasses

from hypothesis import assume, given, settings

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.coschedule import CoScheduler, EnsembleRequest
from repro.search.engine import find_best_placement
from repro.util.errors import PlacementError
from repro.verify.oracles import run_differential_oracle
from tests.strategies import search_grids

loop_settings = settings(max_examples=10, deadline=None)


class TestDegenerationProperty:
    @given(grid=search_grids())
    @loop_settings
    def test_one_ensemble_stream_equals_direct_search(self, grid):
        spec, num_nodes, cores_per_node = grid
        try:
            direct, _ = find_best_placement(spec, num_nodes, cores_per_node)
        except PlacementError:
            assume(False)
        result = CoScheduler(
            total_nodes=num_nodes, cores_per_node=cores_per_node
        ).run([EnsembleRequest(name=spec.name, spec=spec)])
        assert len(result.completions) == 1
        score = result.completions[0].score
        assert score.objective == direct.objective
        assert score.ensemble_makespan == direct.ensemble_makespan
        assert score.utility == direct.utility
        assert score.member_indicators == direct.member_indicators
        assert score.placement == direct.placement


class TestOracleTier:
    def test_oracle_coschedule_tier_passes_on_table2(self):
        config = TABLE2_CONFIGS["C1.1"]
        report = run_differential_oracle(
            build_spec(config, n_steps=4),
            config.placement(),
            scenario="coschedule-degeneration",
        )
        tier = [
            check
            for check in report.checks
            if check.paths == "search-vs-coschedule"
        ]
        assert tier, "the coschedule tier must run on the default context"
        assert all(check.tolerance == 0.0 for check in tier)
        assert all(check.ok for check in tier)

    def test_oracle_tier_skipped_off_default_context(self, cori3):
        config = TABLE2_CONFIGS["C1.1"]
        report = run_differential_oracle(
            build_spec(config, n_steps=4),
            config.placement(),
            cluster=cori3,
            scenario="coschedule-degeneration-skip",
        )
        assert not [
            check
            for check in report.checks
            if check.paths == "search-vs-coschedule"
        ]

    def test_oracle_tier_has_teeth(self):
        """A co-scheduler whose winner drifts by one ulp must fail."""

        def mutated(spec, total_nodes, cores_per_node):
            result = CoScheduler(
                total_nodes=total_nodes, cores_per_node=cores_per_node
            ).run([EnsembleRequest(name=spec.name, spec=spec)])
            score = result.completions[0].score
            return dataclasses.replace(
                score, objective=score.objective * (1.0 + 1e-15)
            )

        config = TABLE2_CONFIGS["C1.1"]
        report = run_differential_oracle(
            build_spec(config, n_steps=4),
            config.placement(),
            coschedule_fn=mutated,
            scenario="coschedule-mutation",
        )
        assert not report.passed
        assert any(
            check.paths == "search-vs-coschedule" and not check.ok
            for check in report.failures
        )
