"""Event-loop behaviors: conservation over time, elasticity, queueing."""

from hypothesis import given, settings

from repro.coschedule import (
    CoScheduler,
    canonical_mixed_deadline_stream,
    coschedule_counters,
    fifo_exclusive_schedule,
    reset_coschedule_counters,
)
from repro.coschedule.requests import EnsembleRequest, MembershipEvent
from repro.runtime.spec import EnsembleSpec, default_member
from tests.strategies import ensemble_stream

loop_settings = settings(max_examples=8, deadline=None)


def _member(name):
    return default_member(name, n_steps=4, sim_cores=16, ana_cores=8)


def _spec(name, members=1):
    return EnsembleSpec(
        name, tuple(_member(f"{name}-m{i}") for i in range(members))
    )


class TestConservationOverTime:
    @given(stream=ensemble_stream(max_requests=3))
    @loop_settings
    def test_no_oversubscription_at_any_event_time(self, stream):
        """At every allocation instant, the used-node sets of resident
        ensembles are pairwise disjoint and fit inside the cluster."""
        total_nodes = 4
        result = CoScheduler(total_nodes=total_nodes).run(stream)
        allocations = [
            event for event in result.timeline if event.kind == "allocation"
        ]
        assert allocations, "every run re-partitions at least once"
        for event in allocations:
            claimed = set()
            for entry in event.detail["entries"]:
                used = set(entry["used_node_list"])
                assert used.isdisjoint(claimed)
                assert all(0 <= node < total_nodes for node in used)
                block = set(
                    range(
                        entry["node_offset"],
                        entry["node_offset"] + entry["num_nodes"],
                    )
                )
                assert used <= block
                claimed |= used
            assert len(claimed) <= total_nodes

    @given(stream=ensemble_stream(max_requests=3))
    @loop_settings
    def test_every_admitted_ensemble_completes(self, stream):
        result = CoScheduler(total_nodes=4).run(stream)
        completed = {completion.name for completion in result.completions}
        assert set(result.admitted) == completed
        for completion in result.completions:
            assert completion.nodes_granted >= 1
            assert completion.finished_at >= completion.started_at


class TestElasticMembership:
    def test_leave_shrinks_and_join_grows_the_resident(self):
        events = (
            MembershipEvent(10.0, "leave", "ela-m1"),
            MembershipEvent(20.0, "join", "late", member=_member("late")),
        )
        request = EnsembleRequest(
            name="ela", spec=_spec("ela", members=2), membership=events
        )
        result = CoScheduler(total_nodes=4).run([request])
        membership = [
            event for event in result.timeline if event.kind == "membership"
        ]
        assert [e.detail["action"] for e in membership] == ["leave", "join"]
        assert [e.detail["members_now"] for e in membership] == [1, 2]
        assert result.completion("ela").reason == "completed"

    def test_membership_repartition_bills_migrations_through_dtl(self):
        events = (MembershipEvent(5.0, "leave", "mig-m1"),)
        request = EnsembleRequest(
            name="mig", spec=_spec("mig", members=3), membership=events
        )
        result = CoScheduler(total_nodes=4).run([request])
        completion = result.completion("mig")
        # the shrink re-partitions onto a different placement, so the
        # surviving members move and the DTL bills the state transfer
        assert completion.migrations > 0
        assert completion.migration_cost > 0.0

    def test_all_members_leaving_completes_the_ensemble(self):
        events = (MembershipEvent(5.0, "leave", "van-m0"),)
        request = EnsembleRequest(
            name="van", spec=_spec("van", members=1), membership=events
        )
        result = CoScheduler(total_nodes=2).run([request])
        completion = result.completion("van")
        assert completion.reason == "all members left"
        assert completion.finished_at < completion.started_at + 10.0

    def test_membership_after_finish_is_skipped_not_applied(self):
        # offset far beyond the ensemble's makespan: the event fires
        # after completion and must be recorded as skipped
        events = (MembershipEvent(1e9, "leave", "gone-m0"),)
        request = EnsembleRequest(
            name="gone", spec=_spec("gone", members=2), membership=events
        )
        result = CoScheduler(total_nodes=4).run([request])
        skipped = [
            event
            for event in result.timeline
            if event.kind == "membership-skipped"
        ]
        assert len(skipped) == 1
        assert skipped[0].detail["name"] == "gone"


class TestQueueing:
    def test_queued_request_dequeues_on_finish(self):
        # 4 two-member ensembles on 4 nodes: floors are 2+2, the third
        # arrival must queue and dequeue when a resident finishes
        stream = [
            EnsembleRequest(
                name=f"q{i}",
                spec=_spec(f"q{i}", members=2),
                arrival_time=float(i),
            )
            for i in range(3)
        ]
        result = CoScheduler(total_nodes=4).run(stream)
        kinds = {d.request: [x for x in result.decisions if x.request == d.request] for d in result.decisions}
        q2 = kinds["q2"]
        assert q2[0].action.value == "queue"
        assert q2[-1].action.value == "accept"
        assert "dequeued" in q2[-1].reason
        assert len(result.completions) == 3

    def test_higher_priority_dequeues_first(self):
        blocker = EnsembleRequest(
            name="blocker", spec=_spec("blocker", members=2), arrival_time=0.0
        )
        low = EnsembleRequest(
            name="low",
            spec=_spec("low", members=2),
            arrival_time=1.0,
            priority=0,
        )
        high = EnsembleRequest(
            name="high",
            spec=_spec("high", members=2),
            arrival_time=2.0,
            priority=5,
        )
        result = CoScheduler(total_nodes=2).run([blocker, low, high])
        accepts = [
            d.request
            for d in result.decisions
            if d.action.value == "accept" and "dequeued" in d.reason
        ]
        assert accepts.index("high") < accepts.index("low")


class TestUtilizationAndCounters:
    def test_canonical_stream_beats_fifo_by_the_bench_floor(self):
        stream = canonical_mixed_deadline_stream()
        result = CoScheduler(total_nodes=6).run(stream)
        fifo = fifo_exclusive_schedule(stream, 6)
        assert result.utilization >= 1.20 * fifo.utilization

    def test_counters_track_one_run(self):
        reset_coschedule_counters()
        CoScheduler(total_nodes=4).run(
            [EnsembleRequest(name="c", spec=_spec("c"))]
        )
        counters = coschedule_counters()
        assert counters["streams"] == 1
        assert counters["arrivals"] == 1
        assert counters["admitted"] == 1
        assert counters["completions"] == 1
        assert counters["repartitions"] >= 1

    def test_empty_stream_is_a_noop_schedule(self):
        result = CoScheduler(total_nodes=4).run([])
        assert result.completions == ()
        assert result.makespan == 0.0
        assert result.utilization == 0.0
