"""Cluster-level co-scheduling: property and behavior suites."""
