"""Admission determinism and decision-evidence properties.

The headline property (ISSUE 10): the same request stream produces
*byte-identical* decision logs — asserted via ``decisions_digest`` on
independently constructed controllers and full scheduler runs.
"""

from hypothesis import given, settings

from repro.coschedule import (
    AdmissionAction,
    AdmissionController,
    CoScheduler,
    decisions_digest,
)
from repro.coschedule.requests import EnsembleRequest
from repro.runtime.spec import EnsembleSpec, default_member
from tests.strategies import ensemble_stream

#: CoScheduler-running properties search real placements per example,
#: so the example budget is small and the deadline is off.
loop_settings = settings(max_examples=8, deadline=None)


def _spec(name, members=1, sim_cores=16, ana_cores=8):
    return EnsembleSpec(
        name,
        tuple(
            default_member(
                f"{name}-m{i}",
                n_steps=4,
                sim_cores=sim_cores,
                ana_cores=ana_cores,
            )
            for i in range(members)
        ),
    )


class TestDecisionDeterminism:
    @given(stream=ensemble_stream())
    @loop_settings
    def test_controller_decisions_are_byte_identical(self, stream):
        logs = []
        for _ in range(2):
            controller = AdmissionController(total_nodes=4)
            logs.append(
                [
                    controller.decide(request, free_nodes=4, now=0.0)
                    for request in stream
                ]
            )
        assert logs[0] == logs[1]
        assert decisions_digest(logs[0]) == decisions_digest(logs[1])

    @given(stream=ensemble_stream(max_requests=3))
    @loop_settings
    def test_full_runs_share_one_decisions_digest(self, stream):
        first = CoScheduler(total_nodes=4).run(stream)
        second = CoScheduler(total_nodes=4).run(stream)
        assert first.decisions_digest() == second.decisions_digest()
        assert first.digest() == second.digest()


class TestDecisionEvidence:
    def test_accept_when_minimum_grant_fits(self):
        controller = AdmissionController(total_nodes=4)
        request = EnsembleRequest(name="fits", spec=_spec("fits"))
        decision = controller.decide(request, free_nodes=4, now=5.0)
        assert decision.action is AdmissionAction.ACCEPT
        assert decision.min_feasible_nodes == 1
        assert decision.feasible_placements > 0
        assert decision.time == 5.0
        assert "admitted" in decision.reason

    def test_queue_when_headroom_too_small(self):
        controller = AdmissionController(total_nodes=4)
        request = EnsembleRequest(name="waits", spec=_spec("waits"))
        decision = controller.decide(request, free_nodes=0, now=0.0)
        assert decision.action is AdmissionAction.QUEUE
        assert "queued" in decision.reason
        assert decision.free_nodes == 0

    def test_reject_infeasible_spec_names_the_cap(self):
        controller = AdmissionController(total_nodes=2, cores_per_node=8)
        # 64-core members cannot fit an 8-core node at any grant
        request = EnsembleRequest(
            name="huge", spec=_spec("huge", sim_cores=64, ana_cores=64)
        )
        decision = controller.decide(request, free_nodes=2, now=0.0)
        assert decision.action is AdmissionAction.REJECT
        assert decision.min_feasible_nodes is None
        assert "infeasible" in decision.reason
        assert "2 x 8 cores" in decision.reason

    def test_reject_unmeetable_deadline_reports_makespan(self):
        controller = AdmissionController(total_nodes=2)
        request = EnsembleRequest(
            name="rush", spec=_spec("rush"), deadline=0.001
        )
        decision = controller.decide(request, free_nodes=2, now=0.0)
        assert decision.action is AdmissionAction.REJECT
        assert "deadline unmeetable" in decision.reason
        assert decision.predicted_makespan is not None
        assert decision.predicted_makespan > request.deadline

    def test_robust_rate_inflates_predicted_makespan(self):
        plain = AdmissionController(total_nodes=2)
        robust = AdmissionController(total_nodes=2, robust_rate=0.1)
        request = EnsembleRequest(name="r", spec=_spec("r"))
        assert robust.predicted_makespan(request) > plain.predicted_makespan(
            request
        )

    def test_grant_cap_respects_max_nodes(self):
        controller = AdmissionController(total_nodes=8)
        capped = EnsembleRequest(name="c", spec=_spec("c"), max_nodes=3)
        uncapped = EnsembleRequest(name="u", spec=_spec("u"))
        assert controller.grant_cap(capped) == 3
        assert controller.grant_cap(uncapped) == 8

    def test_min_feasible_nodes_memo_is_transparent(self):
        controller = AdmissionController(total_nodes=4)
        spec = _spec("memo")
        first = controller.min_feasible_nodes(spec)
        second = controller.min_feasible_nodes(spec)
        assert first == second == 1
