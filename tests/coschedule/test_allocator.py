"""Allocator properties: conservation, completeness, fairness bounds."""

import pytest
from hypothesis import given, settings

from repro.coschedule.allocator import (
    ClusterAllocator,
    ClusterObjective,
    ResidentWorkload,
)
from repro.runtime.spec import EnsembleSpec, default_member
from repro.util.errors import PlacementError, ValidationError
from tests.strategies import ensemble_stream

loop_settings = settings(max_examples=8, deadline=None)


def _spec(name, members=1):
    return EnsembleSpec(
        name,
        tuple(
            default_member(
                f"{name}-m{i}", n_steps=4, sim_cores=16, ana_cores=8
            )
            for i in range(members)
        ),
    )


def _workloads(stream):
    return [
        ResidentWorkload(
            name=request.name,
            spec=request.spec,
            weight=request.weight,
            deadline_at=request.deadline_at,
            min_nodes=request.min_nodes,
            max_nodes=request.max_nodes,
        )
        for request in stream
    ]


class TestClusterObjective:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError, match="utility_weight"):
            ClusterObjective(utility_weight=-1.0)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            ClusterObjective(
                utility_weight=0.0,
                fairness_weight=0.0,
                deadline_weight=0.0,
            )

    def test_empty_entries_value_is_zero(self):
        assert ClusterObjective().evaluate(()) == 0.0


class TestAllocationConservation:
    @given(stream=ensemble_stream(max_requests=3))
    @loop_settings
    def test_blocks_are_disjoint_and_partition_is_complete(self, stream):
        total_nodes = 4
        allocator = ClusterAllocator(total_nodes)
        try:
            allocation = allocator.allocate(_workloads(stream))
        except PlacementError:
            # over-committed streams (minimum footprints exceed the
            # cluster) are the admission controller's job to keep out
            return
        # contiguous blocks never overlap and never leave the cluster
        claimed = set()
        for entry in allocation.entries:
            block = set(
                range(entry.node_offset, entry.node_offset + entry.num_nodes)
            )
            assert block.isdisjoint(claimed)
            assert all(0 <= node < total_nodes for node in block)
            claimed |= block
        # the partition is complete up to the residents' combined cap
        caps = sum(
            min(total_nodes, r.max_nodes or total_nodes) for r in _workloads(stream)
        )
        assert allocation.nodes_used == min(total_nodes, caps)
        # each physical placement stays inside its own block
        for entry in allocation.entries:
            physical = entry.physical_placement(total_nodes)
            used = {
                node for mp in physical.members for node in mp.used_nodes
            }
            assert used <= set(
                range(entry.node_offset, entry.node_offset + entry.num_nodes)
            )

    @given(stream=ensemble_stream(max_requests=3))
    @loop_settings
    def test_allocation_is_deterministic(self, stream):
        results = []
        for _ in range(2):
            allocator = ClusterAllocator(4)
            try:
                results.append(allocator.allocate(_workloads(stream)))
            except PlacementError:
                results.append(None)
        assert (results[0] is None) == (results[1] is None)
        if results[0] is not None:
            assert results[0].to_dict() == results[1].to_dict()


class TestFairnessBounds:
    @given(stream=ensemble_stream(max_requests=3))
    @loop_settings
    def test_max_min_never_starves_a_resident(self, stream):
        """Under the max-min objective every resident keeps a feasible
        grant — at least its feasibility minimum, never zero nodes."""
        allocator = ClusterAllocator(
            4, objective=ClusterObjective(fairness_weight=1.0)
        )
        workloads = _workloads(stream)
        try:
            allocation = allocator.allocate(workloads)
        except PlacementError:
            return
        assert len(allocation.entries) == len(workloads)
        for workload, entry in zip(workloads, allocation.entries):
            assert entry.name == workload.name
            assert entry.num_nodes >= workload.min_nodes
            assert entry.score.utility == entry.score.utility  # not NaN

    def test_fairness_weight_can_change_the_partition(self):
        """A big-priority resident hoards under the weighted sum; the
        fairness term pulls the partition back toward the small one."""
        residents = [
            ResidentWorkload(name="big", spec=_spec("big", members=2), weight=9.0),
            ResidentWorkload(name="small", spec=_spec("small"), weight=1.0),
        ]
        plain = ClusterAllocator(6).allocate(residents)
        fair = ClusterAllocator(
            6, objective=ClusterObjective(fairness_weight=50.0)
        ).allocate(residents)
        plain_min = min(e.score.utility for e in plain.entries)
        fair_min = min(e.score.utility for e in fair.entries)
        assert fair_min >= plain_min


class TestGreedyFallback:
    def test_greedy_matches_completeness_of_exhaustive(self):
        residents = [
            ResidentWorkload(name="a", spec=_spec("a")),
            ResidentWorkload(name="b", spec=_spec("b")),
        ]
        exhaustive = ClusterAllocator(4).allocate(residents)
        greedy = ClusterAllocator(4, max_partitions=1).allocate(residents)
        assert exhaustive.exhaustive
        assert not greedy.exhaustive
        assert greedy.nodes_used == exhaustive.nodes_used == 4

    def test_single_resident_greedy_takes_whole_cluster(self):
        residents = [ResidentWorkload(name="solo", spec=_spec("solo"))]
        greedy = ClusterAllocator(3, max_partitions=1).allocate(residents)
        assert greedy.entries[0].num_nodes == 3


class TestOverCommit:
    def test_minimum_footprints_beyond_cluster_raise(self):
        # three 2-member ensembles need >= 2 nodes each on 32 cores
        residents = [
            ResidentWorkload(name=f"r{i}", spec=_spec(f"r{i}", members=3))
            for i in range(4)
        ]
        with pytest.raises(PlacementError, match="exceed"):
            ClusterAllocator(4).allocate(residents)

    def test_infeasible_resident_named_in_error(self):
        residents = [
            ResidentWorkload(
                name="giant",
                spec=EnsembleSpec(
                    "giant",
                    (
                        default_member(
                            "giant-m0",
                            n_steps=4,
                            sim_cores=64,
                            ana_cores=64,
                        ),
                    ),
                ),
            )
        ]
        with pytest.raises(PlacementError, match="giant"):
            ClusterAllocator(2, cores_per_node=8).allocate(residents)
