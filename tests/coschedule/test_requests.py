"""Validation envelope of the request/membership value objects."""

import pytest

from repro.coschedule.requests import (
    EnsembleRequest,
    MembershipEvent,
    validate_stream,
)
from repro.runtime.spec import EnsembleSpec, default_member
from repro.util.errors import ValidationError


def _spec(name="req", members=1):
    return EnsembleSpec(
        name,
        tuple(
            default_member(f"{name}-m{i}", n_steps=4) for i in range(members)
        ),
    )


class TestMembershipEvent:
    def test_join_carries_matching_member(self):
        member = default_member("late", n_steps=4)
        event = MembershipEvent(10.0, "join", "late", member=member)
        assert event.member is member

    def test_join_without_member_rejected(self):
        with pytest.raises(ValidationError, match="needs the MemberSpec"):
            MembershipEvent(10.0, "join", "late")

    def test_join_name_mismatch_rejected(self):
        member = default_member("other", n_steps=4)
        with pytest.raises(ValidationError, match="does not match"):
            MembershipEvent(10.0, "join", "late", member=member)

    def test_leave_with_member_rejected(self):
        member = default_member("late", n_steps=4)
        with pytest.raises(ValidationError, match="must not attach"):
            MembershipEvent(10.0, "leave", "late", member=member)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValidationError, match="offset"):
            MembershipEvent(-1.0, "leave", "late")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValidationError, match="unknown membership"):
            MembershipEvent(0.0, "suspend", "late")

    def test_non_finite_offset_rejected(self):
        with pytest.raises(ValidationError, match="finite"):
            MembershipEvent(float("inf"), "leave", "late")


class TestEnsembleRequest:
    def test_weight_is_one_plus_priority(self):
        request = EnsembleRequest(name="r", spec=_spec(), priority=3)
        assert request.weight == 4.0

    def test_deadline_at_is_absolute(self):
        request = EnsembleRequest(
            name="r", spec=_spec(), arrival_time=100.0, deadline=50.0
        )
        assert request.deadline_at == 150.0

    def test_no_deadline_means_no_deadline_at(self):
        assert EnsembleRequest(name="r", spec=_spec()).deadline_at is None

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"arrival_time": -1.0}, "arrival_time"),
            ({"deadline": 0.0}, "deadline"),
            ({"deadline": -5.0}, "deadline"),
            ({"priority": -1}, "priority"),
            ({"min_nodes": 0}, "min_nodes"),
            ({"max_nodes": 0}, "max_nodes"),
            ({"min_nodes": 3, "max_nodes": 2}, "max_nodes"),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs, match):
        with pytest.raises(ValidationError, match=match):
            EnsembleRequest(name="r", spec=_spec(), **kwargs)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            EnsembleRequest(name="", spec=_spec())

    def test_unsorted_membership_rejected(self):
        events = (
            MembershipEvent(20.0, "leave", "a"),
            MembershipEvent(10.0, "leave", "b"),
        )
        with pytest.raises(ValidationError, match="sorted by"):
            EnsembleRequest(name="r", spec=_spec(), membership=events)

    def test_sorted_membership_accepted(self):
        events = (
            MembershipEvent(10.0, "leave", "a"),
            MembershipEvent(20.0, "leave", "b"),
        )
        request = EnsembleRequest(name="r", spec=_spec(), membership=events)
        assert request.membership == events


class TestValidateStream:
    def test_unique_names_pass_through_unchanged(self):
        stream = (
            EnsembleRequest(name="a", spec=_spec("a")),
            EnsembleRequest(name="b", spec=_spec("b")),
        )
        assert validate_stream(stream) == stream

    def test_duplicate_names_rejected(self):
        stream = (
            EnsembleRequest(name="a", spec=_spec("a")),
            EnsembleRequest(name="a", spec=_spec("a2")),
        )
        with pytest.raises(ValidationError, match="duplicate"):
            validate_stream(stream)
