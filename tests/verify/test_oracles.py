"""The differential oracle harness: agreement, teeth, and reporting.

The important test here is the *mutant* one: a scorer with a subtle
off-by-one in the makespan step count must be caught by the oracle —
a harness that never fails is not an oracle.
"""

import json

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.core.indicators import (
    FINAL_STAGE_ORDER,
    MemberMeasurement,
    apply_stages,
)
from repro.core.insitu import member_makespan
from repro.core.objective import objective_function
from repro.faults.models import RandomFailureModel
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.analytic import predict_member_stages
from repro.scheduler.objectives import PlacementScore
from repro.util.errors import ValidationError
from repro.verify.oracles import (
    DivergenceReport,
    MetricCheck,
    run_differential_oracle,
    verify_scenarios,
)
from tests.tolerances import ORACLE_TOLERANCES


@pytest.fixture(scope="module")
def c15_report():
    config = TABLE2_CONFIGS["C1.5"]
    spec = build_spec(config, n_steps=6)
    return run_differential_oracle(
        spec,
        config.placement(),
        tolerances=ORACLE_TOLERANCES,
        scenario="C1.5",
    )


class TestMetricCheck:
    def test_exact_tolerance_requires_identity(self):
        ok = MetricCheck("m", "x", "a-vs-b", 1.0, 1.0, 0.0)
        near = MetricCheck("m", "x", "a-vs-b", 1.0, 1.0 + 1e-15, 0.0)
        assert ok.ok
        assert not near.ok

    def test_relative_error_uses_max_denominator(self):
        check = MetricCheck("m", "x", "a-vs-b", 100.0, 90.0, 0.2)
        assert check.error == pytest.approx(10.0 / 100.0)
        assert check.ok

    def test_nan_never_passes_banded(self):
        check = MetricCheck("m", "x", "a-vs-b", float("nan"), 1.0, 0.5)
        assert not check.ok

    def test_to_dict_round_trips_json(self):
        check = MetricCheck("m", "x", "a-vs-b", 1.0, 2.0, 0.1)
        payload = json.loads(json.dumps(check.to_dict()))
        assert payload["ok"] is False
        assert payload["paths"] == "a-vs-b"


class TestOracleAgreement:
    def test_all_paths_agree_on_c15(self, c15_report):
        assert c15_report.passed, c15_report.to_text(verbose=True)

    def test_report_covers_all_tiers(self, c15_report):
        paths = {c.paths for c in c15_report.checks}
        assert {
            "analytic-vs-cache",
            "score-vs-cache",
            "score-vs-candidate",
            "analytic-vs-des",
            "analytic-vs-surrogate",
        } <= paths

    def test_exact_tier_is_literally_exact(self, c15_report):
        cache_checks = [
            c for c in c15_report.checks if c.paths == "analytic-vs-cache"
        ]
        assert cache_checks
        assert all(c.tolerance == 0.0 for c in cache_checks)
        assert all(c.reference == c.candidate for c in cache_checks)

    def test_fault_tier_present_when_model_given(self):
        config = TABLE2_CONFIGS["Cf"]
        spec = build_spec(config, n_steps=4)
        report = run_differential_oracle(
            spec,
            config.placement(),
            failure_model=RandomFailureModel(rate=0.08, seed=11),
            fault_trials=2,
            scenario="Cf-faulted",
        )
        assert any(c.paths == "surrogate-vs-des" for c in report.checks)
        assert report.passed, report.to_text(verbose=True)

    def test_to_dict_is_machine_readable(self, c15_report):
        payload = json.loads(json.dumps(c15_report.to_dict()))
        assert payload["scenario"] == "C1.5"
        assert payload["passed"] is True
        assert payload["num_checks"] == len(c15_report.checks)
        assert payload["failures"] == []


class TestOracleHasTeeth:
    def test_mutated_scorer_is_caught(self):
        """An off-by-one in the makespan step count must diverge."""

        def mutant_score(spec, placement, cluster=None, dtl=None, **kw):
            if cluster is None:
                cluster = make_cori_like_cluster(placement.num_nodes)
            stages = predict_member_stages(
                spec, placement, cluster=cluster, dtl=dtl
            )
            indicators, worst = [], 0.0
            for m, mp in zip(spec.members, placement.members):
                ms = stages[m.name]
                meas = MemberMeasurement(
                    m.name, ms, m.total_cores, mp.to_placement_sets()
                )
                indicators.append(
                    apply_stages(meas, FINAL_STAGE_ORDER, placement.num_nodes)
                )
                # the mutation: one extra in situ step
                worst = max(worst, member_makespan(ms, m.n_steps + 1))
            return PlacementScore(
                placement,
                objective_function(indicators),
                worst,
                placement.num_nodes,
                tuple(indicators),
            )

        config = TABLE2_CONFIGS["C1.5"]
        spec = build_spec(config, n_steps=6)
        report = run_differential_oracle(
            spec, config.placement(), score_fn=mutant_score
        )
        assert not report.passed
        failing = report.failures
        assert all(c.paths == "score-vs-candidate" for c in failing)
        assert {c.metric for c in failing} == {"makespan"}

    def test_mutated_predictor_is_caught(self):
        """A predictor that inflates the write stage must diverge."""

        def mutant_predict(spec, placement, cluster=None, dtl=None):
            from repro.core.stages import MemberStages, SimulationStages

            stages = predict_member_stages(
                spec, placement, cluster=cluster, dtl=dtl
            )
            return {
                name: MemberStages(
                    SimulationStages(
                        ms.simulation.compute, ms.simulation.write * 1.01
                    ),
                    ms.analyses,
                )
                for name, ms in stages.items()
            }

        config = TABLE2_CONFIGS["Cc"]
        spec = build_spec(config, n_steps=4)
        report = run_differential_oracle(
            spec, config.placement(), predictor=mutant_predict
        )
        assert not report.passed
        assert any("sim.write" in c.metric for c in report.failures)

    def test_divergence_text_names_the_metric(self):
        report = DivergenceReport(
            scenario="s",
            checks=(MetricCheck("em1", "makespan", "a-vs-b", 1.0, 2.0, 0.0),),
        )
        text = report.to_text()
        assert "DIVERGED" in text
        assert "em1/makespan" in text


class TestVerifyScenarios:
    def test_selected_names_run(self):
        reports = verify_scenarios(names=["Cf", "Cc"], n_steps=4)
        assert [r.scenario for r in reports] == ["Cf", "Cc"]
        assert all(r.passed for r in reports)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            verify_scenarios(names=["C9.9"])

    def test_fault_trials_validated(self):
        config = TABLE2_CONFIGS["Cf"]
        spec = build_spec(config, n_steps=4)
        with pytest.raises(ValidationError):
            run_differential_oracle(
                spec, config.placement(), fault_trials=0
            )
