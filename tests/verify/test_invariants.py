"""Runtime invariant checking: clean runs pass, violations are loud,
and instrumentation never perturbs the simulation."""

import json

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.faults.models import FaultKind, RandomFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.monitoring.traceio import tracer_to_dict
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.runner import run_ensemble
from repro.verify.invariants import (
    InvariantChecker,
    InvariantViolation,
)


def _c15(n_steps=6):
    config = TABLE2_CONFIGS["C1.5"]
    return build_spec(config, n_steps=n_steps), config.placement()


class TestCleanRunsPass:
    @pytest.mark.parametrize("name", ["Cf", "Cc", "C1.5"])
    def test_exact_runs_have_zero_violations(self, name):
        config = TABLE2_CONFIGS[name]
        spec = build_spec(config, n_steps=6)
        executor = EnsembleExecutor(spec, config.placement(), verify=True)
        executor.run()
        report = executor.invariant_report
        assert report is not None
        assert report.passed, report.to_text()
        assert report.stages_observed > 0
        assert report.checks_performed > report.stages_observed

    def test_noisy_run_passes_structural_checks(self):
        spec, placement = _c15()
        executor = EnsembleExecutor(
            spec, placement, seed=7, timing_noise=0.02, verify=True
        )
        executor.run()
        assert executor.invariant_report.passed

    def test_faulted_run_passes_structural_checks(self):
        spec, placement = _c15()
        executor = EnsembleExecutor(
            spec,
            placement,
            failure_model=RandomFailureModel(
                rate=0.2, kinds=(FaultKind.CRASH, FaultKind.STRAGGLER), seed=3
            ),
            recovery=RetryBackoffPolicy(),
            verify=True,
        )
        executor.run()
        assert executor.invariant_report.passed

    def test_report_disabled_by_default(self):
        spec, placement = _c15(n_steps=2)
        executor = EnsembleExecutor(spec, placement)
        executor.run()
        assert executor.invariant_report is None


class TestInstrumentationIsInert:
    def test_traces_byte_identical_with_and_without_verify(self):
        spec, placement = _c15()
        plain = run_ensemble(spec, placement, seed=5, timing_noise=0.03)
        checked = run_ensemble(
            spec, placement, seed=5, timing_noise=0.03, verify=True
        )
        assert json.dumps(
            tracer_to_dict(plain.tracer), sort_keys=True
        ) == json.dumps(tracer_to_dict(checked.tracer), sort_keys=True)
        assert plain.ensemble_makespan == checked.ensemble_makespan


class TestViolationsAreLoud:
    def test_backwards_clock_detected(self):
        checker = InvariantChecker()
        checker.observe_stage("em1", "em1.sim", "S", 0, 10.0, 9.0, 1.0)
        report = checker.report()
        assert not report.passed
        assert "clock ran backwards" in report.violations[0]

    def test_overlapping_stages_detected(self):
        checker = InvariantChecker()
        checker.observe_stage("em1", "em1.sim", "S", 0, 0.0, 5.0, 5.0)
        checker.observe_stage("em1", "em1.sim", "W", 0, 4.0, 6.0, 2.0)
        assert not checker.report().passed

    def test_skipped_step_detected(self):
        checker = InvariantChecker()
        checker.observe_stage("em1", "em1.sim", "S", 0, 0.0, 1.0, 1.0)
        checker.observe_stage("em1", "em1.sim", "S", 2, 1.0, 2.0, 1.0)
        report = checker.report()
        assert any("expected 1" in v for v in report.violations)

    def test_exact_mode_flags_duration_drift(self):
        checker = InvariantChecker(exact=True)
        checker.observe_stage("em1", "em1.sim", "S", 0, 0.0, 1.5, 1.0)
        assert not checker.report().passed

    def test_inexact_mode_tolerates_duration_drift(self):
        checker = InvariantChecker(exact=False)
        checker.observe_stage("em1", "em1.sim", "S", 0, 0.0, 1.5, 1.0)
        assert checker.report().passed

    def test_period_violation_detected(self):
        checker = InvariantChecker(exact=True)
        # sigma* = 2.0, but the third period stretches to 2.5
        starts = [0.0, 2.0, 4.0, 6.5]
        for i, s in enumerate(starts):
            checker.observe_stage("em1", "em1.sim", "S", i, s, s + 1.0, 1.0)
            checker.observe_stage(
                "em1", "em1.sim", "W", i, s + 1.0, s + 2.0, 1.0
            )
        checker.check_periods()
        report = checker.report()
        assert any("Eq. 1" in v for v in report.violations)

    def test_efficiency_bound_violation_detected(self):
        class FakeMember:
            name = "em1"
            efficiency = 1.5  # > 1 breaks Eq. 3
            makespan = 10.0

            class stages:
                num_couplings = 1

        class FakeResult:
            members = (FakeMember(),)
            ensemble_makespan = 10.0

        checker = InvariantChecker()
        checker.check_result(FakeResult())
        assert not checker.report().passed

    def test_executor_raises_on_violation(self, monkeypatch):
        """A poisoned checker makes the verified run fail loudly."""
        spec, placement = _c15(n_steps=2)
        executor = EnsembleExecutor(spec, placement, verify=True)

        original = InvariantChecker.observe_stage

        def poisoned(self, member, component, stage, step, start, end, duration):
            original(
                self, member, component, stage, step, start, end, duration + 1.0
            )

        monkeypatch.setattr(InvariantChecker, "observe_stage", poisoned)
        with pytest.raises(InvariantViolation):
            executor.run()

    def test_report_to_dict(self):
        checker = InvariantChecker()
        checker.observe_stage("em1", "em1.sim", "S", 0, 0.0, 1.0, 1.0)
        payload = checker.report().to_dict()
        assert payload["passed"] is True
        assert payload["stages_observed"] == 1
        assert payload["violations"] == []
