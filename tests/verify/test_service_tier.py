"""The oracle's service tier: the HTTP path is tier-0 exact.

A scenario scored through the live placement service (real sockets,
real JSON) must deserialize to *exactly* what the direct scorer
computes — tolerance 0.0 on the objective, the makespan, and every
member indicator. And the tier must have teeth: a service that
perturbs a result by one ulp is caught.
"""

from __future__ import annotations

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.service.api import PlacementServer, make_server
from repro.service.workers import PlacementService, execute_request
from repro.verify.oracles import run_differential_oracle, verify_scenarios
from tests.tolerances import ORACLE_TOLERANCES


@pytest.fixture(scope="module")
def service_report():
    config = TABLE2_CONFIGS["C1.1"]
    spec = build_spec(config, n_steps=4)
    with make_server(port=0, workers=2) as server:
        yield run_differential_oracle(
            spec,
            config.placement(),
            tolerances=ORACLE_TOLERANCES,
            scenario="C1.1",
            service_url=server.url,
        )


class TestServiceTierAgreement:
    def test_scenario_passes_through_the_wire(self, service_report):
        assert service_report.passed, service_report.to_text(verbose=True)

    def test_service_checks_present_and_exact(self, service_report):
        service_checks = [
            c for c in service_report.checks
            if c.paths == "score-vs-service"
        ]
        assert service_checks, "oracle ran without the service tier"
        metrics = {c.metric for c in service_checks}
        assert {"objective", "makespan", "same_placement"} <= metrics
        assert any(c.metric == "indicator" for c in service_checks)
        for check in service_checks:
            assert check.tolerance == 0.0  # tier 0, never banded
            assert check.ok

    def test_tier_skipped_without_url(self):
        config = TABLE2_CONFIGS["C1.1"]
        spec = build_spec(config, n_steps=4)
        report = run_differential_oracle(
            spec,
            config.placement(),
            tolerances=ORACLE_TOLERANCES,
            scenario="C1.1",
        )
        assert not any(
            c.paths == "score-vs-service" for c in report.checks
        )


class TestServiceTierTeeth:
    def test_one_ulp_perturbation_is_caught(self):
        """A service that nudges the objective by one ulp must fail."""
        import math

        def perturbing(request, stage_cache=None):
            payload = execute_request(request, stage_cache=stage_cache)
            score = payload["score"]
            score["objective"] = math.nextafter(
                score["objective"], math.inf
            )
            return payload

        config = TABLE2_CONFIGS["C1.1"]
        spec = build_spec(config, n_steps=4)
        service = PlacementService(workers=1, execute_fn=perturbing)
        with PlacementServer(service=service, port=0) as server:
            report = run_differential_oracle(
                spec,
                config.placement(),
                tolerances=ORACLE_TOLERANCES,
                scenario="C1.1-mutant",
                service_url=server.url,
            )
        assert not report.passed
        failing = [c for c in report.failures]
        assert all(c.paths == "score-vs-service" for c in failing)
        assert any(c.metric == "objective" for c in failing)


class TestVerifyScenariosIntegration:
    def test_include_service_boots_and_passes(self):
        reports = verify_scenarios(
            names=["C1.1"],
            n_steps=4,
            tolerances=ORACLE_TOLERANCES,
            include_service=True,
        )
        (report,) = reports
        assert report.passed, report.to_text(verbose=True)
        assert any(
            c.paths == "score-vs-service" for c in report.checks
        )
