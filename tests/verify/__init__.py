"""Tests for the correctness-verification subsystem (repro.verify)."""
