"""The golden-trace store: regeneration determinism and drift alarms.

``test_store_is_up_to_date`` is the regression tripwire: any behaviour
change in the executor, the noise streams, or the fault scheduler shows
up as a structural diff against ``tests/golden/``.
"""

import json
from pathlib import Path

import pytest

from repro.util.errors import ValidationError
from repro.verify.goldens import (
    GOLDEN_FORMAT_VERSION,
    GOLDEN_SCENARIOS,
    GoldenScenario,
    build_golden,
    canonical_json,
    check_goldens,
    diff_goldens,
    golden_path,
    load_golden,
    write_goldens,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


class TestStore:
    def test_store_is_up_to_date(self):
        mismatches = check_goldens(GOLDEN_DIR)
        assert mismatches == {}, "\n".join(
            f"{name}:\n  " + "\n  ".join(diff)
            for name, diff in mismatches.items()
        )

    def test_store_covers_every_scenario(self):
        for scenario in GOLDEN_SCENARIOS:
            assert golden_path(GOLDEN_DIR, scenario.name).exists()

    def test_regeneration_is_deterministic(self):
        scenario = GOLDEN_SCENARIOS[0]
        assert canonical_json(build_golden(scenario)) == canonical_json(
            build_golden(scenario)
        )

    def test_write_then_check_round_trips(self, tmp_path):
        written = write_goldens(tmp_path)
        assert sorted(written) == sorted(s.name for s in GOLDEN_SCENARIOS)
        assert check_goldens(tmp_path) == {}

    def test_faulted_scenario_pins_its_schedule(self):
        payload = load_golden(golden_path(GOLDEN_DIR, "c15-faulted"))
        assert payload["fault_events"], "faulted golden must pin faults"
        for event in payload["fault_events"]:
            assert event["stage"] in ("S", "W", "R", "A")


class TestPayloadFormat:
    def test_canonical_json_is_byte_stable(self):
        payload = {"b": 2, "a": [1.5, {"z": 0, "y": 1}]}
        assert canonical_json(payload) == canonical_json(
            json.loads(json.dumps(payload))
        )
        assert canonical_json(payload).endswith("\n")

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_golden(tmp_path / "nope.json")

    def test_load_rejects_bad_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError):
            load_golden(bad)

    def test_load_rejects_wrong_format_version(self, tmp_path):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"format": GOLDEN_FORMAT_VERSION + 1}))
        with pytest.raises(ValidationError):
            load_golden(stale)

    def test_scenario_validation(self):
        with pytest.raises(ValidationError):
            GoldenScenario(name="", config="Cf")
        with pytest.raises(ValidationError):
            GoldenScenario(name="x", config="Cf", n_steps=0)
        with pytest.raises(ValidationError):
            build_golden(GoldenScenario(name="x", config="C9.9"))


class TestDiff:
    def test_identical_payloads_have_no_diff(self):
        payload = build_golden(GOLDEN_SCENARIOS[0])
        assert diff_goldens(payload, payload) == []

    def test_value_drift_is_located(self):
        expected = {"format": 1, "ensemble_makespan": 10.0}
        actual = {"format": 1, "ensemble_makespan": 11.0}
        diff = diff_goldens(expected, actual)
        assert diff == ["$.ensemble_makespan: 10.0 -> 11.0"]

    def test_added_and_removed_keys_reported(self):
        diff = diff_goldens({"a": 1}, {"b": 1})
        assert "$.a: removed" in diff
        assert "$.b: added" in diff

    def test_diff_truncates_at_limit(self):
        expected = {str(i): i for i in range(50)}
        actual = {str(i): i + 1 for i in range(50)}
        diff = diff_goldens(expected, actual, limit=5)
        assert len(diff) == 6
        assert diff[-1] == "... (diff truncated)"

    def test_check_reports_missing_file(self, tmp_path):
        mismatches = check_goldens(tmp_path)
        assert set(mismatches) == {s.name for s in GOLDEN_SCENARIOS}
