"""Property tests pinning the paper's equations via tests.strategies.

Complements ``test_core_properties.py``: these are the algebraic
identities the verification subsystem leans on — Eq. 9's permutation
invariance and mean-domination, Eq. 6's bounds, and Eq. 4's regime
classification — generated from the shared strategy library.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.heuristic import sweep_analysis_cores
from repro.core.indicators import placement_indicator
from repro.core.insitu import (
    CouplingRegime,
    analysis_idle_time,
    classify_coupling,
    non_overlapped_segment,
    simulation_idle_time,
)
from repro.core.objective import objective_function
from repro.util.stats import population_std
from tests.strategies import durations, member_stages, placement_sets

indicator_lists = st.lists(
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestObjectiveProperties:
    @given(indicator_lists, st.randoms(use_true_random=False))
    @settings(max_examples=150)
    def test_permutation_invariance(self, values, rng):
        """Eq. 9 sees the ensemble as a set: order cannot matter."""
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert objective_function(shuffled) == pytest.approx(
            objective_function(values), rel=1e-12, abs=1e-12
        )

    @given(indicator_lists)
    @settings(max_examples=150)
    def test_never_exceeds_mean(self, values):
        """F = mean - std <= mean, with equality iff uniform."""
        mean = sum(values) / len(values)
        f = objective_function(values)
        assert f <= mean + 1e-12
        if len(set(values)) == 1:
            assert f == pytest.approx(mean)

    @given(
        st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100)
    def test_uniform_ensemble_scores_its_value(self, value, n):
        assert objective_function([value] * n) == pytest.approx(value)

    @given(indicator_lists)
    @settings(max_examples=150)
    def test_matches_explicit_formula(self, values):
        expected = sum(values) / len(values) - population_std(values)
        assert objective_function(values) == pytest.approx(expected)


class TestPlacementIndicatorProperties:
    @given(placement_sets())
    @settings(max_examples=150)
    def test_cp_stays_in_unit_interval(self, p):
        cp = placement_indicator(p)
        assert 0.0 < cp <= 1.0 + 1e-12


class TestRegimeProperties:
    @given(member_stages())
    @settings(max_examples=150)
    def test_classification_matches_idle_times(self, m):
        """Eq. 4 / Figure 6: the idling side is the one with slack."""
        for j in range(m.num_couplings):
            regime = classify_coupling(m, j)
            sim_idle = simulation_idle_time(m)
            ana_idle = analysis_idle_time(m, j)
            if regime is CouplingRegime.IDLE_SIMULATION:
                # this coupling outlasts the simulation side
                assert m.analyses[j].active > m.simulation.active
                assert ana_idle < sim_idle + 1e-12
            elif regime is CouplingRegime.IDLE_ANALYZER:
                assert m.analyses[j].active < m.simulation.active
                assert ana_idle >= 0.0

    @given(member_stages())
    @settings(max_examples=150)
    def test_idle_times_are_nonnegative_and_bounded(self, m):
        sigma = non_overlapped_segment(m)
        assert 0.0 <= simulation_idle_time(m) <= sigma
        for j in range(m.num_couplings):
            assert 0.0 <= analysis_idle_time(m, j) <= sigma

    @given(member_stages())
    @settings(max_examples=150)
    def test_some_side_never_idles(self, m):
        """sigma* is achieved: at least one component has zero idle."""
        idles = [simulation_idle_time(m)] + [
            analysis_idle_time(m, j) for j in range(m.num_couplings)
        ]
        assert min(idles) == pytest.approx(0.0, abs=1e-12)

    @given(member_stages(), durations)
    @settings(max_examples=100)
    def test_eq4_feasibility_equals_idle_analyzer_everywhere(self, m, _):
        """sweep_analysis_cores' Eq. 4 flag agrees with classify_coupling."""
        point = sweep_analysis_cores(lambda cores: m, [1])[0]
        all_idle_analyzer = all(
            classify_coupling(m, j) is not CouplingRegime.IDLE_SIMULATION
            for j in range(m.num_couplings)
        )
        assert point.feasible == all_idle_analyzer
