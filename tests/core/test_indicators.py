"""Tests for the multi-stage performance indicators (Eqs. 5-8)."""

import pytest

from repro.core.indicators import (
    IndicatorStage,
    MemberMeasurement,
    PlacementSets,
    apply_stages,
    ensemble_node_count,
    indicator_path,
    placement_indicator,
    resource_usage_indicator,
)
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.util.errors import ValidationError

U = IndicatorStage.USAGE
A = IndicatorStage.ALLOCATION
P = IndicatorStage.PROVISIONING


def placement(sim_nodes, ana_node_sets):
    return PlacementSets(
        frozenset(sim_nodes), tuple(frozenset(a) for a in ana_node_sets)
    )


@pytest.fixture
def measurement(balanced_member):
    return MemberMeasurement(
        name="em1",
        stages=balanced_member,
        total_cores=24,
        placement=placement({0}, [{0}]),
    )


class TestPlacementSets:
    def test_paper_table2_example(self):
        """§4.1's worked example: C1.1 has s1={0}, a1={2}."""
        p = placement({0}, [{2}])
        assert p.num_nodes == 2
        assert not p.coupling_co_located(0)

    def test_co_location_criterion(self):
        # |s| == |s U a| iff a is a subset of s
        assert placement({0}, [{0}]).coupling_co_located(0)
        assert placement({0, 1}, [{1}]).coupling_co_located(0)
        assert not placement({0}, [{1}]).coupling_co_located(0)

    def test_d_i_inequality(self):
        """d_i <= |s_i| + sum_j |a_i^j| (Table 3), equality iff disjoint."""
        shared = placement({0}, [{0}, {1}])
        assert shared.num_nodes == 2 <= 1 + 1 + 1
        disjoint = placement({0}, [{1}, {2}])
        assert disjoint.num_nodes == 3 == 1 + 1 + 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            placement(set(), [{0}])
        with pytest.raises(ValidationError):
            placement({0}, [])
        with pytest.raises(ValidationError):
            placement({0}, [set()])
        with pytest.raises(ValidationError):
            placement({-1}, [{0}])


class TestPlacementIndicator:
    def test_fully_colocated_is_one(self):
        assert placement_indicator(placement({0}, [{0}, {0}])) == 1.0

    def test_fully_split_k1(self):
        assert placement_indicator(placement({0}, [{1}])) == pytest.approx(0.5)

    def test_paper_eq6_worked_example(self):
        # s={0}, a1={0}, a2={2}: CP = (1/2) * (1/1 + 1/2) = 0.75
        cp = placement_indicator(placement({0}, [{0}, {2}]))
        assert cp == pytest.approx(0.75)

    def test_decreases_as_components_spread(self):
        cps = [
            placement_indicator(placement({0}, [{0}, {0}])),
            placement_indicator(placement({0}, [{0}, {1}])),
            placement_indicator(placement({0}, [{1}, {2}])),
        ]
        assert cps[0] > cps[1] > cps[2]

    def test_always_in_unit_interval(self):
        for p in [
            placement({0}, [{1}, {2}, {3}]),
            placement({0, 1}, [{2, 3}, {0}]),
            placement({5}, [{5}]),
        ]:
            assert 0.0 < placement_indicator(p) <= 1.0


class TestResourceUsage:
    def test_eq5(self):
        assert resource_usage_indicator(0.8, 24) == pytest.approx(0.8 / 24)

    def test_invalid_cores(self):
        with pytest.raises(ValidationError):
            resource_usage_indicator(0.5, 0)


class TestApplyStages:
    def test_usage_must_come_first(self, measurement):
        with pytest.raises(ValidationError):
            apply_stages(measurement, [A, U], total_nodes=2)
        with pytest.raises(ValidationError):
            apply_stages(measurement, [], total_nodes=2)

    def test_no_duplicate_stages(self, measurement):
        with pytest.raises(ValidationError):
            apply_stages(measurement, [U, A, A], total_nodes=2)

    def test_stage_order_commutes_at_final_stage(self, measurement):
        """P^{U,A,P} == P^{U,P,A} (paper §5.2)."""
        uap = apply_stages(measurement, [U, A, P], total_nodes=3)
        upa = apply_stages(measurement, [U, P, A], total_nodes=3)
        assert uap == pytest.approx(upa)

    def test_each_stage_weight(self, measurement):
        base = apply_stages(measurement, [U], total_nodes=2)
        cp = placement_indicator(measurement.placement)
        assert apply_stages(measurement, [U, A], total_nodes=2) == pytest.approx(
            base * cp
        )
        assert apply_stages(measurement, [U, P], total_nodes=2) == pytest.approx(
            base / 2
        )

    def test_member_wider_than_ensemble_rejected(self, balanced_member):
        m = MemberMeasurement(
            "em",
            balanced_member,
            total_cores=24,
            placement=placement({0}, [{1}]),
        )
        with pytest.raises(ValidationError):
            apply_stages(m, [U], total_nodes=1)

    def test_indicator_path_labels(self, measurement):
        path = indicator_path(measurement, [U, A, P], total_nodes=2)
        assert list(path) == ["U", "U,A", "U,A,P"]
        assert path["U"] == measurement.base_indicator


class TestMemberMeasurement:
    def test_coupling_count_must_match(self, balanced_member):
        with pytest.raises(ValidationError):
            MemberMeasurement(
                "em",
                balanced_member,  # K = 1
                total_cores=24,
                placement=placement({0}, [{0}, {1}]),  # K = 2
            )

    def test_efficiency_exposed(self, measurement, balanced_member):
        from repro.core.efficiency import computational_efficiency

        assert measurement.efficiency == pytest.approx(
            computational_efficiency(balanced_member)
        )


class TestEnsembleNodeCount:
    def test_m_inequality(self):
        """M <= sum d_i, equality iff members share no nodes (Table 3)."""
        p1 = placement({0}, [{0}])
        p2 = placement({1}, [{1}])
        assert ensemble_node_count([p1, p2]) == 2  # disjoint: equality

        p3 = placement({0}, [{1}])
        p4 = placement({0}, [{1}])
        assert ensemble_node_count([p3, p4]) == 2 < 4  # shared: strict

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ensemble_node_count([])
