"""Tests for the end-to-end indicator pipeline API."""

import pytest

from repro.core.indicators import (
    IndicatorStage,
    MemberMeasurement,
    PlacementSets,
    apply_stages,
)
from repro.core.pipeline import (
    STAGE_PATHS,
    ensemble_objective_paths,
    member_indicator_paths,
)
from repro.core.objective import objective_function
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.util.errors import ValidationError


def measurement(name, sim_nodes, ana_nodes, sim=14.0, ana=12.0):
    stages = MemberStages(
        SimulationStages(sim, 0.3), (AnalysisStages(0.1, ana),)
    )
    return MemberMeasurement(
        name,
        stages,
        24,
        PlacementSets(frozenset(sim_nodes), (frozenset(ana_nodes),)),
    )


class TestStagePaths:
    def test_covers_both_section52_paths(self):
        assert list(STAGE_PATHS) == ["U", "U,P", "U,A", "U,P,A", "U,A,P"]

    def test_every_path_starts_with_usage(self):
        for stages in STAGE_PATHS.values():
            assert stages[0] is IndicatorStage.USAGE


class TestMemberIndicatorPaths:
    def test_matches_apply_stages(self):
        m = measurement("em1", {0}, {0})
        paths = member_indicator_paths(m, total_nodes=2)
        for label, stages in STAGE_PATHS.items():
            assert paths[label] == pytest.approx(
                apply_stages(m, stages, 2)
            )

    def test_final_values_agree(self):
        m = measurement("em1", {0}, {1})
        paths = member_indicator_paths(m, total_nodes=3)
        assert paths["U,A,P"] == pytest.approx(paths["U,P,A"])


class TestEnsembleObjectivePaths:
    def test_matches_manual_objective(self):
        members = [
            measurement("em1", {0}, {0}),
            measurement("em2", {1}, {1}, ana=11.0),
        ]
        table = ensemble_objective_paths(members, total_nodes=2)
        manual = objective_function(
            [member_indicator_paths(m, 2)["U,A,P"] for m in members]
        )
        assert table["U,A,P"] == pytest.approx(manual)

    def test_c14_vs_c15_reproduced_through_api(self):
        """The paper's Figure 8 discriminations, straight through the
        public API with synthetic measurements."""
        c15 = ensemble_objective_paths(
            [measurement("em1", {0}, {0}), measurement("em2", {1}, {1})],
            total_nodes=2,
        )
        c14 = ensemble_objective_paths(
            [measurement("em1", {0}, {1}), measurement("em2", {0}, {1})],
            total_nodes=2,
        )
        # same efficiency and node count: U and U,P identical...
        assert c14["U"] == pytest.approx(c15["U"])
        assert c14["U,P"] == pytest.approx(c15["U,P"])
        # ...but the placement layer separates them 2x
        assert c15["U,A"] == pytest.approx(2 * c14["U,A"])
        assert c15["U,A,P"] == pytest.approx(2 * c14["U,A,P"])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ensemble_objective_paths([], total_nodes=2)
