"""Tests for Eq. 1 (non-overlapped segment) and Eq. 2 (makespan)."""

import pytest

from repro.core.insitu import (
    CouplingRegime,
    analysis_idle_time,
    classify_coupling,
    member_makespan,
    non_overlapped_segment,
    simulation_idle_time,
)
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.util.errors import ValidationError


class TestNonOverlappedSegment:
    def test_idle_analyzer_regime(self, balanced_member):
        # S+W = 14.3 > R+A = 13.0 -> sigma = S+W
        assert non_overlapped_segment(balanced_member) == pytest.approx(14.3)

    def test_idle_simulation_regime(self, idle_sim_member):
        # S+W = 10.2 < R+A = 14.5 -> sigma = R+A
        assert non_overlapped_segment(idle_sim_member) == pytest.approx(14.5)

    def test_slowest_of_k_analyses_wins(self):
        m = MemberStages(
            SimulationStages(10.0, 0.5),
            (
                AnalysisStages(0.1, 5.0),
                AnalysisStages(0.2, 18.0),  # slowest coupling
                AnalysisStages(0.1, 9.0),
            ),
        )
        assert non_overlapped_segment(m) == pytest.approx(18.2)

    def test_exact_balance(self):
        m = MemberStages(
            SimulationStages(10.0, 0.0), (AnalysisStages(0.0, 10.0),)
        )
        assert non_overlapped_segment(m) == pytest.approx(10.0)


class TestMakespan:
    def test_eq2(self, balanced_member):
        assert member_makespan(balanced_member, 37) == pytest.approx(37 * 14.3)

    def test_invalid_steps(self, balanced_member):
        with pytest.raises(ValidationError):
            member_makespan(balanced_member, 0)


class TestIdleTimes:
    def test_idle_analyzer_sim_has_zero_idle(self, balanced_member):
        assert simulation_idle_time(balanced_member) == pytest.approx(0.0)
        assert analysis_idle_time(balanced_member, 0) == pytest.approx(1.3)

    def test_idle_simulation_analysis_has_zero_idle(self, idle_sim_member):
        assert analysis_idle_time(idle_sim_member, 0) == pytest.approx(0.0)
        assert simulation_idle_time(idle_sim_member) == pytest.approx(4.3)

    def test_idles_are_non_negative(self, balanced_member, idle_sim_member):
        for m in (balanced_member, idle_sim_member):
            assert simulation_idle_time(m) >= 0
            for j in range(m.num_couplings):
                assert analysis_idle_time(m, j) >= 0

    def test_index_out_of_range(self, balanced_member):
        with pytest.raises(ValidationError):
            analysis_idle_time(balanced_member, 1)


class TestClassification:
    def test_idle_analyzer(self, balanced_member):
        assert (
            classify_coupling(balanced_member, 0) is CouplingRegime.IDLE_ANALYZER
        )

    def test_idle_simulation(self, idle_sim_member):
        assert (
            classify_coupling(idle_sim_member, 0)
            is CouplingRegime.IDLE_SIMULATION
        )

    def test_balanced(self):
        m = MemberStages(
            SimulationStages(10.0, 0.5), (AnalysisStages(0.5, 10.0),)
        )
        assert classify_coupling(m, 0) is CouplingRegime.BALANCED

    def test_mixed_regimes_per_coupling(self):
        """Figure 6's scenario: one coupling in each regime."""
        m = MemberStages(
            SimulationStages(10.0, 0.5),
            (
                AnalysisStages(0.5, 14.0),  # idle simulation
                AnalysisStages(0.1, 5.0),  # idle analyzer
            ),
        )
        assert classify_coupling(m, 0) is CouplingRegime.IDLE_SIMULATION
        assert classify_coupling(m, 1) is CouplingRegime.IDLE_ANALYZER

    def test_index_out_of_range(self, balanced_member):
        with pytest.raises(ValidationError):
            classify_coupling(balanced_member, 5)
