"""Tests for the ensemble objective F (Eq. 9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.objective import objective_function, rank_by_objective
from repro.util.errors import ValidationError
from repro.util.stats import population_std

values = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=10,
)


class TestObjectiveFunction:
    def test_single_member_is_identity(self):
        assert objective_function([0.5]) == pytest.approx(0.5)

    def test_uniform_members_no_penalty(self):
        assert objective_function([0.3, 0.3, 0.3]) == pytest.approx(0.3)

    def test_eq9_by_hand(self):
        vals = [1.0, 3.0]
        # mean 2, population std 1 -> F = 1
        assert objective_function(vals) == pytest.approx(1.0)

    def test_variability_penalized(self):
        uniform = objective_function([0.5, 0.5])
        spread = objective_function([0.1, 0.9])  # same mean
        assert spread < uniform

    def test_two_members_equals_min(self):
        """For N=2, mean - std = min (a useful identity for reasoning
        about the 2-member configuration sets)."""
        for a, b in [(0.1, 0.9), (3.0, 1.0), (-1.0, 5.0)]:
            assert objective_function([a, b]) == pytest.approx(min(a, b))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            objective_function([])

    @given(values)
    @settings(max_examples=200)
    def test_f_never_exceeds_mean(self, vals):
        f = objective_function(vals)
        mean = sum(vals) / len(vals)
        assert f <= mean + 1e-9

    @given(values)
    @settings(max_examples=200)
    def test_matches_definition(self, vals):
        f = objective_function(vals)
        mean = sum(vals) / len(vals)
        assert f == pytest.approx(mean - population_std(vals), abs=1e-9)

    @given(values, st.floats(min_value=-10, max_value=10, allow_nan=False))
    @settings(max_examples=100)
    def test_translation_equivariance(self, vals, shift):
        """F(P + c) = F(P) + c — std is translation invariant."""
        f1 = objective_function(vals)
        f2 = objective_function([v + shift for v in vals])
        assert f2 == pytest.approx(f1 + shift, abs=1e-6)


class TestRanking:
    def test_best_first(self):
        ranking = rank_by_objective(
            {
                "bad": [0.1, 0.9],
                "good": [0.6, 0.6],
                "middling": [0.4, 0.5],
            }
        )
        assert [name for name, _ in ranking] == ["good", "middling", "bad"]

    def test_scores_attached(self):
        ranking = rank_by_objective({"x": [1.0, 3.0]})
        assert ranking == [("x", pytest.approx(1.0))]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            rank_by_objective({})
