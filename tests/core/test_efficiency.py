"""Tests for the computational efficiency E (Eq. 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.efficiency import computational_efficiency, coupling_efficiency
from repro.core.insitu import non_overlapped_segment
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.util.errors import ValidationError

durations = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False)


def member_from(sim_c, sim_w, pairs):
    return MemberStages(
        SimulationStages(sim_c, sim_w),
        tuple(AnalysisStages(r, a) for r, a in pairs),
    )


class TestClosedForm:
    def test_k1_is_min_over_max(self, balanced_member):
        sim = balanced_member.simulation.active
        ana = balanced_member.analyses[0].active
        assert computational_efficiency(balanced_member) == pytest.approx(
            min(sim, ana) / max(sim, ana)
        )

    def test_perfect_overlap_is_one(self):
        m = member_from(10.0, 0.0, [(0.0, 10.0)])
        assert computational_efficiency(m) == pytest.approx(1.0)

    def test_decreases_with_imbalance(self):
        balanced = member_from(10.0, 0.0, [(0.0, 10.0)])
        unbalanced = member_from(10.0, 0.0, [(0.0, 2.0)])
        assert computational_efficiency(unbalanced) < computational_efficiency(
            balanced
        )

    def test_zero_duration_member_rejected(self):
        m = member_from(0.0, 0.0, [(0.0, 0.0)])
        with pytest.raises(ValidationError):
            computational_efficiency(m)
        with pytest.raises(ValidationError):
            coupling_efficiency(m, 0)

    def test_matches_paper_example_values(self):
        """E for the paper's operating point (~0.84 at 8 analysis cores,
        per our Figure 7 reproduction)."""
        m = member_from(15.3, 0.3, [(0.1, 13.0)])
        assert computational_efficiency(m) == pytest.approx(0.8397, abs=1e-3)


class TestDefinitionalEquivalence:
    @given(
        durations,
        durations,
        st.lists(st.tuples(durations, durations), min_size=1, max_size=5),
    )
    @settings(max_examples=200)
    def test_closed_form_equals_mean_of_coupling_efficiencies(
        self, sim_c, sim_w, pairs
    ):
        """Eq. 3's derivation: E = (1/K) sum_i (1 - (I^S + I^A_i)/sigma)."""
        m = member_from(sim_c, sim_w, pairs)
        definitional = sum(
            coupling_efficiency(m, i) for i in range(m.num_couplings)
        ) / m.num_couplings
        assert computational_efficiency(m) == pytest.approx(
            definitional, rel=1e-9, abs=1e-12
        )


class TestBounds:
    @given(durations, durations, st.tuples(durations, durations))
    @settings(max_examples=200)
    def test_k1_efficiency_in_unit_interval(self, sim_c, sim_w, pair):
        m = member_from(sim_c, sim_w, [pair])
        e = computational_efficiency(m)
        assert 0.0 < e <= 1.0 + 1e-12

    @given(
        durations,
        durations,
        st.lists(st.tuples(durations, durations), min_size=1, max_size=6),
    )
    @settings(max_examples=200)
    def test_general_bounds(self, sim_c, sim_w, pairs):
        """E <= 1 always; E > 1/K - 1 (see module docstring)."""
        m = member_from(sim_c, sim_w, pairs)
        e = computational_efficiency(m)
        k = m.num_couplings
        assert e <= 1.0 + 1e-12
        assert e > 1.0 / k - 1.0 - 1e-12

    def test_negative_efficiency_for_extreme_imbalance(self):
        """K=2 with one crushed coupling drives E below zero — the
        behaviour the extended headline experiment exploits."""
        m = member_from(10.0, 0.0, [(0.0, 9.0), (0.0, 100.0)])
        assert computational_efficiency(m) < 0.0


class TestMonotonicity:
    @given(durations, durations, durations, durations)
    @settings(max_examples=100)
    def test_shrinking_the_short_side_never_raises_e(self, sim_c, sim_w, r, a):
        """Making the idle side even shorter only adds idle time."""
        m1 = member_from(sim_c, sim_w, [(r, a)])
        short_is_analysis = (r + a) <= (sim_c + sim_w)
        if short_is_analysis:
            m2 = member_from(sim_c, sim_w, [(r / 2, a / 2)])
        else:
            m2 = member_from(sim_c / 2, sim_w / 2, [(r, a)])
        assert computational_efficiency(m2) <= computational_efficiency(m1) + 1e-9
