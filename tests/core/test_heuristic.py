"""Tests for the §3.4 core-allocation heuristic."""

import pytest

from repro.core.heuristic import (
    choose_analysis_cores,
    sweep_analysis_cores,
)
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from repro.util.errors import ValidationError


def synthetic_evaluator(sim_active=14.0, a1=60.0, serial=0.1, read=0.1):
    """Member stages with an Amdahl-scaled analysis."""

    def evaluate(cores: int) -> MemberStages:
        analyze = a1 * (serial + (1 - serial) / cores)
        return MemberStages(
            SimulationStages(compute=sim_active, write=0.0),
            (AnalysisStages(read=read, analyze=analyze),),
        )

    return evaluate


class TestSweep:
    def test_reports_one_point_per_count(self):
        pts = sweep_analysis_cores(synthetic_evaluator(), [1, 2, 4, 8])
        assert [p.cores for p in pts] == [1, 2, 4, 8]

    def test_feasibility_is_eq4(self):
        pts = sweep_analysis_cores(synthetic_evaluator(), [1, 4, 8, 16])
        for p in pts:
            assert p.feasible == (p.analysis_active <= p.simulation_active)

    def test_sigma_is_max_of_sides(self):
        pts = sweep_analysis_cores(synthetic_evaluator(), [1, 8])
        for p in pts:
            assert p.sigma == pytest.approx(
                max(p.simulation_active, p.analysis_active)
            )

    def test_empty_counts_rejected(self):
        with pytest.raises(ValidationError):
            sweep_analysis_cores(synthetic_evaluator(), [])


class TestChoice:
    def test_picks_smallest_feasible_count(self):
        """In the feasible region E decreases with more cores, so the
        heuristic lands on the crossover count."""
        choice = choose_analysis_cores(
            synthetic_evaluator(), [1, 2, 4, 8, 16, 32]
        )
        assert choice.cores == 8
        assert choice.point.feasible

    def test_efficiency_maximal_among_feasible(self):
        choice = choose_analysis_cores(
            synthetic_evaluator(), [1, 2, 4, 8, 16, 32]
        )
        feasible = [p for p in choice.sweep if p.feasible]
        assert choice.point.efficiency == max(p.efficiency for p in feasible)

    def test_no_feasible_count_returns_none(self):
        # analysis always slower than the simulation
        evaluator = synthetic_evaluator(sim_active=0.5, a1=100.0, serial=0.5)
        assert choose_analysis_cores(evaluator, [1, 2, 4]) is None

    def test_tie_breaks_toward_fewer_cores(self):
        # fully serial analysis: same stages at every count -> same E
        evaluator = synthetic_evaluator(sim_active=20.0, a1=10.0, serial=1.0)
        choice = choose_analysis_cores(evaluator, [8, 4, 2, 1])
        assert choice.cores == 1

    def test_paper_operating_point(self):
        """The full pipeline choice matches the paper's 8 cores."""
        from repro.experiments.fig7 import heuristic_choice

        choice = heuristic_choice()
        assert choice.cores == 8
        # paper: feasible from 8 cores up
        feasible_counts = [p.cores for p in choice.sweep if p.feasible]
        assert feasible_counts == [8, 16, 32]
