"""Property-based tests tying the core equations together."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.efficiency import computational_efficiency
from repro.core.indicators import (
    IndicatorStage,
    MemberMeasurement,
    PlacementSets,
    apply_stages,
    placement_indicator,
)
from repro.core.insitu import member_makespan, non_overlapped_segment
from repro.core.stages import AnalysisStages, MemberStages, SimulationStages
from tests.strategies import durations, member_stages as members
from tests.strategies import placement_sets as placements

U = IndicatorStage.USAGE
A = IndicatorStage.ALLOCATION
P = IndicatorStage.PROVISIONING


class TestSigmaProperties:
    @given(members())
    @settings(max_examples=150)
    def test_sigma_bounds_every_side(self, m):
        sigma = non_overlapped_segment(m)
        assert sigma >= m.simulation.active
        for a in m.analyses:
            assert sigma >= a.active

    @given(members(), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=100)
    def test_makespan_linear_in_steps(self, m, n):
        assert member_makespan(m, n) == pytest.approx(
            n * non_overlapped_segment(m)
        )

    @given(members(), durations)
    @settings(max_examples=100)
    def test_sigma_scale_equivariance(self, m, factor):
        """Scaling all stage times scales sigma and leaves E unchanged."""
        scaled = MemberStages(
            SimulationStages(
                m.simulation.compute * factor, m.simulation.write * factor
            ),
            tuple(
                AnalysisStages(a.read * factor, a.analyze * factor)
                for a in m.analyses
            ),
        )
        assert non_overlapped_segment(scaled) == pytest.approx(
            factor * non_overlapped_segment(m), rel=1e-9
        )
        assert computational_efficiency(scaled) == pytest.approx(
            computational_efficiency(m), rel=1e-9
        )


class TestPlacementProperties:
    @given(placements())
    @settings(max_examples=150)
    def test_cp_in_unit_interval(self, p):
        cp = placement_indicator(p)
        assert 0.0 < cp <= 1.0 + 1e-12

    @given(placements())
    @settings(max_examples=150)
    def test_cp_is_one_iff_all_colocated(self, p):
        cp = placement_indicator(p)
        all_colocated = all(
            p.coupling_co_located(j) for j in range(p.num_couplings)
        )
        assert (abs(cp - 1.0) < 1e-12) == all_colocated

    @given(placements())
    @settings(max_examples=150)
    def test_d_i_inequality(self, p):
        assert p.num_nodes <= len(p.simulation_nodes) + sum(
            len(a) for a in p.analysis_nodes
        )


class TestIndicatorProperties:
    @given(
        members(),
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=8, max_value=16),
    )
    @settings(max_examples=150)
    def test_final_value_independent_of_stage_order(self, m, cores, total_nodes):
        placement = PlacementSets(
            frozenset({0}), tuple(frozenset({j % 4}) for j in range(m.num_couplings))
        )
        meas = MemberMeasurement("em", m, cores, placement)
        uap = apply_stages(meas, [U, A, P], total_nodes)
        upa = apply_stages(meas, [U, P, A], total_nodes)
        assert uap == pytest.approx(upa, rel=1e-12)

    @given(members(), st.integers(min_value=1, max_value=256))
    @settings(max_examples=100)
    def test_provisioning_monotone_in_nodes(self, m, cores):
        """Using more nodes for the same performance lowers P^{U,P}."""
        placement = PlacementSets(
            frozenset({0}), tuple(frozenset({0}) for _ in range(m.num_couplings))
        )
        meas = MemberMeasurement("em", m, cores, placement)
        values = [
            apply_stages(meas, [U, P], total_nodes=n) for n in (1, 2, 4, 8)
        ]
        if meas.efficiency > 0:
            assert values == sorted(values, reverse=True)

    @given(members(), st.integers(min_value=1, max_value=256))
    @settings(max_examples=100)
    def test_allocation_layer_never_raises_magnitude(self, m, cores):
        """|P^{U,A}| <= |P^U| since CP <= 1."""
        placement = PlacementSets(
            frozenset({0}),
            tuple(frozenset({j + 1}) for j in range(m.num_couplings)),
        )
        meas = MemberMeasurement("em", m, cores, placement)
        base = apply_stages(meas, [U], total_nodes=8)
        weighted = apply_stages(meas, [U, A], total_nodes=8)
        assert abs(weighted) <= abs(base) + 1e-12
