"""Tests for stage containers and steady-state estimation."""

import pytest

from repro.core.stages import (
    AnalysisStages,
    MemberStages,
    SimulationStages,
    estimate_steady_state,
)
from repro.util.errors import ValidationError


class TestStageContainers:
    def test_simulation_active_time(self):
        s = SimulationStages(compute=10.0, write=0.5)
        assert s.active == 10.5

    def test_analysis_active_time(self):
        a = AnalysisStages(read=0.2, analyze=8.0)
        assert a.active == 8.2

    def test_negative_durations_rejected(self):
        with pytest.raises(ValidationError):
            SimulationStages(compute=-1.0, write=0.0)
        with pytest.raises(ValidationError):
            AnalysisStages(read=0.0, analyze=-0.1)

    def test_member_requires_analysis(self):
        with pytest.raises(ValidationError):
            MemberStages(SimulationStages(1.0, 0.1), ())

    def test_member_coerces_list_to_tuple(self):
        m = MemberStages(
            SimulationStages(1.0, 0.1), [AnalysisStages(0.1, 0.5)]
        )
        assert isinstance(m.analyses, tuple)
        assert m.num_couplings == 1

    def test_multi_coupling_count(self, balanced_member):
        m = MemberStages(
            balanced_member.simulation,
            balanced_member.analyses * 3,
        )
        assert m.num_couplings == 3


class TestSteadyStateEstimation:
    def test_constant_series(self):
        assert estimate_steady_state([5.0] * 20) == pytest.approx(5.0)

    def test_warmup_discarded(self):
        # 20% warm-up: first 2 of 10 samples are transient
        samples = [50.0, 30.0] + [10.0] * 8
        assert estimate_steady_state(samples, warmup_fraction=0.2) == pytest.approx(
            10.0
        )

    def test_straggler_trimmed(self):
        samples = [10.0] * 30 + [100.0]  # one straggler step
        est = estimate_steady_state(samples, warmup_fraction=0.0)
        assert est == pytest.approx(10.0)

    def test_single_sample(self):
        assert estimate_steady_state([3.0]) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            estimate_steady_state([])

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ValidationError):
            estimate_steady_state([1.0], warmup_fraction=1.0)
        with pytest.raises(ValidationError):
            estimate_steady_state([1.0], warmup_fraction=-0.1)

    def test_noisy_series_recovers_mean(self):
        import numpy as np

        rng = np.random.default_rng(0)
        samples = list(10.0 + rng.normal(scale=0.2, size=100))
        assert estimate_steady_state(samples) == pytest.approx(10.0, abs=0.1)
