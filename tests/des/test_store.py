"""Tests for Store and FilterStore."""

import math

import pytest

from repro.des.store import FilterStore, Store
from repro.util.errors import ValidationError


class TestStoreBasics:
    def test_put_then_get_fifo(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            for i in range(3):
                yield store.put(i)

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, env):
        times = []

        def consumer(env, store):
            item = yield store.get()
            times.append((item, env.now))

        def producer(env, store):
            yield env.timeout(3.0)
            yield store.put("late")

        store = Store(env)
        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert times == [("late", 3.0)]

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")  # blocks until 'a' consumed
            log.append(("put-b", env.now))

        def consumer(env, store):
            yield env.timeout(5.0)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert log == [("put-a", 0.0), ("got", "a", 5.0), ("put-b", 5.0)]

    def test_len_reports_stored_items(self, env):
        store = Store(env)

        def proc(env, store):
            yield store.put(1)
            yield store.put(2)

        env.process(proc(env, store))
        env.run()
        assert len(store) == 2

    def test_invalid_capacity_rejected(self, env):
        for bad in (0, -1, 2.5, True):
            with pytest.raises(ValidationError):
                Store(env, capacity=bad)

    def test_infinite_capacity_is_default(self, env):
        assert Store(env).capacity == math.inf


class TestFilterStore:
    def test_predicate_get_skips_non_matching(self, env):
        store = FilterStore(env)
        got = []

        def producer(env, store):
            yield store.put(("chunk", 0))
            yield store.put(("chunk", 1))

        def consumer(env, store):
            item = yield store.get(lambda it: it[1] == 1)
            got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [("chunk", 1)]
        assert list(store.items) == [("chunk", 0)]

    def test_predicate_waits_for_matching_item(self, env):
        store = FilterStore(env)
        got = []

        def consumer(env, store):
            item = yield store.get(lambda it: it == "wanted")
            got.append((item, env.now))

        def producer(env, store):
            yield env.timeout(1.0)
            yield store.put("unwanted")
            yield env.timeout(1.0)
            yield store.put("wanted")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [("wanted", 2.0)]

    def test_multiple_consumers_different_predicates(self, env):
        store = FilterStore(env)
        got = {}

        def consumer(env, store, name, want):
            item = yield store.get(lambda it, want=want: it == want)
            got[name] = item

        def producer(env, store):
            yield env.timeout(1.0)
            yield store.put("b")
            yield store.put("a")

        env.process(consumer(env, store, "ca", "a"))
        env.process(consumer(env, store, "cb", "b"))
        env.process(producer(env, store))
        env.run()
        assert got == {"ca": "a", "cb": "b"}

    def test_plain_get_is_fifo(self, env):
        store = FilterStore(env)
        got = []

        def proc(env, store):
            yield store.put(1)
            yield store.put(2)
            got.append((yield store.get()))

        env.process(proc(env, store))
        env.run()
        assert got == [1]
