"""Tests for the DES environment: clock, scheduling, run modes."""

import pytest

from repro.des.engine import EmptySchedule, Environment
from repro.util.errors import SimulationError, ValidationError


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_negative_initial_time_rejected(self):
        with pytest.raises(ValidationError):
            Environment(initial_time=-1.0)

    def test_timeout_advances_clock(self, env):
        def proc(env):
            yield env.timeout(2.5)

        env.process(proc(env))
        env.run()
        assert env.now == 2.5


class TestRunModes:
    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return "payload"

        p = env.process(proc(env))
        assert env.run(until=p) == "payload"

    def test_run_until_time_sets_clock_even_when_queue_empties(self, env):
        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_time_does_not_process_later_events(self, env):
        fired = []

        def proc(env):
            yield env.timeout(5.0)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=2.0)
        assert fired == []
        env.run()
        assert fired == [5.0]

    def test_run_until_past_time_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(ValidationError):
            env.run(until=1.0)

    def test_run_until_untriggerable_event_raises(self, env):
        orphan = env.event()
        with pytest.raises(EmptySchedule):
            env.run(until=orphan)

    def test_run_until_already_processed_event(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return 7

        p = env.process(proc(env))
        env.run()
        assert env.run(until=p) == 7

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_reports_next_event_time(self, env):
        env.timeout(3.0)
        env.timeout(1.0)
        assert env.peek() == 1.0

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")


class TestDeterminism:
    def test_same_program_identical_trace(self):
        def program():
            env = Environment()
            log = []

            def worker(env, name, delay):
                yield env.timeout(delay)
                log.append((name, env.now))

            # deliberately simultaneous events
            for name in ("a", "b", "c"):
                env.process(worker(env, name, 1.0))
            env.run()
            return log

        assert program() == program()

    def test_simultaneous_events_fifo_by_creation(self, env):
        log = []

        def worker(env, name):
            yield env.timeout(1.0)
            log.append(name)

        for name in ("first", "second", "third"):
            env.process(worker(env, name))
        env.run()
        assert log == ["first", "second", "third"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValidationError):
            env.timeout(-1.0)
