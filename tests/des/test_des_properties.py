"""Property-based tests of the DES engine's fundamental guarantees."""

from hypothesis import given, settings, strategies as st

from repro.des.engine import Environment
from repro.des.resources import Resource
from repro.des.store import Store

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=20,
)


class TestEventOrdering:
    @given(delays)
    @settings(max_examples=50)
    def test_events_fire_in_time_order(self, ds):
        env = Environment()
        fired = []

        def worker(env, delay):
            yield env.timeout(delay)
            fired.append(env.now)

        for d in ds:
            env.process(worker(env, d))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(ds)

    @given(delays)
    @settings(max_examples=50)
    def test_clock_never_goes_backwards(self, ds):
        env = Environment()
        observed = []

        def worker(env, delay):
            yield env.timeout(delay)
            observed.append(env.now)
            yield env.timeout(delay / 2 + 0.1)
            observed.append(env.now)

        for d in ds:
            env.process(worker(env, d))
        prev = -1.0
        while env.peek() != float("inf"):
            env.step()
            assert env.now >= prev
            prev = env.now


class TestResourceInvariants:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=15,
        ),
    )
    @settings(max_examples=50)
    def test_in_use_never_exceeds_capacity(self, capacity, jobs):
        env = Environment()
        res = Resource(env, capacity=capacity)
        violations = []

        def worker(env, res, amount, hold):
            amount = min(amount, res.capacity)
            req = res.request(amount)
            yield req
            if res.in_use > res.capacity:
                violations.append(res.in_use)
            yield env.timeout(hold)
            res.release(req)

        for amount, hold in jobs:
            env.process(worker(env, res, amount, hold))
        env.run()
        assert not violations
        assert res.in_use == 0  # everything returned

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=30)
    def test_all_requests_eventually_served(self, capacity, njobs):
        env = Environment()
        res = Resource(env, capacity=capacity)
        served = []

        def worker(env, res, i):
            req = res.request(1)
            yield req
            yield env.timeout(1.0)
            res.release(req)
            served.append(i)

        for i in range(njobs):
            env.process(worker(env, res, i))
        env.run()
        assert sorted(served) == list(range(njobs))


class TestStoreInvariants:
    @given(st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_items_preserved_and_fifo(self, items):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env, store):
            for item in items:
                yield store.put(item)
                yield env.timeout(0.1)

        def consumer(env, store):
            for _ in items:
                got.append((yield store.get()))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == items

    @given(
        st.lists(st.integers(), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50)
    def test_bounded_store_never_overfills(self, items, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        max_seen = [0]

        def producer(env, store):
            for item in items:
                yield store.put(item)
                max_seen[0] = max(max_seen[0], len(store))

        def consumer(env, store):
            for _ in items:
                yield env.timeout(1.0)
                yield store.get()

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert max_seen[0] <= capacity
