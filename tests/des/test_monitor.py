"""Tests for TimeSeriesMonitor."""

import numpy as np
import pytest

from repro.des.monitor import TimeSeriesMonitor
from repro.util.errors import ValidationError


def advance(env, t):
    """Advance the environment's clock to time t."""
    env.run(until=t)


class TestRecording:
    def test_records_time_value_pairs(self, env):
        mon = TimeSeriesMonitor(env)
        mon.record(1.0)
        advance(env, 2.0)
        mon.record(3.0)
        assert list(mon.times) == [0.0, 2.0]
        assert list(mon.values) == [1.0, 3.0]
        assert len(mon) == 2

    def test_same_instant_overwrites(self, env):
        mon = TimeSeriesMonitor(env)
        mon.record(1.0)
        mon.record(2.0)
        assert list(mon.values) == [2.0]

    def test_last(self, env):
        mon = TimeSeriesMonitor(env)
        assert mon.last() is None
        mon.record(5.0)
        assert mon.last() == (0.0, 5.0)


class TestIntegration:
    def test_integral_of_step_function(self, env):
        mon = TimeSeriesMonitor(env)
        mon.record(2.0)  # t=0: value 2
        advance(env, 4.0)
        mon.record(1.0)  # t=4: value 1
        advance(env, 10.0)
        # 2*4 + 1*6 = 14
        assert mon.integral() == pytest.approx(14.0)

    def test_integral_with_explicit_horizon(self, env):
        mon = TimeSeriesMonitor(env)
        mon.record(3.0)
        advance(env, 10.0)
        assert mon.integral(until=2.0) == pytest.approx(6.0)

    def test_integral_empty_is_zero(self, env):
        assert TimeSeriesMonitor(env).integral() == 0.0

    def test_integral_horizon_before_first_observation_raises(self, env):
        advance(env, 5.0)
        mon = TimeSeriesMonitor(env)
        mon.record(1.0)
        with pytest.raises(ValidationError):
            mon.integral(until=1.0)

    def test_time_weighted_mean(self, env):
        mon = TimeSeriesMonitor(env)
        mon.record(0.0)  # half the window at 0
        advance(env, 5.0)
        mon.record(10.0)  # half the window at 10
        advance(env, 10.0)
        assert mon.time_weighted_mean() == pytest.approx(5.0)

    def test_time_weighted_mean_zero_span(self, env):
        mon = TimeSeriesMonitor(env)
        mon.record(7.0)
        assert mon.time_weighted_mean() == 7.0

    def test_time_weighted_mean_empty_raises(self, env):
        with pytest.raises(ValidationError):
            TimeSeriesMonitor(env).time_weighted_mean()

    def test_utilization_tracking_use_case(self, env):
        # model a resource going 0 -> 8 -> 4 -> 0 cores busy
        mon = TimeSeriesMonitor(env, name="cores-busy")
        mon.record(0.0)
        advance(env, 1.0)
        mon.record(8.0)
        advance(env, 3.0)
        mon.record(4.0)
        advance(env, 5.0)
        mon.record(0.0)
        advance(env, 6.0)
        # integral: 0*1 + 8*2 + 4*2 + 0*1 = 24 core-seconds
        assert mon.integral() == pytest.approx(24.0)
        assert mon.time_weighted_mean() == pytest.approx(4.0)
