"""Tests for the counted-capacity Resource."""

import pytest

from repro.des.resources import Preempted, Resource
from repro.util.errors import SimulationError, ValidationError


class TestResourceBasics:
    def test_capacity_accounting(self, env):
        res = Resource(env, capacity=4)

        def proc(env, res):
            req = res.request(3)
            yield req
            assert res.in_use == 3
            assert res.available == 1
            res.release(req)
            assert res.in_use == 0

        env.process(proc(env, res))
        env.run()

    def test_invalid_capacity_rejected(self, env):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ValidationError):
                Resource(env, capacity=bad)

    def test_request_larger_than_capacity_rejected(self, env):
        res = Resource(env, capacity=2)
        with pytest.raises(ValidationError):
            res.request(3)

    def test_invalid_request_amount_rejected(self, env):
        res = Resource(env, capacity=2)
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ValidationError):
                res.request(bad)

    def test_release_ungranted_request_rejected(self, env):
        res = Resource(env, capacity=1)

        def holder(env, res):
            req = res.request(1)
            yield req
            yield env.timeout(10.0)
            res.release(req)

        env.process(holder(env, res))
        env.run(until=1.0)
        waiting = res.request(1)  # queued, not granted
        with pytest.raises(SimulationError):
            res.release(waiting)

    def test_release_to_wrong_resource_rejected(self, env):
        res1 = Resource(env, capacity=1)
        res2 = Resource(env, capacity=1)

        def proc(env):
            req = res1.request(1)
            yield req
            with pytest.raises(SimulationError):
                res2.release(req)

        env.process(proc(env))
        env.run()


class TestQueueing:
    def test_fifo_grants(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(env, res, name):
            req = res.request(1)
            yield req
            order.append(name)
            yield env.timeout(1.0)
            res.release(req)

        for name in ("a", "b", "c"):
            env.process(worker(env, res, name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_head_of_line_blocking(self, env):
        # strict FIFO: a big request at the head blocks smaller later ones
        res = Resource(env, capacity=4)
        log = []

        def holder(env, res):
            req = res.request(3)
            yield req
            yield env.timeout(10.0)
            res.release(req)
            log.append(("holder-released", env.now))

        def big(env, res):
            yield env.timeout(1.0)
            req = res.request(4)
            yield req
            log.append(("big", env.now))
            res.release(req)

        def small(env, res):
            yield env.timeout(2.0)  # arrives after 'big' queued
            req = res.request(1)
            yield req
            log.append(("small", env.now))
            res.release(req)

        env.process(holder(env, res))
        env.process(big(env, res))
        env.process(small(env, res))
        env.run()
        # small must NOT overtake big even though 1 core was free
        assert log == [
            ("holder-released", 10.0),
            ("big", 10.0),
            ("small", 10.0),
        ]

    def test_queue_length(self, env):
        res = Resource(env, capacity=1)

        def holder(env, res):
            req = res.request(1)
            yield req
            yield env.timeout(5.0)
            res.release(req)

        env.process(holder(env, res))
        env.run(until=1.0)
        res.request(1)
        res.request(1)
        assert res.queue_length == 2

    def test_cancel_pending_request(self, env):
        res = Resource(env, capacity=1)

        def holder(env, res):
            req = res.request(1)
            yield req
            yield env.timeout(5.0)
            res.release(req)

        def canceller(env, res):
            yield env.timeout(1.0)
            doomed = res.request(1)
            doomed.cancel()
            try:
                yield doomed
            except Preempted:
                return "cancelled"

        env.process(holder(env, res))
        p = env.process(canceller(env, res))
        assert env.run(until=p) == "cancelled"

    def test_cancel_granted_request_rejected(self, env):
        res = Resource(env, capacity=1)

        def proc(env, res):
            req = res.request(1)
            yield req
            with pytest.raises(SimulationError):
                req.cancel()

        env.process(proc(env, res))
        env.run()


class TestContextManager:
    def test_with_block_releases(self, env):
        res = Resource(env, capacity=1)

        def proc(env, res):
            with (yield res.request(1)):
                assert res.in_use == 1
                yield env.timeout(1.0)
            assert res.in_use == 0

        env.process(proc(env, res))
        env.run()
