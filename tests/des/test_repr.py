"""Tests for the DES debugging reprs and EmptySchedule diagnostics."""

import pytest

from repro.des.engine import EmptySchedule, Environment


class TestEventRepr:
    def test_pending(self):
        env = Environment()
        assert repr(env.event()) == "<Event pending>"

    def test_triggered_shows_value(self):
        env = Environment()
        ev = env.event()
        ev.succeed("payload")
        assert "triggered" in repr(ev)
        assert "'payload'" in repr(ev)

    def test_long_values_truncated(self):
        env = Environment()
        ev = env.event()
        ev.succeed("x" * 200)
        assert len(repr(ev)) < 80
        assert "..." in repr(ev)

    def test_failed_shows_exception_type(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        assert "exception=RuntimeError" in repr(ev)
        ev._exception = None  # avoid unraisable warning on gc
        env.run()


class TestTimeoutRepr:
    def test_shows_delay_due_time_and_priority(self):
        env = Environment()
        env.timeout(5.0)  # keeps the queue alive past the horizon
        env.run(until=2.0)
        t = env.timeout(3.5)
        text = repr(t)
        assert "delay=3.5" in text
        assert "due=t5.5" in text
        assert "priority=NORMAL" in text
        assert "triggered" in text
        env.run()
        assert "processed" in repr(t)


class TestProcessRepr:
    def test_alive_shows_name_time_and_wait_target(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1.0)
            yield env.event()  # never triggers

        proc = env.process(worker(env))
        text = repr(proc)
        assert "worker" in text
        assert "alive" in text
        try:
            env.run()
        except EmptySchedule:
            pass
        assert "waiting_on=Event" in repr(proc)

    def test_finished(self):
        env = Environment()

        def quick(env):
            yield env.timeout(0.5)

        proc = env.process(quick(env))
        env.run()
        assert "finished" not in repr(proc)  # state name is processed
        assert "processed" in repr(proc)
        assert not proc.is_alive


class TestEmptyScheduleDiagnostics:
    def test_names_stalled_processes(self):
        env = Environment()

        def stuck(env):
            yield env.event()

        env.process(stuck(env))
        with pytest.raises(EmptySchedule) as exc:
            env.run(until=env.event())
        message = str(exc.value)
        assert "stuck" in message
        assert "1 processes still alive" in message

    def test_no_processes_case(self):
        env = Environment()
        with pytest.raises(EmptySchedule) as exc:
            env.run(until=env.event())
        assert "no processes are still alive" in str(exc.value)
