"""Tests for DES processes: resumption, completion, interrupts, errors."""

import pytest

from repro.des.engine import Environment
from repro.des.events import Interrupt
from repro.util.errors import SimulationError, ValidationError


class TestProcessBasics:
    def test_process_is_an_event_with_return_value(self, env):
        def child(env):
            yield env.timeout(1.0)
            return "done"

        def parent(env):
            value = yield env.process(child(env))
            return f"child said {value}"

        p = env.process(parent(env))
        assert env.run(until=p) == "child said done"

    def test_non_generator_rejected(self, env):
        with pytest.raises(ValidationError):
            env.process(lambda: None)

    def test_is_alive_tracks_completion(self, env):
        def proc(env):
            yield env.timeout(1.0)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_yielding_non_event_fails_the_process(self, env):
        def proc(env):
            yield 42

        p = env.process(proc(env))
        env.run()
        assert p.triggered and not p.ok
        with pytest.raises(SimulationError, match="non-event"):
            _ = p.value

    def test_exception_inside_process_fails_it(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise KeyError("oops")

        p = env.process(proc(env))
        env.run()
        with pytest.raises(KeyError):
            _ = p.value

    def test_waiting_on_already_processed_event(self, env):
        def early(env, ev):
            yield env.timeout(1.0)
            ev.succeed("x")

        def late(env, ev):
            yield env.timeout(5.0)
            value = yield ev  # already processed by now
            return value

        ev = env.event()
        env.process(early(env, ev))
        p = env.process(late(env, ev))
        assert env.run(until=p) == "x"
        assert env.now == 5.0

    def test_cross_environment_yield_fails(self, env):
        other = Environment()

        def proc(env):
            yield other.timeout(1.0)

        p = env.process(proc(env))
        env.run()
        assert not p.ok


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                causes.append((i.cause, env.now))

        def attacker(env, target):
            yield env.timeout(2.0)
            target.interrupt("preempted")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert causes == [("preempted", 2.0)]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def attacker(env, target):
            yield env.timeout(2.0)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [3.0]

    def test_interrupting_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(0.5)

        def attacker(env, target):
            yield env.timeout(2.0)
            with pytest.raises(SimulationError):
                target.interrupt()

        q = env.process(quick(env))
        env.process(attacker(env, q))
        env.run()

    def test_self_interrupt_rejected(self, env):
        def proc(env):
            me = env.active_process
            with pytest.raises(SimulationError):
                me.interrupt()
            yield env.timeout(0.1)

        env.process(proc(env))
        env.run()

    def test_unhandled_interrupt_fails_process(self, env):
        def victim(env):
            yield env.timeout(100.0)

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt("die")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.triggered and not v.ok
