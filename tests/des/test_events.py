"""Tests for DES event primitives: lifecycle, conditions."""

import pytest

from repro.des.engine import Environment
from repro.util.errors import SimulationError, ValidationError


class TestEventLifecycle:
    def test_fresh_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self, env):
        ev = env.event()
        ev.succeed(41)
        env.run()
        assert ev.ok
        assert ev.value == 41

    def test_fail_carries_exception(self, env):
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        env.run()
        assert not ev.ok
        with pytest.raises(RuntimeError, match="boom"):
            _ = ev.value

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError())

    def test_fail_requires_exception_instance(self, env):
        with pytest.raises(ValidationError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().ok


class TestAllOf:
    def test_triggers_when_all_done(self, env):
        order = []

        def waiter(env, evs):
            result = yield env.all_of(evs)
            order.append(("all", env.now, sorted(result.values())))

        def fire(env, ev, delay, value):
            yield env.timeout(delay)
            ev.succeed(value)

        evs = [env.event() for _ in range(3)]
        env.process(waiter(env, evs))
        for i, ev in enumerate(evs):
            env.process(fire(env, ev, float(i + 1), i * 10))
        env.run()
        assert order == [("all", 3.0, [0, 10, 20])]

    def test_empty_all_of_triggers_immediately(self, env):
        done = []

        def waiter(env):
            yield env.all_of([])
            done.append(env.now)

        env.process(waiter(env))
        env.run()
        assert done == [0.0]

    def test_failure_propagates(self, env):
        caught = []

        def waiter(env, evs):
            try:
                yield env.all_of(evs)
            except RuntimeError as exc:
                caught.append(str(exc))

        def fail_one(env, ev):
            yield env.timeout(1.0)
            ev.fail(RuntimeError("member died"))

        evs = [env.event(), env.event()]
        env.process(waiter(env, evs))
        env.process(fail_one(env, evs[0]))
        env.run()
        assert caught == ["member died"]


class TestAnyOf:
    def test_triggers_on_first(self, env):
        results = []

        def waiter(env, evs):
            result = yield env.any_of(evs)
            results.append((env.now, dict(result)))

        def fire(env, ev, delay, value):
            yield env.timeout(delay)
            ev.succeed(value)

        evs = [env.event(), env.event()]
        env.process(waiter(env, evs))
        env.process(fire(env, evs[0], 5.0, "slow"))
        env.process(fire(env, evs[1], 1.0, "fast"))
        env.run()
        assert results == [(1.0, {1: "fast"})]

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(ValidationError):
            env.all_of([env.event(), other.event()])
