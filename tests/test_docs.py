"""Documentation health: internal links resolve (mirrors the CI job).

The CI ``docs`` job runs ``scripts/check_doc_links.py`` and the
``repro.faults`` doctests; this test keeps the link check in the
tier-1 suite so a broken cross-reference fails locally too.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent


def test_internal_doc_links_resolve(capsys):
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_doc_links import main
    finally:
        sys.path.pop(0)
    assert main(["check_doc_links", str(REPO_ROOT)]) == 0, (
        capsys.readouterr().err
    )


def test_fault_models_reference_exists():
    doc = REPO_ROOT / "docs" / "FAULT_MODELS.md"
    text = doc.read_text()
    # the reference documents every model, policy, and the surrogate
    for needle in (
        "RandomFailureModel",
        "CorrelatedFailureModel",
        "NodeFailureModel",
        "ScheduledFailureModel",
        "MarkovModulatedArrivals",
        "WeibullBurstArrivals",
        "retry",
        "restart",
        "degrade",
        "adaptive",
        "Determinism guarantees",
        "surrogate",
    ):
        assert needle in text, f"FAULT_MODELS.md lost section: {needle}"
