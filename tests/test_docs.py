"""Documentation health: internal links resolve (mirrors the CI job).

The CI ``docs`` job runs ``scripts/check_doc_links.py`` and the
``repro.faults`` doctests; this test keeps the link check in the
tier-1 suite so a broken cross-reference fails locally too.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent


def test_internal_doc_links_resolve(capsys):
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_doc_links import main
    finally:
        sys.path.pop(0)
    assert main(["check_doc_links", str(REPO_ROOT)]) == 0, (
        capsys.readouterr().err
    )


def test_scaling_docs_match_bench_script():
    # the worked example in docs/SCALING.md is golden: the table
    # header and the example row must be the exact strings
    # scripts/bench_search.py prints, so the docs cannot drift from
    # the tool
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from bench_search import (
            SCALING_EXAMPLE_ROW,
            SCALING_HEADER,
            SCALING_RULE,
            format_scaling_row,
        )
    finally:
        sys.path.pop(0)
    text = (REPO_ROOT / "docs" / "SCALING.md").read_text()
    assert SCALING_HEADER in text, "SCALING.md lost the golden header"
    assert SCALING_RULE in text, "SCALING.md lost the table rule"
    example = format_scaling_row(SCALING_EXAMPLE_ROW)
    assert example in text, (
        f"SCALING.md worked example drifted; expected line: {example}"
    )
    # PERFORMANCE.md's shipped table shares the same header format
    perf = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text()
    assert SCALING_HEADER in perf, "PERFORMANCE.md lost the scaling table"


def test_coscheduling_worked_example_is_golden():
    # the two-ensemble walkthrough in docs/COSCHEDULING.md is golden:
    # re-run the scenario and assert every number and reason string in
    # the doc's timeline is what the loop actually produces
    from repro.coschedule import (
        CoScheduler,
        canonical_mixed_deadline_stream,
        fifo_exclusive_schedule,
    )

    text = (REPO_ROOT / "docs" / "COSCHEDULING.md").read_text()
    stream = canonical_mixed_deadline_stream(num_requests=2)
    result = CoScheduler(total_nodes=6).run(stream)
    fifo = fifo_exclusive_schedule(stream, 6)

    for decision in result.decisions:
        assert decision.reason in text, (
            f"COSCHEDULING.md lost the {decision.request} admission "
            f"evidence: {decision.reason}"
        )
    for event in result.timeline:
        if event.kind != "allocation":
            continue
        assert f"t={event.time:.2f}" in text
        for entry in event.detail["entries"]:
            needle = (
                f"{entry['name']} -> offset {entry['node_offset']}, "
                f"{entry['num_nodes']} nodes  "
                f"(U={entry['utility']:.4f}, "
                f"finish {entry['finish_time']:.2f})"
            )
            assert needle in text, (
                f"COSCHEDULING.md timeline drifted; expected: {needle}"
            )
    gain = result.utilization / fifo.utilization
    for needle in (
        f"{result.utilization:.3f}",
        f"{fifo.utilization:.3f}",
        f"{gain:.2f}x",
        f"t={result.makespan:.2f}",
        f"t={fifo.makespan:.2f}",
    ):
        assert needle in text, (
            f"COSCHEDULING.md utilization summary drifted: {needle}"
        )


def test_fault_models_reference_exists():
    doc = REPO_ROOT / "docs" / "FAULT_MODELS.md"
    text = doc.read_text()
    # the reference documents every model, policy, and the surrogate
    for needle in (
        "RandomFailureModel",
        "CorrelatedFailureModel",
        "NodeFailureModel",
        "ScheduledFailureModel",
        "MarkovModulatedArrivals",
        "WeibullBurstArrivals",
        "retry",
        "restart",
        "degrade",
        "adaptive",
        "Determinism guarantees",
        "surrogate",
    ):
        assert needle in text, f"FAULT_MODELS.md lost section: {needle}"
