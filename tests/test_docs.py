"""Documentation health: internal links resolve (mirrors the CI job).

The CI ``docs`` job runs ``scripts/check_doc_links.py`` and the
``repro.faults`` doctests; this test keeps the link check in the
tier-1 suite so a broken cross-reference fails locally too.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent


def test_internal_doc_links_resolve(capsys):
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_doc_links import main
    finally:
        sys.path.pop(0)
    assert main(["check_doc_links", str(REPO_ROOT)]) == 0, (
        capsys.readouterr().err
    )


def test_scaling_docs_match_bench_script():
    # the worked example in docs/SCALING.md is golden: the table
    # header and the example row must be the exact strings
    # scripts/bench_search.py prints, so the docs cannot drift from
    # the tool
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from bench_search import (
            SCALING_EXAMPLE_ROW,
            SCALING_HEADER,
            SCALING_RULE,
            format_scaling_row,
        )
    finally:
        sys.path.pop(0)
    text = (REPO_ROOT / "docs" / "SCALING.md").read_text()
    assert SCALING_HEADER in text, "SCALING.md lost the golden header"
    assert SCALING_RULE in text, "SCALING.md lost the table rule"
    example = format_scaling_row(SCALING_EXAMPLE_ROW)
    assert example in text, (
        f"SCALING.md worked example drifted; expected line: {example}"
    )
    # PERFORMANCE.md's shipped table shares the same header format
    perf = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text()
    assert SCALING_HEADER in perf, "PERFORMANCE.md lost the scaling table"


def test_fault_models_reference_exists():
    doc = REPO_ROOT / "docs" / "FAULT_MODELS.md"
    text = doc.read_text()
    # the reference documents every model, policy, and the surrogate
    for needle in (
        "RandomFailureModel",
        "CorrelatedFailureModel",
        "NodeFailureModel",
        "ScheduledFailureModel",
        "MarkovModulatedArrivals",
        "WeibullBurstArrivals",
        "retry",
        "restart",
        "degrade",
        "adaptive",
        "Determinism guarantees",
        "surrogate",
    ):
        assert needle in text, f"FAULT_MODELS.md lost section: {needle}"
