"""Tests for effective stage-time computation under placements."""

import pytest

from repro.dtl.burstbuffer import BurstBufferDTL
from repro.dtl.dimes import InMemoryStagingDTL
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.effective import compute_effective_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.util.errors import PlacementError


def dimes_for(cluster):
    return InMemoryStagingDTL(
        network=cluster.network,
        memory_bandwidth=cluster.node_spec.memory_bandwidth,
    )


class TestEffectiveStages:
    def test_colocated_member(self, single_member_spec):
        cluster = make_cori_like_cluster(1)
        placement = EnsemblePlacement(1, (MemberPlacement(0, (0,)),))
        [member] = compute_effective_stages(
            single_member_spec, placement, cluster, dimes_for(cluster)
        )
        sim_model = single_member_spec.members[0].simulation
        # co-located: no progress tax, but contention dilation
        assert member.simulation.compute_time > sim_model.solo_compute_time()
        assert member.analyses[0].io_time < 1e-3  # local read: fast

    def test_split_member(self, single_member_spec):
        cluster = make_cori_like_cluster(2)
        placement = EnsemblePlacement(2, (MemberPlacement(0, (1,)),))
        dtl = dimes_for(cluster)
        [member] = compute_effective_stages(
            single_member_spec, placement, cluster, dtl
        )
        sim_model = single_member_spec.members[0].simulation
        solo = sim_model.solo_compute_time()
        # no contention, but the remote consumer taxes the producer
        expected = solo * (1 + dtl.producer_progress_tax) + dtl.read_cost(
            0, 1, sim_model.payload_bytes()
        ).producer_overhead
        assert member.simulation.compute_time == pytest.approx(expected)
        # remote read slower than local
        assert member.analyses[0].io_time > 1e-4

    def test_colocation_beats_split_on_sim_side(self, single_member_spec):
        """The calibrated model's key property: the co-location dilation
        costs less than the remote-serving tax."""
        cluster1 = make_cori_like_cluster(1)
        colocated = compute_effective_stages(
            single_member_spec,
            EnsemblePlacement(1, (MemberPlacement(0, (0,)),)),
            cluster1,
            dimes_for(cluster1),
        )[0]
        cluster2 = make_cori_like_cluster(2)
        split = compute_effective_stages(
            single_member_spec,
            EnsemblePlacement(2, (MemberPlacement(0, (1,)),)),
            cluster2,
            dimes_for(cluster2),
        )[0]
        assert colocated.simulation.compute_time < split.simulation.compute_time

    def test_burst_buffer_has_no_tax(self, single_member_spec):
        cluster = make_cori_like_cluster(2)
        placement = EnsemblePlacement(2, (MemberPlacement(0, (1,)),))
        [member] = compute_effective_stages(
            single_member_spec, placement, cluster, BurstBufferDTL()
        )
        sim_model = single_member_spec.members[0].simulation
        assert member.simulation.compute_time == pytest.approx(
            sim_model.solo_compute_time()
        )

    def test_write_time_is_placement_invariant(self, two_member_spec):
        cluster = make_cori_like_cluster(3)
        dtl = dimes_for(cluster)
        for placement in (
            EnsemblePlacement(
                3, (MemberPlacement(0, (0,)), MemberPlacement(1, (2,)))
            ),
            EnsemblePlacement(
                3, (MemberPlacement(0, (1,)), MemberPlacement(2, (2,)))
            ),
        ):
            members = compute_effective_stages(
                two_member_spec, placement, cluster, dtl
            )
            writes = {m.simulation.io_time for m in members}
            assert len(writes) == 1  # identical for everyone

    def test_placement_exceeding_cluster_rejected(self, single_member_spec):
        cluster = make_cori_like_cluster(1)
        placement = EnsemblePlacement(2, (MemberPlacement(0, (1,)),))
        with pytest.raises(PlacementError):
            compute_effective_stages(
                single_member_spec, placement, cluster, dimes_for(cluster)
            )

    def test_total_cores_carried(self, two_member_spec):
        cluster = make_cori_like_cluster(2)
        placement = EnsemblePlacement(
            2, (MemberPlacement(0, (0,)), MemberPlacement(1, (1,)))
        )
        members = compute_effective_stages(
            two_member_spec, placement, cluster, dimes_for(cluster)
        )
        assert all(m.total_cores == 24 for m in members)
