"""The runtime on non-Cori platforms.

Nothing in the stack hard-codes the paper's platform: these tests run
ensembles on the small 8-core test cluster and on custom node shapes,
checking that placement validation, contention, and the indicators all
follow the spec'd hardware.
"""

import pytest

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.core import IndicatorStage
from repro.dtl.dimes import InMemoryStagingDTL
from repro.platform.cache import CacheSpec
from repro.platform.cluster import Cluster
from repro.platform.node import NodeSpec
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.runner import run_ensemble
from repro.runtime.spec import EnsembleSpec, MemberSpec
from repro.util.errors import PlacementError
from repro.util.units import GIB, MIB

U, A, P = (
    IndicatorStage.USAGE,
    IndicatorStage.ALLOCATION,
    IndicatorStage.PROVISIONING,
)


def small_member(name, sim_cores=4, ana_cores=2, n_steps=4):
    sim = MDSimulationModel(
        f"{name}.sim", cores=sim_cores, natoms=10_000, stride=100
    )
    ana = EigenAnalysisModel(
        f"{name}.ana", cores=ana_cores, natoms=10_000, single_core_time=1.0
    )
    return MemberSpec(name, sim, (ana,), n_steps=n_steps)


class TestSmallCluster:
    def test_runs_on_8_core_nodes(self, small_cluster):
        spec = EnsembleSpec("small", (small_member("em1"),))
        placement = EnsemblePlacement(1, (MemberPlacement(0, (0,)),))
        result = run_ensemble(spec, placement, cluster=small_cluster)
        assert result.ensemble_makespan > 0
        assert result.objective([U, A, P]) > 0

    def test_capacity_enforced_per_spec(self, small_cluster):
        # 16-core simulation cannot fit an 8-core node
        spec = EnsembleSpec("big", (small_member("em1", sim_cores=16),))
        placement = EnsemblePlacement(1, (MemberPlacement(0, (0,)),))
        with pytest.raises(PlacementError):
            run_ensemble(spec, placement, cluster=small_cluster)

    def test_contention_reflects_small_llc(self, small_cluster):
        """On the 8 MiB-LLC test node, even the small workloads contend."""
        spec = EnsembleSpec("small", (small_member("em1"),))
        colocated = run_ensemble(
            spec,
            EnsemblePlacement(1, (MemberPlacement(0, (0,)),)),
            cluster=small_cluster,
        )
        small_cluster.reset()
        split = run_ensemble(
            spec,
            EnsemblePlacement(2, (MemberPlacement(0, (1,)),)),
            cluster=small_cluster,
        )
        sim_colo = colocated.component_metrics["em1.sim"].llc_miss_ratio
        sim_split = split.component_metrics["em1.sim"].llc_miss_ratio
        assert sim_colo > sim_split


class TestCustomPlatform:
    def test_single_socket_fat_node(self):
        """A 1-socket 64-core node: every co-location shares one LLC."""
        spec_node = NodeSpec(
            cores=64,
            sockets=1,
            core_freq_hz=2.0e9,
            llc=CacheSpec(size_bytes=64 * MIB),
            memory_bytes=256 * GIB,
            memory_bandwidth=200e9,
        )
        cluster = Cluster(spec_node, num_nodes=1)
        dtl = InMemoryStagingDTL(
            network=cluster.network, memory_bandwidth=200e9
        )
        spec = EnsembleSpec(
            "fat",
            (small_member("em1", sim_cores=16, ana_cores=8),
             small_member("em2", sim_cores=16, ana_cores=8)),
        )
        placement = EnsemblePlacement(
            1, (MemberPlacement(0, (0,)), MemberPlacement(0, (0,)))
        )
        result = run_ensemble(spec, placement, cluster=cluster, dtl=dtl)
        # all four components share one socket: everyone contends
        for name, cm in result.component_metrics.items():
            profile_solo = (
                0.06 if name.endswith(".sim") else 0.25
            )
            assert cm.llc_miss_ratio > profile_solo

    def test_four_socket_node_isolates_quarters(self):
        """With compact pinning on a 4-socket node, four 8-core
        components land on distinct sockets and see zero LLC contention."""
        spec_node = NodeSpec(
            cores=32,
            sockets=4,
            llc=CacheSpec(size_bytes=20 * MIB),
            placement_policy="compact",
        )
        cluster = Cluster(spec_node, num_nodes=1)
        spec = EnsembleSpec(
            "quad",
            (small_member("em1", sim_cores=8, ana_cores=8),
             small_member("em2", sim_cores=8, ana_cores=8)),
        )
        placement = EnsemblePlacement(
            1, (MemberPlacement(0, (0,)), MemberPlacement(0, (0,)))
        )
        result = run_ensemble(spec, placement, cluster=cluster)
        for name, cm in result.component_metrics.items():
            solo = 0.06 if name.endswith(".sim") else 0.25
            assert cm.llc_miss_ratio == pytest.approx(solo)
