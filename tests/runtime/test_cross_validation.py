"""Cross-validation: the analytic predictor vs the DES executor.

The two share the effective stage-time model; the executor adds the
protocol dynamics. In steady state (no noise) the executor's estimated
stage times must match the analytic prediction almost exactly, and the
measured makespan must match Eq. 2.
"""

import pytest

from repro.configs.table2 import table2
from repro.configs.table4 import table4
from repro.configs.base import build_spec
from repro.core.insitu import member_makespan, non_overlapped_segment
from repro.runtime.analytic import predict_member_stages
from repro.runtime.runner import run_ensemble
from tests.tolerances import NOISY_REL, STAGE_REL


@pytest.mark.parametrize("config", table2(), ids=lambda c: c.name)
def test_table2_configs_match(config):
    spec = build_spec(config, n_steps=6)
    placement = config.placement()
    predicted = predict_member_stages(spec, placement)
    result = run_ensemble(spec, placement)

    for member in result.members:
        pred = predicted[member.name]
        meas = member.stages
        assert meas.simulation.compute == pytest.approx(
            pred.simulation.compute, rel=STAGE_REL
        )
        assert meas.simulation.write == pytest.approx(
            pred.simulation.write, rel=STAGE_REL
        )
        for mi, pi in zip(meas.analyses, pred.analyses):
            assert mi.read == pytest.approx(pi.read, rel=STAGE_REL)
            assert mi.analyze == pytest.approx(pi.analyze, rel=STAGE_REL)
        # Eq. 2 holds for the measured makespan up to pipeline fill
        sigma = non_overlapped_segment(pred)
        expected = member_makespan(pred, 6)
        assert abs(member.makespan - expected) < sigma


@pytest.mark.parametrize("config", table4(), ids=lambda c: c.name)
def test_table4_configs_match(config):
    spec = build_spec(config, n_steps=5)
    placement = config.placement()
    predicted = predict_member_stages(spec, placement)
    result = run_ensemble(spec, placement)
    for member in result.members:
        pred = predicted[member.name]
        assert member.stages.simulation.compute == pytest.approx(
            pred.simulation.compute, rel=STAGE_REL
        )
        for mi, pi in zip(member.stages.analyses, pred.analyses):
            assert mi.analyze == pytest.approx(pi.analyze, rel=STAGE_REL)


def test_noisy_executor_converges_to_prediction(two_member_spec):
    """With noise, steady-state estimates approach the analytic values
    as jitter averages out across steps."""
    from repro.runtime.placement import pack_members_per_node

    placement = pack_members_per_node(two_member_spec)
    predicted = predict_member_stages(two_member_spec, placement)
    result = run_ensemble(
        two_member_spec, placement, seed=3, timing_noise=0.03
    )
    for member in result.members:
        pred = predicted[member.name]
        assert member.stages.simulation.compute == pytest.approx(
            pred.simulation.compute, rel=NOISY_REL
        )
