"""Tests for the placement what-if comparison API."""

import pytest

from repro.configs.table2 import get_config
from repro.runtime.compare import compare_placements, render_comparison
from repro.runtime.placement import pack_members_per_node, spread_components
from repro.util.errors import ValidationError


@pytest.fixture
def candidates(two_member_spec):
    return {
        "C1.4": get_config("C1.4").placement(),
        "C1.5": get_config("C1.5").placement(),
        "spread": spread_components(two_member_spec),
    }


class TestComparePlacements:
    def test_ranked_best_first(self, two_member_spec, candidates):
        results = compare_placements(two_member_spec, candidates)
        objectives = [c.objective for c in results]
        assert objectives == sorted(objectives, reverse=True)
        assert results[0].name == "C1.5"

    def test_fields_populated(self, two_member_spec, candidates):
        results = compare_placements(two_member_spec, candidates)
        for c in results:
            assert c.ensemble_makespan > 0
            assert set(c.member_efficiencies) == {"em1", "em2"}
            assert set(c.objective_paths) == {
                "U", "U,P", "U,A", "U,P,A", "U,A,P",
            }
            assert c.objective == pytest.approx(c.objective_paths["U,A,P"])

    def test_consistent_with_figure8(self, two_member_spec, candidates):
        """C1.5 beats C1.4 at U,A but not at U,P — the Figure 8 story
        through this API."""
        results = {
            c.name: c
            for c in compare_placements(two_member_spec, candidates)
        }
        c14, c15 = results["C1.4"], results["C1.5"]
        assert c15.objective_paths["U,A"] > 1.5 * c14.objective_paths["U,A"]
        ratio = c14.objective_paths["U,P"] / c15.objective_paths["U,P"]
        assert 0.9 < ratio < 1.1

    def test_empty_rejected(self, two_member_spec):
        with pytest.raises(ValidationError):
            compare_placements(two_member_spec, {})

    def test_render(self, two_member_spec, candidates):
        results = compare_placements(two_member_spec, candidates)
        text = render_comparison(results)
        for name in candidates:
            assert name in text
        assert "F(U,A,P)" in text

    def test_render_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_comparison([])


class TestExperimentResultPersistence:
    def test_json_round_trip(self, tmp_path):
        from repro.experiments.fig7 import run_fig7
        from repro.experiments.base import ExperimentResult

        original = run_fig7()
        path = tmp_path / "fig7.json"
        original.save(path)
        loaded = ExperimentResult.load(path)
        assert loaded.experiment_id == original.experiment_id
        assert loaded.columns == original.columns
        assert loaded.rows == original.rows
        assert loaded.to_text() == original.to_text()

    def test_malformed_json_rejected(self):
        from repro.experiments.base import ExperimentResult

        with pytest.raises(ValidationError):
            ExperimentResult.from_json("{not json")
        with pytest.raises(ValidationError):
            ExperimentResult.from_json('{"title": "x"}')
