"""Tests for ensemble placements."""

import pytest

from repro.runtime.placement import (
    EnsemblePlacement,
    MemberPlacement,
    pack_members_per_node,
    spread_components,
)
from repro.runtime.spec import EnsembleSpec, default_member
from repro.util.errors import PlacementError, ValidationError


class TestMemberPlacement:
    def test_used_nodes(self):
        mp = MemberPlacement(0, (1, 0, 2))
        assert mp.used_nodes == frozenset({0, 1, 2})
        assert mp.num_couplings == 3

    def test_to_placement_sets(self):
        ps = MemberPlacement(0, (2,)).to_placement_sets()
        assert ps.simulation_nodes == frozenset({0})
        assert ps.analysis_nodes == (frozenset({2}),)

    def test_validation(self):
        with pytest.raises(ValidationError):
            MemberPlacement(-1, (0,))
        with pytest.raises(ValidationError):
            MemberPlacement(0, ())
        with pytest.raises(ValidationError):
            MemberPlacement(0, (-2,))


class TestEnsemblePlacement:
    def test_node_indexes_must_fit_allocation(self):
        with pytest.raises(PlacementError):
            EnsemblePlacement(2, (MemberPlacement(0, (2,)),))

    def test_used_nodes_across_members(self):
        pl = EnsemblePlacement(
            3, (MemberPlacement(0, (2,)), MemberPlacement(1, (2,)))
        )
        assert pl.used_nodes == frozenset({0, 1, 2})

    def test_validate_against_spec(self, two_member_spec):
        pl = EnsemblePlacement(
            2, (MemberPlacement(0, (0,)), MemberPlacement(1, (1,)))
        )
        demand = pl.validate_against(two_member_spec, cores_per_node=32)
        assert demand == {0: 24, 1: 24}

    def test_member_count_mismatch(self, two_member_spec):
        pl = EnsemblePlacement(1, (MemberPlacement(0, (0,)),))
        with pytest.raises(PlacementError):
            pl.validate_against(two_member_spec, cores_per_node=32)

    def test_coupling_count_mismatch(self, two_member_spec):
        pl = EnsemblePlacement(
            2,
            (MemberPlacement(0, (0, 1)), MemberPlacement(1, (1,))),
        )
        with pytest.raises(PlacementError):
            pl.validate_against(two_member_spec, cores_per_node=32)

    def test_oversubscription_detected(self, two_member_spec):
        # both members (24 cores each) on one node of 32
        pl = EnsemblePlacement(
            2, (MemberPlacement(0, (0,)), MemberPlacement(0, (0,)))
        )
        with pytest.raises(PlacementError, match="oversubscribed"):
            pl.validate_against(two_member_spec, cores_per_node=32)


class TestBuilders:
    def test_pack_members_per_node_is_c15_pattern(self, two_member_spec):
        pl = pack_members_per_node(two_member_spec)
        assert pl.num_nodes == 2
        for i, mp in enumerate(pl.members):
            assert mp.simulation_node == i
            assert all(n == i for n in mp.analysis_nodes)

    def test_spread_components_uses_one_node_each(self, two_member_spec):
        pl = spread_components(two_member_spec)
        assert pl.num_nodes == 4  # 2 members x (1 sim + 1 ana)
        seen = set()
        for mp in pl.members:
            for node in (mp.simulation_node,) + mp.analysis_nodes:
                assert node not in seen
                seen.add(node)

    def test_builders_respect_k(self):
        spec = EnsembleSpec(
            "e",
            (default_member("em1", num_analyses=2),
             default_member("em2", num_analyses=2)),
        )
        packed = pack_members_per_node(spec)
        assert packed.members[0].num_couplings == 2
        spread = spread_components(spec)
        assert spread.num_nodes == 6
