"""Property-based cross-validation of the executor against Eqs. 1-2.

For randomly parameterized members and arbitrary (feasible) placements,
the noise-free discrete-event execution must agree with the closed-form
steady state: traced stage times equal the analytic prediction, and the
measured makespan is ``n_steps * sigma*`` plus a sub-``sigma*`` drain.
"""

import pytest
from hypothesis import given

from repro.core.insitu import non_overlapped_segment
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.runner import run_ensemble
from tests.strategies import common_settings as common
from tests.strategies import des_ensembles as member_specs
from tests.strategies import des_placements as placements


class TestExecutorMatchesModel:
    @given(member_specs(), placements())
    @common
    def test_traced_stages_equal_prediction(self, spec, placement):
        predicted = predict_member_stages(spec, placement)["p"]
        result = run_ensemble(spec, placement)
        measured = result.members[0].stages
        assert measured.simulation.compute == pytest.approx(
            predicted.simulation.compute, rel=1e-9
        )
        assert measured.simulation.write == pytest.approx(
            predicted.simulation.write, rel=1e-9
        )
        assert measured.analyses[0].read == pytest.approx(
            predicted.analyses[0].read, rel=1e-9
        )
        assert measured.analyses[0].analyze == pytest.approx(
            predicted.analyses[0].analyze, rel=1e-9
        )

    @given(member_specs(), placements())
    @common
    def test_makespan_is_eq2_plus_drain(self, spec, placement):
        predicted = predict_member_stages(spec, placement)["p"]
        sigma = non_overlapped_segment(predicted)
        n = spec.members[0].n_steps
        result = run_ensemble(spec, placement)
        makespan = result.members[0].makespan
        assert n * sigma - 1e-9 <= makespan <= (n + 1) * sigma + 1e-9

    @given(member_specs())
    @common
    def test_colocated_never_slower_on_read(self, spec):
        """DIMES locality property: the co-located read never costs
        more than the remote read for the same member."""
        local = predict_member_stages(
            spec, EnsemblePlacement(2, (MemberPlacement(0, (0,)),))
        )["p"]
        remote = predict_member_stages(
            spec, EnsemblePlacement(2, (MemberPlacement(0, (1,)),))
        )["p"]
        assert local.analyses[0].read <= remote.analyses[0].read + 1e-12
