"""Tests for the congestion-aware (NIC-serialized) executor mode."""

import pytest

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.monitoring.tracer import Stage
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec


def heavy_payload_spec(n_steps=3):
    """A member whose frames are huge: transport time ~seconds, so NIC
    serialization is visible against the compute stages."""
    sim = MDSimulationModel(
        "h.sim",
        cores=16,
        natoms=2_000_000,  # ~24 MB frames
        stride=100,
        seconds_per_atom_step=2e-8,  # fast compute: S ~ 0.5 s
    )
    analyses = (
        EigenAnalysisModel(
            "h.ana1", cores=8, natoms=2_000_000, single_core_time=2.0
        ),
        EigenAnalysisModel(
            "h.ana2", cores=8, natoms=2_000_000, single_core_time=2.0
        ),
    )
    return EnsembleSpec(
        "heavy", (MemberSpec("h", sim, analyses, n_steps=n_steps),)
    )


@pytest.fixture
def remote_placement():
    # both analyses remote, on the same consumer node, reading from n0
    return EnsemblePlacement(2, (MemberPlacement(0, (1, 1)),))


class TestCongestionMode:
    def test_serialization_staggers_reads(self, remote_placement):
        spec = heavy_payload_spec()
        result = EnsembleExecutor(
            spec, remote_placement, congestion_aware=True
        ).run()
        tracer = result.tracer
        # the two analyses read the same step concurrently; with the
        # NIC serialized, their transport phases cannot overlap: the
        # second read's end is at least one transport later
        r1 = [
            r for r in tracer.of_component("h.ana1")
            if r.stage == Stage.ANA_READ and r.step == 0
        ][0]
        r2 = [
            r for r in tracer.of_component("h.ana2")
            if r.stage == Stage.ANA_READ and r.step == 0
        ][0]
        first, second = sorted([r1, r2], key=lambda r: r.end)
        # both start together after W, but the loser waits for the NIC
        assert second.duration > 1.4 * first.duration

    def test_stagger_persists_down_the_pipeline(self, remote_placement):
        """After the step-0 NIC queueing, the two analyses stay offset
        by one transport time: their later reads arrive pre-staggered
        and need no further queueing — the steady state of a serialized
        link."""
        spec = heavy_payload_spec()
        congested = EnsembleExecutor(
            spec, remote_placement, congestion_aware=True
        ).run()
        tracer = congested.tracer
        transport = 0.0024  # 24 MB at 10 GB/s
        for step in range(1, 3):
            starts = {}
            for a in ("h.ana1", "h.ana2"):
                rec = [
                    r
                    for r in tracer.of_component(a)
                    if r.stage == Stage.ANA_READ and r.step == step
                ][0]
                starts[a] = rec.start
            offset = abs(starts["h.ana1"] - starts["h.ana2"])
            assert offset == pytest.approx(transport, rel=0.1)

    def test_total_read_time_strictly_extended(self, remote_placement):
        spec = heavy_payload_spec()
        plain = EnsembleExecutor(spec, remote_placement).run()
        congested = EnsembleExecutor(
            spec, remote_placement, congestion_aware=True
        ).run()
        plain_r = sum(
            sum(plain.tracer.durations(a, Stage.ANA_READ))
            for a in ("h.ana1", "h.ana2")
        )
        congested_r = sum(
            sum(congested.tracer.durations(a, Stage.ANA_READ))
            for a in ("h.ana1", "h.ana2")
        )
        assert congested_r > plain_r + 0.002  # one queued transport

    def test_local_reads_unaffected(self):
        spec = heavy_payload_spec()
        colocated = EnsemblePlacement(1, (MemberPlacement(0, (0, 0)),))
        plain = EnsembleExecutor(spec, colocated).run()
        congested = EnsembleExecutor(
            spec, colocated, congestion_aware=True
        ).run()
        assert congested.ensemble_makespan == pytest.approx(
            plain.ensemble_makespan
        )

    def test_negligible_at_paper_scale(self, two_member_spec):
        """At the paper's 3 MB frames, congestion changes nothing
        measurable — which is why the default leaves it off."""
        from repro.configs.table2 import get_config

        config = get_config("C1.2")  # two sims on n0, remote analyses
        from repro.configs.base import build_spec

        spec = build_spec(config, n_steps=4)
        plain = EnsembleExecutor(spec, config.placement()).run()
        congested = EnsembleExecutor(
            spec, config.placement(), congestion_aware=True
        ).run()
        assert congested.ensemble_makespan == pytest.approx(
            plain.ensemble_makespan, rel=1e-3
        )

    def test_protocol_still_correct(self, remote_placement):
        """Serialization must not break the W/R ordering."""
        spec = heavy_payload_spec()
        result = EnsembleExecutor(
            spec, remote_placement, congestion_aware=True
        ).run()
        tracer = result.tracer
        for step in range(3):
            w_end = tracer.stage_end("h.sim", Stage.SIM_WRITE, step)
            for ana in ("h.ana1", "h.ana2"):
                reads = [
                    r
                    for r in tracer.of_component(ana)
                    if r.stage == Stage.ANA_READ and r.step == step
                ]
                assert reads[0].start >= w_end - 1e-9
