"""Tests for result assembly and the indicator bridge."""

import pytest

from repro.core.indicators import IndicatorStage
from repro.core.objective import objective_function
from repro.runtime.runner import run_ensemble

U = IndicatorStage.USAGE
A = IndicatorStage.ALLOCATION
P = IndicatorStage.PROVISIONING


@pytest.fixture
def result(two_member_spec, colocated_placement):
    return run_ensemble(two_member_spec, colocated_placement)


class TestExecutionResult:
    def test_component_metrics_for_every_component(
        self, result, two_member_spec
    ):
        names = {
            n for m in two_member_spec.members for n in m.component_names
        }
        assert set(result.component_metrics) == names
        assert set(result.counters) == names

    def test_metrics_consistent_with_counters(self, result):
        for name, cm in result.component_metrics.items():
            counters = result.counters[name]
            assert cm.llc_miss_ratio == pytest.approx(counters.llc_miss_ratio)
            assert cm.ipc == pytest.approx(counters.ipc)
            assert cm.memory_intensity == pytest.approx(
                counters.memory_intensity
            )

    def test_total_nodes_is_allocation_size(self, result):
        assert result.total_nodes == 2

    def test_member_makespans_accessor(self, result):
        assert set(result.member_makespans) == {"em1", "em2"}
        assert result.ensemble_makespan == max(
            result.member_makespans.values()
        )

    def test_indicator_values_per_member(self, result):
        values = result.indicator_values([U, A, P])
        assert set(values) == {"em1", "em2"}
        for v in values.values():
            assert v > 0

    def test_objective_matches_manual_computation(self, result):
        values = list(result.indicator_values([U]).values())
        assert result.objective([U]) == pytest.approx(
            objective_function(values)
        )

    def test_measurement_placements_preserved(self, result):
        for i, member in enumerate(result.members):
            ps = member.measurement.placement
            assert ps.simulation_nodes == frozenset({i})
            assert ps.analysis_nodes == (frozenset({i}),)

    def test_efficiency_matches_stage_math(self, result):
        from repro.core.efficiency import computational_efficiency

        for m in result.members:
            assert m.efficiency == pytest.approx(
                computational_efficiency(m.stages)
            )
