"""Tests for the discrete-event ensemble executor."""

import pytest

from repro.core.insitu import non_overlapped_segment
from repro.monitoring.tracer import Stage
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.runner import run_ensemble
from repro.util.errors import ValidationError


@pytest.fixture
def result(two_member_spec, colocated_placement):
    return run_ensemble(two_member_spec, colocated_placement)


class TestExecution:
    def test_all_steps_executed(self, result, two_member_spec):
        n = two_member_spec.members[0].n_steps
        for member in two_member_spec.members:
            assert result.tracer.num_steps(member.simulation.name) == n
            for ana in member.analyses:
                assert result.tracer.num_steps(ana.name) == n

    def test_every_stage_recorded(self, result, two_member_spec):
        member = two_member_spec.members[0]
        sim = member.simulation.name
        ana = member.analyses[0].name
        n = member.n_steps
        for stage in (Stage.SIM_COMPUTE, Stage.SIM_IDLE, Stage.SIM_WRITE):
            assert len(result.tracer.durations(sim, stage)) == n
        for stage in (Stage.ANA_READ, Stage.ANA_COMPUTE, Stage.ANA_IDLE):
            assert len(result.tracer.durations(ana, stage)) == n

    def test_member_results_complete(self, result):
        assert len(result.members) == 2
        for m in result.members:
            assert m.makespan > 0
            assert 0 < m.efficiency <= 1
        assert result.ensemble_makespan == max(
            m.makespan for m in result.members
        )

    def test_deterministic_without_noise(
        self, two_member_spec, colocated_placement
    ):
        r1 = run_ensemble(two_member_spec, colocated_placement, seed=0)
        r2 = run_ensemble(two_member_spec, colocated_placement, seed=99)
        # no noise: seeds must not matter
        assert r1.ensemble_makespan == r2.ensemble_makespan

    def test_noise_is_seeded(self, two_member_spec, colocated_placement):
        r1 = run_ensemble(
            two_member_spec, colocated_placement, seed=1, timing_noise=0.05
        )
        r2 = run_ensemble(
            two_member_spec, colocated_placement, seed=1, timing_noise=0.05
        )
        r3 = run_ensemble(
            two_member_spec, colocated_placement, seed=2, timing_noise=0.05
        )
        assert r1.ensemble_makespan == r2.ensemble_makespan
        assert r1.ensemble_makespan != r3.ensemble_makespan

    def test_negative_noise_rejected(self, two_member_spec, colocated_placement):
        with pytest.raises(ValidationError):
            EnsembleExecutor(
                two_member_spec, colocated_placement, timing_noise=-0.1
            )


class TestProtocolOrdering:
    """The synchronous no-buffering protocol of §2.1/§3.1."""

    def _tracer(self, spec, placement):
        return run_ensemble(spec, placement).tracer

    def test_read_follows_write(self, two_member_spec, colocated_placement):
        tracer = self._tracer(two_member_spec, colocated_placement)
        for member in two_member_spec.members:
            sim = member.simulation.name
            for ana in member.analyses:
                for step in range(member.n_steps):
                    w_end = tracer.stage_end(sim, Stage.SIM_WRITE, step)
                    r_recs = [
                        r
                        for r in tracer.of_component(ana.name)
                        if r.stage == Stage.ANA_READ and r.step == step
                    ]
                    assert r_recs[0].start >= w_end - 1e-9

    def test_next_write_follows_all_reads(
        self, two_member_spec, colocated_placement
    ):
        tracer = self._tracer(two_member_spec, colocated_placement)
        for member in two_member_spec.members:
            sim = member.simulation.name
            for step in range(1, member.n_steps):
                w_recs = [
                    r
                    for r in tracer.of_component(sim)
                    if r.stage == Stage.SIM_WRITE and r.step == step
                ]
                for ana in member.analyses:
                    r_end = tracer.stage_end(
                        ana.name, Stage.ANA_READ, step - 1
                    )
                    assert w_recs[0].start >= r_end - 1e-9

    def test_stages_contiguous_per_component(
        self, two_member_spec, colocated_placement
    ):
        """Each component's stage records tile its timeline with no gaps."""
        tracer = self._tracer(two_member_spec, colocated_placement)
        for comp in tracer.components:
            recs = sorted(
                tracer.of_component(comp), key=lambda r: (r.start, r.end)
            )
            for prev, nxt in zip(recs, recs[1:]):
                assert nxt.start == pytest.approx(prev.end, abs=1e-9)


class TestSteadyState:
    def test_traced_steady_state_matches_sigma(
        self, two_member_spec, colocated_placement
    ):
        """Measured per-step period equals Eq. 1's sigma (no noise)."""
        result = run_ensemble(two_member_spec, colocated_placement)
        for m in result.members:
            sigma = non_overlapped_segment(m.stages)
            n = two_member_spec.members[0].n_steps
            # member makespan = n_steps * sigma + the final pipeline
            # drain (the last analysis step runs after the last write),
            # which is strictly less than one extra sigma
            assert n * sigma - 1e-9 <= m.makespan <= (n + 1) * sigma

    def test_oversubscribed_run_allowed_when_requested(self, two_member_spec):
        placement = EnsemblePlacement(
            2, (MemberPlacement(0, (0,)), MemberPlacement(0, (1,)))
        )
        with pytest.raises(Exception):
            run_ensemble(two_member_spec, placement)
        result = run_ensemble(
            two_member_spec, placement, allow_oversubscription=True
        )
        assert result.ensemble_makespan > 0
