"""Tests for ensemble/member specifications."""

import pytest

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.runtime.spec import EnsembleSpec, MemberSpec, default_member
from repro.util.errors import ConfigurationError, ValidationError


class TestMemberSpec:
    def test_total_cores(self):
        m = default_member("em1", num_analyses=2)
        assert m.total_cores == 16 + 8 + 8

    def test_component_names(self):
        m = default_member("em1", num_analyses=2)
        assert m.component_names == ("em1.sim", "em1.ana1", "em1.ana2")

    def test_simulation_slot_type_checked(self):
        ana = EigenAnalysisModel("a")
        with pytest.raises(ConfigurationError):
            MemberSpec("m", ana, (EigenAnalysisModel("b"),))

    def test_analysis_slot_type_checked(self):
        sim = MDSimulationModel("s")
        with pytest.raises(ConfigurationError):
            MemberSpec("m", sim, (MDSimulationModel("s2"),))

    def test_at_least_one_analysis(self):
        with pytest.raises(ConfigurationError):
            MemberSpec("m", MDSimulationModel("s"), ())

    def test_duplicate_component_names_rejected(self):
        sim = MDSimulationModel("x")
        with pytest.raises(ConfigurationError):
            MemberSpec("m", sim, (EigenAnalysisModel("x"),))

    def test_n_steps_validated(self):
        with pytest.raises(ValidationError):
            default_member("m", n_steps=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            MemberSpec("", MDSimulationModel("s"), (EigenAnalysisModel("a"),))


class TestEnsembleSpec:
    def test_member_count(self, two_member_spec):
        assert two_member_spec.num_members == 2

    def test_duplicate_member_names_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                "e", (default_member("em1"), default_member("em1"))
            )

    def test_component_names_unique_across_members(self):
        m1 = MemberSpec(
            "a", MDSimulationModel("shared"), (EigenAnalysisModel("a1"),)
        )
        m2 = MemberSpec(
            "b", MDSimulationModel("shared"), (EigenAnalysisModel("b1"),)
        )
        with pytest.raises(ConfigurationError):
            EnsembleSpec("e", (m1, m2))

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleSpec("e", ())


class TestDefaultMember:
    def test_paper_defaults(self):
        m = default_member("em1")
        assert m.simulation.cores == 16
        assert m.simulation.stride == 800
        assert m.analyses[0].cores == 8
        assert m.n_steps == 37
        assert m.num_couplings == 1

    def test_custom_analysis_count(self):
        m = default_member("em1", num_analyses=3)
        assert m.num_couplings == 3
