"""Tests for the executor's real-chunk staging mode."""

import pytest

from repro.dtl.dimes import InMemoryStagingDTL
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.placement import pack_members_per_node


@pytest.fixture
def dtl(two_member_spec, colocated_placement):
    dtl = InMemoryStagingDTL()
    executor = EnsembleExecutor(
        two_member_spec,
        colocated_placement,
        dtl=dtl,
        stage_real_chunks=True,
    )
    executor.run()
    return dtl


class TestRealChunkMode:
    def test_every_chunk_staged_and_consumed(
        self, dtl, two_member_spec
    ):
        n = two_member_spec.members[0].n_steps
        members = two_member_spec.num_members
        assert dtl.reads_served_total == n * members  # K = 1
        assert dtl.live_slots == 0  # fully drained

    def test_bytes_accounted(self, dtl, two_member_spec):
        n = two_member_spec.members[0].n_steps
        members = two_member_spec.num_members
        # sentinel payload: two float64 per chunk
        assert dtl.bytes_staged_total == n * members * 16

    def test_multi_analysis_members(self):
        from repro.runtime.spec import EnsembleSpec, default_member

        spec = EnsembleSpec(
            "k2", (default_member("em1", num_analyses=2, n_steps=4),)
        )
        dtl = InMemoryStagingDTL()
        EnsembleExecutor(
            spec,
            pack_members_per_node(spec),
            dtl=dtl,
            stage_real_chunks=True,
        ).run()
        assert dtl.reads_served_total == 4 * 2  # each analysis reads each step
        assert dtl.live_slots == 0

    def test_timing_identical_with_and_without(
        self, two_member_spec, colocated_placement
    ):
        """Real staging is bookkeeping, not timing: makespans match."""
        plain = EnsembleExecutor(
            two_member_spec, colocated_placement
        ).run()
        real = EnsembleExecutor(
            two_member_spec,
            colocated_placement,
            dtl=InMemoryStagingDTL(),
            stage_real_chunks=True,
        ).run()
        assert plain.ensemble_makespan == pytest.approx(
            real.ensemble_makespan
        )

    def test_works_under_noise(self, two_member_spec, colocated_placement):
        dtl = InMemoryStagingDTL()
        result = EnsembleExecutor(
            two_member_spec,
            colocated_placement,
            dtl=dtl,
            seed=3,
            timing_noise=0.05,
            stage_real_chunks=True,
        ).run()
        assert result.ensemble_makespan > 0
        assert dtl.live_slots == 0
