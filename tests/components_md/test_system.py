"""Tests for particle-system construction."""

import numpy as np
import pytest

from repro.components.md.system import ParticleSystem, build_system, fcc_lattice
from repro.util.errors import ValidationError
from repro.util.rng import RandomSource


class TestFccLattice:
    def test_site_count(self):
        assert fcc_lattice(2, 4.0).shape == (32, 3)  # 4 * 2^3

    def test_sites_inside_box(self):
        sites = fcc_lattice(3, 6.0)
        assert (sites >= 0).all()
        assert (sites < 6.0).all()

    def test_no_overlapping_sites(self):
        sites = fcc_lattice(3, 6.0)
        diffs = sites[:, None, :] - sites[None, :, :]
        d2 = (diffs**2).sum(axis=-1)
        np.fill_diagonal(d2, np.inf)
        assert d2.min() > 1e-6

    def test_minimum_separation_is_fcc_nearest_neighbor(self):
        a = 6.0 / 3  # cell edge
        sites = fcc_lattice(3, 6.0)
        diffs = sites[:, None, :] - sites[None, :, :]
        diffs -= 6.0 * np.round(diffs / 6.0)
        d2 = (diffs**2).sum(axis=-1)
        np.fill_diagonal(d2, np.inf)
        assert np.sqrt(d2.min()) == pytest.approx(a / np.sqrt(2), rel=1e-9)


class TestBuildSystem:
    def test_rounds_up_to_full_lattice(self):
        system = build_system(100, density=0.8)
        assert system.natoms == 108  # 4 * 3^3

    def test_density_respected(self):
        system = build_system(108, density=0.8)
        assert system.density == pytest.approx(0.8)

    def test_initial_temperature_exact(self):
        system = build_system(108, temperature=1.5)
        assert system.temperature() == pytest.approx(1.5)

    def test_zero_net_momentum(self):
        system = build_system(108)
        assert np.allclose(system.momentum(), 0.0, atol=1e-10)

    def test_deterministic_given_rng(self):
        a = build_system(32, rng=RandomSource(5))
        b = build_system(32, rng=RandomSource(5))
        assert np.array_equal(a.velocities, b.velocities)

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            build_system(0)
        with pytest.raises(ValidationError):
            build_system(10, density=-1)
        with pytest.raises(ValidationError):
            build_system(10, temperature=0)


class TestParticleSystem:
    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            ParticleSystem(np.zeros((4, 2)), np.zeros((4, 2)), 5.0)
        with pytest.raises(ValidationError):
            ParticleSystem(np.zeros((4, 3)), np.zeros((5, 3)), 5.0)
        with pytest.raises(ValidationError):
            ParticleSystem(np.zeros((4, 3)), np.zeros((4, 3)), 0.0)

    def test_kinetic_energy(self):
        sys_ = ParticleSystem(
            np.zeros((2, 3)),
            np.array([[1.0, 0, 0], [0, 2.0, 0]]),
            5.0,
        )
        assert sys_.kinetic_energy() == pytest.approx(0.5 * (1 + 4))

    def test_wrap(self):
        sys_ = ParticleSystem(
            np.array([[6.0, -1.0, 2.0]]), np.zeros((1, 3)), 5.0
        )
        sys_.wrap()
        assert np.allclose(sys_.positions, [[1.0, 4.0, 2.0]])
