"""Property-based tests of MD physics invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.components.md.forces import lennard_jones_forces
from repro.components.md.integrator import VelocityVerletIntegrator
from repro.components.md.system import build_system
from repro.util.rng import RandomSource


class TestForceInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_forces_sum_to_zero_for_any_seed(self, seed):
        system = build_system(108, rng=RandomSource(seed))
        forces, _ = lennard_jones_forces(system.positions, system.box_length)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_translation_invariance(self, seed, shift):
        """Rigid translation (mod the box) must not change forces/energy."""
        system = build_system(108, rng=RandomSource(seed))
        f1, u1 = lennard_jones_forces(system.positions, system.box_length)
        moved = (system.positions + shift) % system.box_length
        f2, u2 = lennard_jones_forces(moved, system.box_length)
        assert np.allclose(f1, f2, atol=1e-8)
        assert abs(u1 - u2) < 1e-8

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_permutation_equivariance(self, seed):
        system = build_system(108, rng=RandomSource(seed))
        rng = np.random.default_rng(seed)
        perm = rng.permutation(system.natoms)
        f1, u1 = lennard_jones_forces(system.positions, system.box_length)
        f2, u2 = lennard_jones_forces(
            system.positions[perm], system.box_length
        )
        assert np.allclose(f1[perm], f2, atol=1e-9)
        assert abs(u1 - u2) < 1e-9


class TestIntegratorInvariants:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_energy_drift_bounded_for_any_seed(self, seed):
        system = build_system(108, rng=RandomSource(seed))
        integ = VelocityVerletIntegrator(system, dt=0.002)
        e0 = system.kinetic_energy() + integ.potential_energy
        report = integ.run(50)
        assert abs(report.total_energy - e0) / max(abs(e0), 1e-9) < 2e-2

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_momentum_zero_for_any_seed(self, seed):
        system = build_system(108, rng=RandomSource(seed))
        integ = VelocityVerletIntegrator(system, dt=0.002)
        integ.run(30)
        assert np.allclose(system.momentum(), 0.0, atol=1e-8)
