"""Tests for Lennard-Jones force evaluation."""

import numpy as np
import pytest

from repro.components.md.forces import (
    _forces_allpairs,
    _forces_celllist,
    lennard_jones_forces,
)
from repro.components.md.system import build_system
from repro.util.errors import ValidationError


class TestPairPhysics:
    def test_two_particles_at_minimum_feel_no_force(self):
        # LJ minimum at r = 2^(1/6)
        r0 = 2.0 ** (1.0 / 6.0)
        pos = np.array([[0.0, 0.0, 0.0], [r0, 0.0, 0.0]])
        forces, _ = lennard_jones_forces(pos, box_length=20.0)
        assert np.allclose(forces, 0.0, atol=1e-12)

    def test_minimum_energy_is_minus_epsilon_plus_shift(self):
        r0 = 2.0 ** (1.0 / 6.0)
        pos = np.array([[0.0, 0.0, 0.0], [r0, 0.0, 0.0]])
        _, potential = lennard_jones_forces(pos, box_length=20.0)
        # truncated-and-shifted potential: u(r0) = -1 - u_cut(2.5)
        u_cut = 4.0 * (2.5**-12 - 2.5**-6)
        assert potential == pytest.approx(-1.0 - u_cut)

    def test_repulsive_inside_minimum(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        forces, potential = lennard_jones_forces(pos, box_length=20.0)
        assert forces[0, 0] < 0  # pushed apart
        assert forces[1, 0] > 0
        # unshifted u(1) = 0, so only the cutoff shift remains
        u_cut = 4.0 * (2.5**-12 - 2.5**-6)
        assert potential == pytest.approx(-u_cut)

    def test_attractive_outside_minimum(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])
        forces, _ = lennard_jones_forces(pos, box_length=20.0)
        assert forces[0, 0] > 0  # pulled together
        assert forces[1, 0] < 0

    def test_beyond_cutoff_no_interaction(self):
        pos = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
        forces, potential = lennard_jones_forces(pos, box_length=20.0, cutoff=2.5)
        assert np.allclose(forces, 0.0)
        assert potential == 0.0

    def test_newtons_third_law(self):
        system = build_system(108)
        forces, _ = lennard_jones_forces(system.positions, system.box_length)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    def test_periodic_image_interaction(self):
        # particles near opposite faces interact through the boundary
        box = 10.0
        pos = np.array([[0.2, 5.0, 5.0], [9.9, 5.0, 5.0]])  # r = 0.3 via PBC
        forces, _ = lennard_jones_forces(pos, box_length=box)
        assert forces[0, 0] > 0  # strongly repelled through the boundary
        assert np.abs(forces).max() > 1.0


class TestEdgeCases:
    def test_single_particle(self):
        forces, potential = lennard_jones_forces(np.zeros((1, 3)), 10.0)
        assert forces.shape == (1, 3)
        assert potential == 0.0

    def test_overlapping_particles_rejected(self):
        pos = np.zeros((2, 3))
        with pytest.raises(ValidationError, match="overlap"):
            lennard_jones_forces(pos, 10.0)

    def test_box_too_small_for_cutoff_rejected(self):
        with pytest.raises(ValidationError, match="minimum-image"):
            lennard_jones_forces(np.zeros((1, 3)), box_length=4.0, cutoff=2.5)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            lennard_jones_forces(np.zeros((4, 2)), 10.0)


class TestCellListConsistency:
    @pytest.mark.parametrize("natoms", [108, 256, 500, 864])
    def test_cell_list_matches_all_pairs(self, natoms):
        system = build_system(natoms, density=0.8)
        f_ap, u_ap = _forces_allpairs(system.positions, system.box_length, 2.5)
        f_cl, u_cl = _forces_celllist(system.positions, system.box_length, 2.5)
        assert np.allclose(f_ap, f_cl, atol=1e-9)
        assert u_ap == pytest.approx(u_cl, abs=1e-8)

    def test_dispatcher_picks_consistent_path(self):
        # around the threshold the public function must agree with itself
        system = build_system(400, density=0.8)
        f, u = lennard_jones_forces(system.positions, system.box_length)
        f_ap, u_ap = _forces_allpairs(system.positions, system.box_length, 2.5)
        assert np.allclose(f, f_ap)
        assert u == pytest.approx(u_ap)

    def test_cell_list_with_unwrapped_positions(self):
        system = build_system(500, density=0.8)
        shifted = system.positions + 3 * system.box_length  # out of box
        f1, u1 = _forces_celllist(system.positions, system.box_length, 2.5)
        f2, u2 = _forces_celllist(shifted, system.box_length, 2.5)
        assert np.allclose(f1, f2, atol=1e-9)
        assert u1 == pytest.approx(u2)
