"""Tests for velocity-Verlet integration (conservation laws)."""

import numpy as np
import pytest

from repro.components.md.integrator import VelocityVerletIntegrator
from repro.components.md.system import build_system
from repro.util.errors import ValidationError


@pytest.fixture
def system():
    return build_system(108, density=0.8, temperature=1.0)


class TestNVE:
    def test_energy_conserved(self, system):
        integ = VelocityVerletIntegrator(system, dt=0.002)
        e0 = system.kinetic_energy() + integ.potential_energy
        report = integ.run(200)
        drift = abs(report.total_energy - e0) / abs(e0)
        assert drift < 5e-3

    def test_momentum_conserved(self, system):
        integ = VelocityVerletIntegrator(system, dt=0.002)
        integ.run(100)
        assert np.allclose(system.momentum(), 0.0, atol=1e-8)

    def test_smaller_dt_smaller_drift(self):
        # compare drift over the same physical time from an equilibrated
        # state (the initial lattice relaxation is chaotic and would
        # dominate otherwise)
        drifts = []
        for dt, steps in ((0.01, 60), (0.0025, 240)):  # 0.6 time units
            sys_ = build_system(108, density=0.8)
            warm = VelocityVerletIntegrator(
                sys_, dt=0.002, target_temperature=1.0
            )
            warm.run(150)
            integ = VelocityVerletIntegrator(sys_, dt=dt)
            e0 = sys_.kinetic_energy() + integ.potential_energy
            report = integ.run(steps)
            drifts.append(abs(report.total_energy - e0))
        assert drifts[1] < drifts[0]

    def test_step_count_advances(self, system):
        integ = VelocityVerletIntegrator(system)
        integ.run(7)
        assert integ.step_count == 7

    def test_positions_stay_wrapped(self, system):
        integ = VelocityVerletIntegrator(system, dt=0.005)
        integ.run(50)
        assert (system.positions >= 0).all()
        assert (system.positions < system.box_length).all()


class TestThermostat:
    def test_temperature_held_near_target(self):
        sys_ = build_system(108, density=0.8, temperature=1.0)
        integ = VelocityVerletIntegrator(
            sys_, dt=0.005, target_temperature=1.2, thermostat_interval=5
        )
        integ.run(200)
        assert sys_.temperature() == pytest.approx(1.2, rel=0.15)

    def test_reports_observables(self, system):
        integ = VelocityVerletIntegrator(system, dt=0.005)
        report = integ.step()
        assert report.step == 1
        assert report.kinetic > 0
        assert report.temperature > 0
        assert report.total_energy == report.kinetic + report.potential


class TestValidation:
    def test_invalid_args(self, system):
        with pytest.raises(ValidationError):
            VelocityVerletIntegrator(system, dt=0)
        with pytest.raises(ValidationError):
            VelocityVerletIntegrator(system, cutoff=-1)
        with pytest.raises(ValidationError):
            VelocityVerletIntegrator(system, target_temperature=0)
        with pytest.raises(ValidationError):
            VelocityVerletIntegrator(system, thermostat_interval=0)

    def test_run_requires_positive_steps(self, system):
        integ = VelocityVerletIntegrator(system)
        with pytest.raises(ValidationError):
            integ.run(0)
