"""Tests for the MDEngine frame producer."""

import numpy as np
import pytest

from repro.components.md.engine import MDEngine
from repro.util.errors import ValidationError


class TestFrames:
    def test_frames_are_stride_apart(self):
        eng = MDEngine(natoms=32, stride=10, cutoff=1.5, seed=0)
        frames = list(eng.frames(3))
        assert [f.md_step for f in frames] == [10, 20, 30]
        assert [f.index for f in frames] == [0, 1, 2]

    def test_frame_payload_is_float32_positions(self):
        eng = MDEngine(natoms=32, stride=5, cutoff=1.5, seed=0)
        frame = next(eng.frames(1))
        assert frame.positions.dtype == np.float32
        assert frame.positions.shape == (eng.natoms, 3)
        assert frame.nbytes == eng.natoms * 3 * 4

    def test_frames_evolve(self):
        eng = MDEngine(natoms=32, stride=10, cutoff=1.5, seed=0)
        f1, f2 = list(eng.frames(2))
        assert not np.array_equal(f1.positions, f2.positions)

    def test_deterministic_given_seed(self):
        def run():
            eng = MDEngine(natoms=32, stride=5, cutoff=1.5, seed=42)
            return next(eng.frames(1)).positions

        assert np.array_equal(run(), run())

    def test_different_seeds_differ(self):
        a = next(MDEngine(natoms=32, stride=5, cutoff=1.5, seed=1).frames(1)).positions
        b = next(MDEngine(natoms=32, stride=5, cutoff=1.5, seed=2).frames(1)).positions
        assert not np.array_equal(a, b)

    def test_frame_observables_present(self):
        eng = MDEngine(natoms=32, stride=5, cutoff=1.5, seed=0)
        frame = next(eng.frames(1))
        assert frame.temperature > 0
        assert frame.kinetic > 0
        assert frame.box_length == eng.system.box_length


class TestEquilibration:
    def test_equilibrate_does_not_emit_frames(self):
        eng = MDEngine(natoms=32, stride=5, cutoff=1.5, seed=0)
        eng.equilibrate(20)
        frame = next(eng.frames(1))
        assert frame.index == 0
        assert frame.md_step == 25  # 20 equil + 5 stride

    def test_thermostat_drives_to_target(self):
        eng = MDEngine(natoms=108, stride=5, temperature=0.8, seed=0)
        eng.equilibrate(300)
        assert eng.system.temperature() == pytest.approx(0.8, rel=0.2)


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValidationError):
            MDEngine(natoms=0)
        with pytest.raises(ValidationError):
            MDEngine(stride=0)
        with pytest.raises(ValidationError):
            MDEngine(density=-0.5)
        with pytest.raises(ValidationError):
            MDEngine().frames(0).__next__()
