"""Tests for the co-location interference model."""

import dataclasses

import pytest

from repro.components.profiles import analysis_profile, simulation_profile
from repro.platform.cache import CacheSpec
from repro.platform.contention import ContentionModel, WorkloadProfile
from repro.util.errors import ValidationError
from repro.util.units import MIB


@pytest.fixture
def cache():
    return CacheSpec(size_bytes=40 * MIB)


@pytest.fixture
def model():
    return ContentionModel(core_freq_hz=2.3e9, memory_bandwidth=120e9)


@pytest.fixture
def sim():
    return simulation_profile("sim")


@pytest.fixture
def ana():
    return analysis_profile("ana")


class TestWorkloadProfile:
    def test_solo_cpi(self):
        p = WorkloadProfile(
            name="x",
            llc_refs_per_instr=0.01,
            solo_llc_miss_ratio=0.1,
            base_cpi=0.5,
            miss_penalty_cycles=100.0,
        )
        assert p.solo_cpi() == pytest.approx(0.5 + 0.01 * 0.1 * 100)

    def test_max_below_solo_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadProfile(
                name="x", solo_llc_miss_ratio=0.5, max_llc_miss_ratio=0.4
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadProfile(name="")

    def test_scaled_multiplies_instructions(self):
        p = WorkloadProfile(name="x", instructions_per_unit=1e9)
        q = p.scaled("y", 2.0)
        assert q.instructions_per_unit == 2e9
        assert q.name == "y"


class TestMissRatios:
    def test_solo_component_keeps_solo_ratio(self, model, cache, sim):
        assert model.miss_ratios(cache, [sim]) == [sim.solo_llc_miss_ratio]

    def test_empty_list(self, model, cache):
        assert model.miss_ratios(cache, []) == []

    def test_contention_raises_miss_ratios(self, model, cache, sim, ana):
        solo = model.miss_ratios(cache, [sim])[0]
        shared = model.miss_ratios(cache, [sim, ana])[0]
        assert shared > solo

    def test_miss_ratios_bounded_by_profile_max(self, model, cache, sim, ana):
        ratios = model.miss_ratios(cache, [sim, ana, ana, ana])
        assert ratios[0] <= sim.max_llc_miss_ratio + 1e-12
        for r in ratios[1:]:
            assert r <= ana.max_llc_miss_ratio + 1e-12

    def test_symmetric_competitors_get_equal_ratios(self, model, cache, ana):
        ana2 = dataclasses.replace(ana, name="ana2")
        r1, r2 = model.miss_ratios(cache, [ana, ana2])
        assert r1 == pytest.approx(r2)

    def test_disabled_model_returns_solo(self, cache, sim, ana):
        off = ContentionModel(enabled=False)
        assert off.miss_ratios(cache, [sim, ana]) == [
            sim.solo_llc_miss_ratio,
            ana.solo_llc_miss_ratio,
        ]

    def test_aggressive_streamer_crushes_quiet_kernel(self, model, cache, sim, ana):
        """The paper's Figure 3 asymmetry: the analysis barely notices the
        simulation, while the simulation's miss ratio spikes."""
        r_sim, r_ana = model.miss_ratios(cache, [sim, ana])
        sim_increase = (r_sim - sim.solo_llc_miss_ratio) / sim.solo_llc_miss_ratio
        ana_increase = (r_ana - ana.solo_llc_miss_ratio) / ana.solo_llc_miss_ratio
        assert sim_increase > 10 * ana_increase


class TestAssessNode:
    def test_duplicate_names_rejected(self, model, cache, sim):
        with pytest.raises(ValidationError):
            model.assess_node([(cache, [(sim, 8), (sim, 8)])])

    def test_dilation_is_cpi_ratio(self, model, cache, sim, ana):
        out = model.assess_node([(cache, [(sim, 16), (ana, 8)])])
        a = out[sim.name]
        assert a.dilation == pytest.approx(a.cpi / sim.solo_cpi())
        assert a.dilation >= 1.0

    def test_solo_assessment_has_unit_dilation(self, model, cache, sim):
        a = model.solo_assessment(sim, cache, 16)
        assert a.dilation == pytest.approx(1.0)
        assert a.llc_miss_ratio == pytest.approx(sim.solo_llc_miss_ratio)

    def test_memory_intensity_and_ipc(self, model, cache, ana):
        a = model.solo_assessment(ana, cache, 8)
        assert a.memory_intensity == pytest.approx(
            ana.llc_refs_per_instr * a.llc_miss_ratio
        )
        assert a.ipc == pytest.approx(1.0 / a.cpi)

    def test_bandwidth_overload_stretches_all(self, cache):
        hog = WorkloadProfile(
            name="hog",
            working_set_bytes=200 * MIB,
            llc_refs_per_instr=0.1,
            solo_llc_miss_ratio=0.9,
            max_llc_miss_ratio=0.95,
            base_cpi=0.5,
        )
        tight = ContentionModel(core_freq_hz=2.3e9, memory_bandwidth=1e9)
        out = tight.assess_node([(cache, [(hog, 16)])])
        assert out["hog"].bandwidth_stretch > 1.0
        assert out["hog"].dilation > 1.0

    def test_two_sockets_do_not_share_cache(self, model, cache, sim, ana):
        # same node, different sockets: no cache contention between them
        out = model.assess_node([(cache, [(sim, 16)]), (cache, [(ana, 8)])])
        assert out[sim.name].llc_miss_ratio == pytest.approx(
            sim.solo_llc_miss_ratio
        )
        assert out[ana.name].llc_miss_ratio == pytest.approx(
            ana.solo_llc_miss_ratio
        )


class TestPaperProfiles:
    def test_simulation_is_compute_intensive(self):
        sim = simulation_profile("s")
        ana = analysis_profile("a")
        assert sim.llc_refs_per_instr < ana.llc_refs_per_instr
        assert sim.solo_llc_miss_ratio < ana.solo_llc_miss_ratio

    def test_simulation_has_convex_response(self):
        assert simulation_profile("s").contention_exponent > 1.0
        assert analysis_profile("a").contention_exponent == pytest.approx(1.0)

    def test_working_set_scales_with_atoms(self):
        small = simulation_profile("s", natoms=1000)
        big = simulation_profile("b", natoms=100_000)
        assert big.working_set_bytes == 100 * small.working_set_bytes
