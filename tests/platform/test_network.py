"""Tests for the dragonfly network model."""

import pytest

from repro.platform.network import DragonflyNetwork, NetworkSpec
from repro.util.errors import ValidationError
from repro.util.units import MIB


@pytest.fixture
def net():
    # 4 nodes/router, 2 routers/group -> 8 nodes/group
    return DragonflyNetwork(
        NetworkSpec(
            nodes_per_router=4,
            routers_per_group=2,
            link_bandwidth=10e9,
            base_latency=1e-6,
            per_hop_latency=0.1e-6,
        )
    )


class TestTopology:
    def test_coordinates(self, net):
        assert net.coordinates(0) == (0, 0)
        assert net.coordinates(3) == (0, 0)
        assert net.coordinates(4) == (0, 1)
        assert net.coordinates(8) == (1, 0)

    def test_negative_node_rejected(self, net):
        with pytest.raises(ValueError):
            net.coordinates(-1)

    def test_hops_same_node(self, net):
        assert net.hops(5, 5) == 0

    def test_hops_same_router(self, net):
        assert net.hops(0, 3) == 1

    def test_hops_same_group(self, net):
        assert net.hops(0, 4) == 2

    def test_hops_cross_group(self, net):
        assert net.hops(0, 8) == 5

    def test_hops_symmetric(self, net):
        for a, b in [(0, 3), (0, 4), (0, 8), (7, 12)]:
            assert net.hops(a, b) == net.hops(b, a)


class TestTransferTime:
    def test_same_node_is_free(self, net):
        assert net.transfer_time(2, 2, 100 * MIB) == 0.0

    def test_latency_grows_with_hops(self, net):
        near = net.latency(0, 3)
        mid = net.latency(0, 4)
        far = net.latency(0, 8)
        assert near < mid < far

    def test_bandwidth_term(self, net):
        nbytes = 10 * MIB
        t = net.transfer_time(0, 3, nbytes)
        assert t == pytest.approx(net.latency(0, 3) + nbytes / 10e9)

    def test_zero_bytes_is_pure_latency(self, net):
        assert net.transfer_time(0, 3, 0) == pytest.approx(net.latency(0, 3))

    def test_negative_bytes_rejected(self, net):
        with pytest.raises(ValidationError):
            net.transfer_time(0, 1, -1)

    def test_monotone_in_size(self, net):
        sizes = [0, 1 * MIB, 10 * MIB, 100 * MIB]
        times = [net.transfer_time(0, 4, s) for s in sizes]
        assert times == sorted(times)


class TestNetworkSpec:
    def test_nodes_per_group(self):
        spec = NetworkSpec(nodes_per_router=4, routers_per_group=96)
        assert spec.nodes_per_group == 384

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            NetworkSpec(nodes_per_router=0)
        with pytest.raises(ValidationError):
            NetworkSpec(link_bandwidth=0)
        with pytest.raises(ValidationError):
            NetworkSpec(base_latency=-1e-6)
