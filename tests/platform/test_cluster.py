"""Tests for the Cluster facade."""

import pytest

from repro.components.profiles import analysis_profile, simulation_profile
from repro.platform.specs import (
    cori_like_node,
    make_cori_like_cluster,
    small_test_cluster,
)
from repro.util.errors import PlacementError, ValidationError
from repro.util.units import GIB, MIB

SIM = simulation_profile("sim")
ANA = analysis_profile("ana")


class TestClusterBasics:
    def test_node_lookup(self, cori2):
        assert cori2.node(0).index == 0
        assert cori2.node(1).index == 1

    def test_node_out_of_range_rejected(self, cori2):
        with pytest.raises(PlacementError):
            cori2.node(2)
        with pytest.raises(PlacementError):
            cori2.node(-1)

    def test_nodes_hosting(self, cori2):
        cori2.node(0).allocate("sim", 16, SIM)
        assert [n.index for n in cori2.nodes_hosting("sim")] == [0]
        assert cori2.nodes_hosting("ghost") == []

    def test_reset_clears_allocations(self, cori2):
        cori2.node(0).allocate("sim", 16, SIM)
        cori2.reset()
        assert cori2.node(0).residents == []

    def test_assess_all_covers_every_resident(self, cori2):
        cori2.node(0).allocate("sim", 16, SIM)
        cori2.node(1).allocate("ana", 8, ANA)
        out = cori2.assess_all()
        assert set(out) == {"sim", "ana"}

    def test_transfer_time_validates_nodes(self, cori2):
        with pytest.raises(PlacementError):
            cori2.transfer_time(0, 5, 100)

    def test_memory_copy_time(self, cori2):
        t = cori2.memory_copy_time(120e9)  # one second worth of bytes
        assert t == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            cori2.memory_copy_time(-1)

    def test_local_copy_beats_network(self, cori2):
        nbytes = 3 * MIB
        assert cori2.memory_copy_time(nbytes) < cori2.transfer_time(0, 1, nbytes)


class TestSpecs:
    def test_cori_node_matches_paper_platform(self):
        spec = cori_like_node()
        # Cori Haswell: 2x16 cores, 128 GB DRAM, 40 MB LLC/socket
        assert spec.cores == 32
        assert spec.sockets == 2
        assert spec.memory_bytes == 128 * GIB
        assert spec.llc.size_bytes == 40 * MIB

    def test_make_cori_like_cluster(self):
        cl = make_cori_like_cluster(3)
        assert cl.num_nodes == 3
        assert cl.contention.enabled

    def test_contention_can_be_disabled(self):
        cl = make_cori_like_cluster(2, contention_enabled=False)
        assert not cl.contention.enabled

    def test_small_test_cluster(self):
        cl = small_test_cluster(2)
        assert cl.num_nodes == 2
        assert cl.node_spec.cores == 8
