"""Tests for CacheSpec."""

import pytest

from repro.platform.cache import CacheSpec
from repro.util.errors import ValidationError
from repro.util.units import MIB


class TestCacheSpec:
    def test_defaults_match_cori_haswell_llc(self):
        spec = CacheSpec()
        assert spec.size_bytes == 40 * MIB
        assert spec.line_bytes == 64

    def test_num_lines(self):
        spec = CacheSpec(size_bytes=1024, line_bytes=64, associativity=4)
        assert spec.num_lines == 16

    @pytest.mark.parametrize("field", ["size_bytes", "line_bytes", "associativity"])
    def test_non_positive_fields_rejected(self, field):
        kwargs = {field: 0}
        with pytest.raises(ValidationError):
            CacheSpec(**kwargs)

    def test_line_larger_than_cache_rejected(self):
        with pytest.raises(ValueError):
            CacheSpec(size_bytes=32, line_bytes=64)

    def test_frozen(self):
        spec = CacheSpec()
        with pytest.raises(AttributeError):
            spec.size_bytes = 1
