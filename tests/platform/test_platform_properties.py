"""Property-based tests of the platform model's monotonicity guarantees."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.platform.cache import CacheSpec
from repro.platform.contention import ContentionModel, WorkloadProfile
from repro.platform.network import DragonflyNetwork, NetworkSpec
from repro.util.units import MIB

profiles = st.builds(
    WorkloadProfile,
    name=st.just("p"),
    working_set_bytes=st.floats(min_value=1 * MIB, max_value=500 * MIB),
    llc_refs_per_instr=st.floats(min_value=1e-5, max_value=0.1),
    solo_llc_miss_ratio=st.floats(min_value=0.0, max_value=0.5),
    max_llc_miss_ratio=st.floats(min_value=0.5, max_value=1.0),
    contention_exponent=st.floats(min_value=0.5, max_value=3.0),
    base_cpi=st.floats(min_value=0.2, max_value=2.0),
    miss_penalty_cycles=st.floats(min_value=0.0, max_value=400.0),
)


class TestMissRatioProperties:
    @given(profiles, profiles)
    @settings(max_examples=80)
    def test_ratios_within_profile_bounds(self, p1, p2):
        p2 = dataclasses.replace(p2, name="q")
        model = ContentionModel()
        cache = CacheSpec()
        ratios = model.miss_ratios(cache, [p1, p2])
        for profile, ratio in zip([p1, p2], ratios):
            assert profile.solo_llc_miss_ratio - 1e-12 <= ratio
            assert ratio <= profile.max_llc_miss_ratio + 1e-12

    @given(profiles, profiles)
    @settings(max_examples=80)
    def test_co_location_never_helps(self, p1, p2):
        """Adding a neighbor can only raise (or keep) a miss ratio."""
        p2 = dataclasses.replace(p2, name="q")
        model = ContentionModel()
        cache = CacheSpec()
        solo = model.miss_ratios(cache, [p1])[0]
        shared = model.miss_ratios(cache, [p1, p2])[0]
        assert shared >= solo - 1e-12

    @given(profiles)
    @settings(max_examples=50)
    def test_more_neighbors_more_misses(self, p):
        model = ContentionModel()
        cache = CacheSpec()
        neighbors = [
            dataclasses.replace(p, name=f"n{i}") for i in range(4)
        ]
        prev = -1.0
        for k in range(4):
            ratio = model.miss_ratios(cache, [p] + neighbors[:k])[0]
            assert ratio >= prev - 1e-12
            prev = ratio

    @given(profiles, profiles)
    @settings(max_examples=80)
    def test_dilation_at_least_one(self, p1, p2):
        p2 = dataclasses.replace(p2, name="q")
        model = ContentionModel()
        cache = CacheSpec()
        out = model.assess_node([(cache, [(p1, 8), (p2, 8)])])
        for a in out.values():
            assert a.dilation >= 1.0 - 1e-12


class TestNetworkProperties:
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0, max_value=1e9),
    )
    @settings(max_examples=100)
    def test_transfer_time_symmetric_and_nonnegative(self, a, b, nbytes):
        net = DragonflyNetwork()
        t_ab = net.transfer_time(a, b, nbytes)
        t_ba = net.transfer_time(b, a, nbytes)
        assert t_ab == t_ba
        assert t_ab >= 0.0

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_hops_bounded_by_minimal_route(self, a, b):
        net = DragonflyNetwork(
            NetworkSpec(nodes_per_router=2, routers_per_group=3)
        )
        h = net.hops(a, b)
        assert 0 <= h <= 5
        assert (h == 0) == (a == b)
