"""Tests for NodeSpec / Node allocation and assessment."""

import dataclasses

import pytest

from repro.components.profiles import analysis_profile, simulation_profile
from repro.platform.contention import ContentionModel
from repro.platform.node import CoreAllocation, Node, NodeSpec
from repro.util.errors import PlacementError, ValidationError


@pytest.fixture
def spec():
    return NodeSpec(cores=32, sockets=2)


@pytest.fixture
def node(spec):
    return Node(0, spec)


@pytest.fixture
def model():
    return ContentionModel()


SIM = simulation_profile("sim")
ANA = analysis_profile("ana")


class TestNodeSpec:
    def test_cores_per_socket(self, spec):
        assert spec.cores_per_socket == 16

    def test_socket_of_core(self, spec):
        assert spec.socket_of_core(0) == 0
        assert spec.socket_of_core(15) == 0
        assert spec.socket_of_core(16) == 1
        assert spec.socket_of_core(31) == 1

    def test_socket_of_core_out_of_range(self, spec):
        with pytest.raises(ValidationError):
            spec.socket_of_core(32)
        with pytest.raises(ValidationError):
            spec.socket_of_core(-1)

    def test_uneven_socket_split_rejected(self):
        with pytest.raises(ValidationError):
            NodeSpec(cores=30, sockets=4)

    def test_invalid_placement_policy_rejected(self):
        with pytest.raises(ValidationError):
            NodeSpec(placement_policy="random")


class TestAllocation:
    def test_scatter_interleaves_sockets(self, node):
        alloc = node.allocate("sim", 4, SIM)
        sockets = [node.spec.socket_of_core(c) for c in alloc.cores]
        assert sockets == [0, 1, 0, 1]

    def test_compact_fills_socket_zero_first(self):
        node = Node(0, NodeSpec(cores=32, sockets=2, placement_policy="compact"))
        alloc = node.allocate("sim", 4, SIM)
        assert all(node.spec.socket_of_core(c) == 0 for c in alloc.cores)

    def test_accounting(self, node):
        node.allocate("sim", 16, SIM)
        assert node.used_cores == 16
        assert node.free_cores == 16
        node.allocate("ana", 8, ANA)
        assert node.used_cores == 24
        assert node.residents == ["sim", "ana"]

    def test_release_returns_cores(self, node):
        node.allocate("sim", 16, SIM)
        node.release("sim")
        assert node.free_cores == 32
        assert node.residents == []

    def test_release_unknown_component_rejected(self, node):
        with pytest.raises(PlacementError):
            node.release("ghost")

    def test_double_allocate_rejected(self, node):
        node.allocate("sim", 8, SIM)
        with pytest.raises(PlacementError):
            node.allocate("sim", 8, SIM)

    def test_over_allocation_rejected(self, node):
        node.allocate("sim", 30, SIM)
        with pytest.raises(PlacementError):
            node.allocate("ana", 8, ANA)

    def test_oversubscription_when_allowed(self, node):
        node.allocate("sim", 30, SIM)
        alloc = node.allocate("ana", 8, ANA, allow_oversubscription=True)
        assert alloc.num_cores == 8
        assert node.free_cores == 0

    def test_allocation_of(self, node):
        alloc = node.allocate("sim", 8, SIM)
        assert node.allocation_of("sim") is alloc
        with pytest.raises(PlacementError):
            node.allocation_of("nope")

    def test_reallocation_after_release_reuses_cores(self, node):
        a1 = node.allocate("sim", 32, SIM)
        node.release("sim")
        a2 = node.allocate("sim2", 32, SIM)
        assert sorted(a2.cores) == sorted(a1.cores)


class TestCoreAllocation:
    def test_duplicate_cores_rejected(self):
        with pytest.raises(ValidationError):
            CoreAllocation("x", 0, (1, 1))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CoreAllocation("x", 0, ())


class TestNodeAssessment:
    def test_solo_component_unit_dilation(self, node, model):
        node.allocate("sim", 16, SIM)
        out = node.assess(model)
        assert out["sim"].dilation == pytest.approx(1.0)

    def test_scatter_colocated_components_contend(self, node, model):
        node.allocate("sim", 16, SIM)
        node.allocate("ana", 8, ANA)
        out = node.assess(model)
        assert out["sim"].llc_miss_ratio > SIM.solo_llc_miss_ratio
        assert out["sim"].dilation > 1.0

    def test_socket_residency_shape(self, node):
        node.allocate("sim", 16, SIM)
        node.allocate("ana", 8, ANA)
        residency = node.socket_residency()
        assert len(residency) == 2  # two sockets
        for _cache, residents in residency:
            names = [p.name for p, _ in residents]
            assert names == ["sim", "ana"]
            # scatter: 8 sim cores + 4 ana cores per socket
            assert [n for _, n in residents] == [8, 4]

    def test_assessment_covers_all_residents(self, node, model):
        node.allocate("sim", 16, SIM)
        node.allocate("ana", 8, ANA)
        ana2 = dataclasses.replace(ANA, name="ana2")
        node.allocate("ana2", 8, ana2)
        assert set(node.assess(model)) == {"sim", "ana", "ana2"}
