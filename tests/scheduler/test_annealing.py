"""Tests for the simulated-annealing placement policy."""

import pytest

from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.annealing import SimulatedAnnealingPolicy
from repro.scheduler.objectives import score_placement
from repro.scheduler.policies import ExhaustiveSearchPolicy
from repro.util.errors import PlacementError, ValidationError


@pytest.fixture
def k1_spec(two_member_spec):
    return two_member_spec


def fast_annealer(seed=0):
    """Small schedule for unit tests (paper-sized spaces are tiny)."""
    return SimulatedAnnealingPolicy(
        seed=seed, plateau=40, cooling=0.85, min_temperature_ratio=1e-2
    )


class TestAnnealing:
    def test_feasible_output(self, k1_spec):
        placement = fast_annealer().place(k1_spec, 3, 32)
        demand = placement.validate_against(k1_spec, 32)
        assert max(demand.values()) <= 32

    def test_matches_exhaustive_on_paper_size(self, k1_spec):
        sa = fast_annealer(seed=2)
        best_sa = score_placement(k1_spec, sa.place(k1_spec, 2, 32))
        best_ex = score_placement(
            k1_spec, ExhaustiveSearchPolicy().place(k1_spec, 2, 32)
        )
        assert best_sa.objective == pytest.approx(
            best_ex.objective, rel=1e-9
        )

    def test_deterministic_given_seed(self, k1_spec):
        a = fast_annealer(seed=5).place(k1_spec, 3, 32)
        b = fast_annealer(seed=5).place(k1_spec, 3, 32)
        assert a == b

    def test_stats_populated(self, k1_spec):
        sa = fast_annealer()
        sa.place(k1_spec, 3, 32)
        assert sa.stats.evaluations > 0
        assert sa.stats.accepted <= sa.stats.evaluations

    def test_impossible_budget_rejected(self, k1_spec):
        with pytest.raises(PlacementError):
            fast_annealer().place(k1_spec, 1, 32)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            SimulatedAnnealingPolicy(cooling=1.0)
        with pytest.raises(ValidationError):
            SimulatedAnnealingPolicy(cooling=0.0)
        with pytest.raises(ValidationError):
            SimulatedAnnealingPolicy(plateau=0)
        with pytest.raises(ValidationError):
            SimulatedAnnealingPolicy(initial_temperature=0)

    @pytest.mark.slow
    def test_finds_colocated_optimum_on_larger_problem(self):
        """Six members over six nodes: the fully co-located placement
        (F = greedy's optimum) must be found with the default schedule."""
        spec = EnsembleSpec(
            "big",
            tuple(default_member(f"em{i}", n_steps=5) for i in range(1, 7)),
        )
        sa = SimulatedAnnealingPolicy(seed=0)
        placement = sa.place(spec, 6, 32)
        score = score_placement(spec, placement)
        from repro.scheduler.policies import GreedyIndicatorPolicy

        greedy_score = score_placement(
            spec, GreedyIndicatorPolicy().place(spec, 6, 32)
        )
        assert score.objective >= greedy_score.objective * 0.999
