"""Tests for the simulated-annealing placement policy."""

import pytest

from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.annealing import SimulatedAnnealingPolicy
from repro.scheduler.objectives import score_placement
from repro.scheduler.policies import ExhaustiveSearchPolicy
from repro.util.errors import PlacementError, ValidationError


@pytest.fixture
def k1_spec(two_member_spec):
    return two_member_spec


def fast_annealer(seed=0):
    """Small schedule for unit tests (paper-sized spaces are tiny)."""
    return SimulatedAnnealingPolicy(
        seed=seed, plateau=40, cooling=0.85, min_temperature_ratio=1e-2
    )


class TestAnnealing:
    def test_feasible_output(self, k1_spec):
        placement = fast_annealer().place(k1_spec, 3, 32)
        demand = placement.validate_against(k1_spec, 32)
        assert max(demand.values()) <= 32

    def test_matches_exhaustive_on_paper_size(self, k1_spec):
        sa = fast_annealer(seed=2)
        best_sa = score_placement(k1_spec, sa.place(k1_spec, 2, 32))
        best_ex = score_placement(
            k1_spec, ExhaustiveSearchPolicy().place(k1_spec, 2, 32)
        )
        assert best_sa.objective == pytest.approx(
            best_ex.objective, rel=1e-9
        )

    def test_deterministic_given_seed(self, k1_spec):
        a = fast_annealer(seed=5).place(k1_spec, 3, 32)
        b = fast_annealer(seed=5).place(k1_spec, 3, 32)
        assert a == b

    def test_stats_populated(self, k1_spec):
        sa = fast_annealer()
        sa.place(k1_spec, 3, 32)
        assert sa.stats.evaluations > 0
        assert sa.stats.accepted <= sa.stats.evaluations

    def test_impossible_budget_rejected(self, k1_spec):
        with pytest.raises(PlacementError):
            fast_annealer().place(k1_spec, 1, 32)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            SimulatedAnnealingPolicy(cooling=1.0)
        with pytest.raises(ValidationError):
            SimulatedAnnealingPolicy(cooling=0.0)
        with pytest.raises(ValidationError):
            SimulatedAnnealingPolicy(plateau=0)
        with pytest.raises(ValidationError):
            SimulatedAnnealingPolicy(initial_temperature=0)

    @pytest.mark.slow
    def test_finds_colocated_optimum_on_larger_problem(self):
        """Six members over six nodes: the fully co-located placement
        (F = greedy's optimum) must be found with the default schedule."""
        spec = EnsembleSpec(
            "big",
            tuple(default_member(f"em{i}", n_steps=5) for i in range(1, 7)),
        )
        sa = SimulatedAnnealingPolicy(seed=0)
        placement = sa.place(spec, 6, 32)
        score = score_placement(spec, placement)
        from repro.scheduler.policies import GreedyIndicatorPolicy

        greedy_score = score_placement(
            spec, GreedyIndicatorPolicy().place(spec, 6, 32)
        )
        assert score.objective >= greedy_score.objective * 0.999


class TestRobustRefinement:
    """DES re-ranking of the elite pool after the anneal converges."""

    def _refiner(self, seed=3, top=3, **overrides):
        from repro.faults.recovery import RetryBackoffPolicy
        from repro.scheduler.robust import crash_straggler_factory

        fields = dict(
            seed=seed,
            plateau=40,
            cooling=0.85,
            min_temperature_ratio=1e-2,
            robust_rank_top=top,
            robust_model_factory=crash_straggler_factory(0.2),
            robust_policy=RetryBackoffPolicy(),
            robust_trials=2,
        )
        fields.update(overrides)
        return SimulatedAnnealingPolicy(**fields)

    def test_refinement_preserves_the_anneal_trajectory(self, k1_spec):
        """Elite bookkeeping draws no RNG, so the walk with refinement
        on is step-for-step the walk with it off."""
        plain = fast_annealer(seed=3)
        plain.place(k1_spec, 3, 32)
        refined = self._refiner(seed=3)
        refined.place(k1_spec, 3, 32)
        assert refined.stats == plain.stats

    def test_returns_the_robust_winner(self, k1_spec):
        sa = self._refiner()
        placement = sa.place(k1_spec, 3, 32)
        assert sa.last_robust_ranking
        assert placement == sa.last_robust_ranking[0].placement
        objectives = [s.objective for s in sa.last_robust_ranking]
        assert objectives == sorted(objectives, reverse=True)

    def test_pool_bounded_by_top_plus_best(self, k1_spec):
        top = 2
        sa = self._refiner(top=top)
        sa.place(k1_spec, 3, 32)
        assert 1 <= len(sa.last_robust_ranking) <= top + 1
        assert all(
            s.name.startswith("elite") for s in sa.last_robust_ranking
        )

    def test_disabled_refinement_leaves_ranking_empty(self, k1_spec):
        sa = fast_annealer(seed=3)
        sa.place(k1_spec, 3, 32)
        assert sa.last_robust_ranking == []

    def test_top_requires_factory_and_policy(self):
        with pytest.raises(ValidationError, match="robust_rank_top"):
            SimulatedAnnealingPolicy(robust_rank_top=2)

    def test_unknown_robust_engine_rejected(self):
        from repro.faults.recovery import RetryBackoffPolicy
        from repro.scheduler.robust import crash_straggler_factory

        with pytest.raises(ValidationError, match="robust_engine"):
            SimulatedAnnealingPolicy(
                robust_rank_top=2,
                robust_model_factory=crash_straggler_factory(0.1),
                robust_policy=RetryBackoffPolicy(),
                robust_engine="quantum",
            )
