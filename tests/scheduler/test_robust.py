"""Tests for robust placement scoring under failure models."""

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.faults.models import FaultKind, NoFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.scheduler.robust import (
    RobustScore,
    crash_straggler_factory,
    rank_placements_robust,
    robust_score_placement,
)
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def spec():
    return build_spec(TABLE2_CONFIGS["C1.5"], n_steps=4)


class TestRobustScorePlacement:
    def test_no_failures_matches_ideal(self, spec):
        score = robust_score_placement(
            spec,
            TABLE2_CONFIGS["C1.5"].placement(),
            lambda seed: NoFailureModel(),
            RetryBackoffPolicy(),
            trials=2,
            name="C1.5",
        )
        assert score.objective == pytest.approx(score.ideal_objective)
        assert score.degradation == pytest.approx(0.0)
        assert score.mean_inflation == pytest.approx(1.0)
        assert score.trials == 2
        assert score.name == "C1.5"

    def test_failures_erode_the_objective(self, spec):
        score = robust_score_placement(
            spec,
            TABLE2_CONFIGS["C1.5"].placement(),
            crash_straggler_factory(0.3),
            RetryBackoffPolicy(),
            trials=2,
        )
        assert score.objective < score.ideal_objective
        assert score.degradation > 0
        assert score.mean_inflation > 1.0

    def test_trials_validated(self, spec):
        with pytest.raises(ValidationError):
            robust_score_placement(
                spec,
                TABLE2_CONFIGS["C1.5"].placement(),
                lambda seed: NoFailureModel(),
                RetryBackoffPolicy(),
                trials=0,
            )


class TestRanking:
    def test_orders_best_first(self, spec):
        candidates = {
            name: TABLE2_CONFIGS[name].placement()
            for name in ("C1.1", "C1.4", "C1.5")
        }
        scores = rank_placements_robust(
            spec,
            candidates,
            crash_straggler_factory(0.05),
            RetryBackoffPolicy(),
            trials=1,
        )
        assert [type(s) for s in scores] == [RobustScore] * 3
        objectives = [s.objective for s in scores]
        assert objectives == sorted(objectives, reverse=True)
        # co-location stays the robust winner at a low rate
        assert scores[0].name == "C1.5"


class TestRobustScoreOrdering:
    def _score(self, objective, num_nodes=2, inflation=1.0):
        return RobustScore(
            name="x",
            placement=TABLE2_CONFIGS["C1.5"].placement(),
            objective=objective,
            ideal_objective=objective,
            mean_inflation=inflation,
            mean_goodput=0.1,
            num_nodes=num_nodes,
            trials=1,
        )

    def test_higher_objective_wins(self):
        assert self._score(0.2) > self._score(0.1)

    def test_fewer_nodes_break_ties(self):
        assert self._score(0.1, num_nodes=2) > self._score(0.1, num_nodes=3)

    def test_lower_inflation_breaks_remaining_ties(self):
        assert self._score(0.1, inflation=1.1) > self._score(
            0.1, inflation=1.5
        )


class TestFactory:
    def test_factory_seeds_models_independently(self):
        factory = crash_straggler_factory(0.2, (FaultKind.CRASH,))
        a, b = factory(1), factory(2)
        assert a.rate == b.rate == 0.2
        assert a.seed != b.seed
