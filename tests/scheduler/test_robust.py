"""Tests for robust placement scoring under failure models."""

import time

import pytest

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.faults.models import FaultKind, NoFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.scheduler.robust import (
    RANK_METHODS,
    RobustScore,
    crash_straggler_factory,
    rank_placements_robust,
    robust_score_placement,
    surrogate_score_placement,
)
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def spec():
    return build_spec(TABLE2_CONFIGS["C1.5"], n_steps=4)


class TestRobustScorePlacement:
    def test_no_failures_matches_ideal(self, spec):
        score = robust_score_placement(
            spec,
            TABLE2_CONFIGS["C1.5"].placement(),
            lambda seed: NoFailureModel(),
            RetryBackoffPolicy(),
            trials=2,
            name="C1.5",
        )
        assert score.objective == pytest.approx(score.ideal_objective)
        assert score.degradation == pytest.approx(0.0)
        assert score.mean_inflation == pytest.approx(1.0)
        assert score.trials == 2
        assert score.name == "C1.5"

    def test_failures_erode_the_objective(self, spec):
        score = robust_score_placement(
            spec,
            TABLE2_CONFIGS["C1.5"].placement(),
            crash_straggler_factory(0.3),
            RetryBackoffPolicy(),
            trials=2,
        )
        assert score.objective < score.ideal_objective
        assert score.degradation > 0
        assert score.mean_inflation > 1.0

    def test_trials_validated(self, spec):
        with pytest.raises(ValidationError):
            robust_score_placement(
                spec,
                TABLE2_CONFIGS["C1.5"].placement(),
                lambda seed: NoFailureModel(),
                RetryBackoffPolicy(),
                trials=0,
            )


class TestRanking:
    def test_orders_best_first(self, spec):
        candidates = {
            name: TABLE2_CONFIGS[name].placement()
            for name in ("C1.1", "C1.4", "C1.5")
        }
        scores = rank_placements_robust(
            spec,
            candidates,
            crash_straggler_factory(0.05),
            RetryBackoffPolicy(),
            trials=1,
        )
        assert [type(s) for s in scores] == [RobustScore] * 3
        objectives = [s.objective for s in scores]
        assert objectives == sorted(objectives, reverse=True)
        # co-location stays the robust winner at a low rate
        assert scores[0].name == "C1.5"


class TestRobustScoreOrdering:
    def _score(self, objective, num_nodes=2, inflation=1.0):
        return RobustScore(
            name="x",
            placement=TABLE2_CONFIGS["C1.5"].placement(),
            objective=objective,
            ideal_objective=objective,
            mean_inflation=inflation,
            mean_goodput=0.1,
            num_nodes=num_nodes,
            trials=1,
        )

    def test_higher_objective_wins(self):
        assert self._score(0.2) > self._score(0.1)

    def test_fewer_nodes_break_ties(self):
        assert self._score(0.1, num_nodes=2) > self._score(0.1, num_nodes=3)

    def test_lower_inflation_breaks_remaining_ties(self):
        assert self._score(0.1, inflation=1.1) > self._score(
            0.1, inflation=1.5
        )


class TestFactory:
    def test_factory_seeds_models_independently(self):
        factory = crash_straggler_factory(0.2, (FaultKind.CRASH,))
        a, b = factory(1), factory(2)
        assert a.rate == b.rate == 0.2
        assert a.seed != b.seed


class TestSurrogateMethod:
    """The acceptance criterion: surrogate ranking reproduces the DES
    ranking of the paper's C1/C2 candidates at a >= 10x speedup."""

    CANDIDATES = ("C1.1", "C1.4", "C1.5", "C2.1", "C2.8")

    def test_unknown_method_rejected(self, spec):
        with pytest.raises(ValidationError, match="surrogate"):
            rank_placements_robust(
                spec,
                {"C1.5": TABLE2_CONFIGS["C1.5"].placement()},
                crash_straggler_factory(0.05),
                RetryBackoffPolicy(),
                method="bogus",
            )
        assert RANK_METHODS == ("des", "surrogate")

    def test_surrogate_scores_carry_zero_trials(self, spec):
        score = surrogate_score_placement(
            spec,
            TABLE2_CONFIGS["C1.5"].placement(),
            crash_straggler_factory(0.05, (FaultKind.CRASH,))(0),
            RetryBackoffPolicy(),
            name="C1.5",
        )
        assert score.trials == 0
        assert score.objective < score.ideal_objective
        assert score.mean_inflation > 1.0

    def test_zero_rate_surrogate_matches_analytic_ideal(self, spec):
        score = surrogate_score_placement(
            spec,
            TABLE2_CONFIGS["C1.5"].placement(),
            NoFailureModel(),
            RetryBackoffPolicy(),
        )
        assert score.objective == pytest.approx(score.ideal_objective)
        assert score.mean_inflation == pytest.approx(1.0)

    def test_surrogate_reproduces_des_ranking_10x_faster(self):
        from repro.configs.table4 import TABLE4_CONFIGS

        all_configs = {**TABLE2_CONFIGS, **TABLE4_CONFIGS}
        # candidate families share their spec's coupling shape: the
        # one-analysis C1 set and the two-analysis C2 book-ends
        families = {
            "C1.5": ("C1.1", "C1.4", "C1.5"),
            "C2.1": ("C2.1", "C2.8"),
        }
        factory = crash_straggler_factory(0.05, (FaultKind.CRASH,))
        policy = RetryBackoffPolicy()

        t_des = t_sur = 0.0
        for spec_name, names in families.items():
            spec = build_spec(all_configs[spec_name], n_steps=10)
            candidates = {
                name: all_configs[name].placement() for name in names
            }
            # warm both paths (imports, stage-prediction caches) so
            # the timing compares steady-state costs
            warm = {spec_name: candidates[spec_name]}
            rank_placements_robust(
                spec, warm, factory, policy, trials=1
            )
            rank_placements_robust(
                spec, warm, factory, policy, method="surrogate"
            )

            t0 = time.perf_counter()
            des = rank_placements_robust(
                spec, candidates, factory, policy, trials=2
            )
            t_des += time.perf_counter() - t0

            t0 = time.perf_counter()
            surrogate = rank_placements_robust(
                spec, candidates, factory, policy, method="surrogate"
            )
            t_sur += time.perf_counter() - t0

            assert [s.name for s in surrogate] == [s.name for s in des]

        assert t_des / t_sur >= 10.0


def _square_worker(payload):
    return payload[0] ** 2


def _boom_worker(payload):
    raise RuntimeError("worker bug, not an environment problem")


class TestParallelMap:
    """The pool helper's contract: explicit reasons, loud worker bugs."""

    def test_maps_in_payload_order(self):
        from repro.scheduler.robust import _parallel_map

        outcome = _parallel_map(_square_worker, [(i,) for i in range(5)])
        if outcome.results is None:
            # Environmental fallback (e.g. single-core CI host) is
            # legal, but it must come with a reason.
            assert outcome.fallback_reason
        else:
            assert outcome.results == [0, 1, 4, 9, 16]
            assert outcome.fallback_reason is None

    def test_single_payload_declines_with_reason(self):
        from repro.scheduler.robust import _parallel_map

        outcome = _parallel_map(_square_worker, [(1,)])
        assert outcome.results is None
        assert "fewer than 2" in outcome.fallback_reason

    def test_single_core_host_declines_with_reason(self, monkeypatch):
        import multiprocessing

        from repro.scheduler.robust import _parallel_map

        monkeypatch.setattr(multiprocessing, "cpu_count", lambda: 1)
        outcome = _parallel_map(_square_worker, [(1,), (2,)])
        assert outcome.results is None
        assert outcome.fallback_reason == "single-core host"

    def test_unpicklable_payload_reports_why(self, monkeypatch):
        import multiprocessing

        from repro.scheduler.robust import _parallel_map

        # force past the core-count gate so the pickling path runs
        # even on a single-core CI host
        monkeypatch.setattr(multiprocessing, "cpu_count", lambda: 2)
        outcome = _parallel_map(
            _square_worker, [(1, lambda: None), (2, lambda: None)]
        )
        assert outcome.results is None
        assert "pickle" in outcome.fallback_reason

    def test_worker_exceptions_propagate(self, monkeypatch):
        """A bug inside the scoring path must not masquerade as
        "parallelism unavailable"."""
        import multiprocessing

        from repro.scheduler.robust import _parallel_map

        monkeypatch.setattr(multiprocessing, "cpu_count", lambda: 2)
        with pytest.raises(RuntimeError, match="worker bug"):
            _parallel_map(_boom_worker, [(1,), (2,)])


class TestRankEngines:
    def test_unknown_engine_rejected(self, spec):
        with pytest.raises(ValidationError, match="engine"):
            rank_placements_robust(
                spec,
                {"C1.1": TABLE2_CONFIGS["C1.1"].placement()},
                crash_straggler_factory(0.1),
                RetryBackoffPolicy(),
                method="des",
                engine="quantum",
            )

    def test_surrogate_method_ignores_engine(self, spec):
        candidates = {"C1.1": TABLE2_CONFIGS["C1.1"].placement()}
        a = rank_placements_robust(
            spec,
            candidates,
            crash_straggler_factory(0.1),
            RetryBackoffPolicy(),
            method="surrogate",
            engine="serial",
        )
        b = rank_placements_robust(
            spec,
            candidates,
            crash_straggler_factory(0.1),
            RetryBackoffPolicy(),
            method="surrogate",
            engine="batched",
        )
        assert a[0].objective == b[0].objective
