"""Tests for the scheduling policies."""

import pytest

from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.objectives import score_placement
from repro.scheduler.policies import (
    ExhaustiveSearchPolicy,
    GreedyIndicatorPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.util.errors import PlacementError


@pytest.fixture
def k1_spec(two_member_spec):
    return two_member_spec


@pytest.fixture
def k2_spec():
    return EnsembleSpec(
        "k2",
        (
            default_member("em1", num_analyses=2, n_steps=5),
            default_member("em2", num_analyses=2, n_steps=5),
        ),
    )


def _feasible(spec, placement, cores_per_node=32):
    demand = placement.validate_against(spec, cores_per_node)
    return max(demand.values()) <= cores_per_node


class TestFeasibility:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            GreedyIndicatorPolicy,
            ExhaustiveSearchPolicy,
            RoundRobinPolicy,
            lambda: RandomPolicy(seed=0),
        ],
    )
    def test_placements_always_feasible(self, k2_spec, policy_factory):
        for nodes in (2, 3, 4):
            placement = policy_factory().place(k2_spec, nodes, 32)
            assert _feasible(k2_spec, placement)

    @pytest.mark.parametrize(
        "policy_factory",
        [
            GreedyIndicatorPolicy,
            ExhaustiveSearchPolicy,
            RoundRobinPolicy,
            lambda: RandomPolicy(seed=0),
        ],
    )
    def test_impossible_budget_rejected(self, k2_spec, policy_factory):
        with pytest.raises(PlacementError):
            policy_factory().place(k2_spec, 1, 32)  # 96 cores demanded


class TestOptimality:
    def test_exhaustive_finds_colocated_optimum(self, k1_spec):
        placement = ExhaustiveSearchPolicy().place(k1_spec, 2, 32)
        # the optimum is the C1.5 pattern: each member co-located
        for mp in placement.members:
            assert all(n == mp.simulation_node for n in mp.analysis_nodes)

    def test_greedy_matches_exhaustive_k1(self, k1_spec):
        greedy = GreedyIndicatorPolicy()
        exhaustive = ExhaustiveSearchPolicy()
        for nodes in (2, 3):
            g = score_placement(k1_spec, greedy.place(k1_spec, nodes, 32))
            e = score_placement(
                k1_spec, exhaustive.place(k1_spec, nodes, 32)
            )
            assert g.objective == pytest.approx(e.objective, rel=1e-9)

    def test_greedy_matches_exhaustive_k2(self, k2_spec):
        g = score_placement(
            k2_spec, GreedyIndicatorPolicy().place(k2_spec, 3, 32)
        )
        e = score_placement(
            k2_spec, ExhaustiveSearchPolicy().place(k2_spec, 3, 32)
        )
        assert g.objective == pytest.approx(e.objective, rel=1e-9)

    def test_greedy_evaluates_far_fewer_candidates(self, k2_spec):
        greedy = GreedyIndicatorPolicy()
        exhaustive = ExhaustiveSearchPolicy()
        greedy.place(k2_spec, 3, 32)
        exhaustive.place(k2_spec, 3, 32)
        assert greedy.evaluated < exhaustive.evaluated / 3

    def test_greedy_beats_baselines(self, k2_spec):
        g = score_placement(
            k2_spec, GreedyIndicatorPolicy().place(k2_spec, 3, 32)
        )
        rr = score_placement(
            k2_spec, RoundRobinPolicy().place(k2_spec, 3, 32)
        )
        rnd = score_placement(
            k2_spec, RandomPolicy(seed=7).place(k2_spec, 3, 32)
        )
        assert g.objective > rr.objective
        assert g.objective > rnd.objective


class TestBaselines:
    def test_round_robin_spreads(self, k1_spec):
        placement = RoundRobinPolicy().place(k1_spec, 4, 32)
        # with ample nodes, round robin splits sim from analysis
        for mp in placement.members:
            assert mp.analysis_nodes[0] != mp.simulation_node

    def test_random_is_seeded(self, k2_spec):
        a = RandomPolicy(seed=3).place(k2_spec, 3, 32)
        b = RandomPolicy(seed=3).place(k2_spec, 3, 32)
        assert a == b

    def test_random_seeds_differ(self, k2_spec):
        results = {
            tuple(
                (m.simulation_node, m.analysis_nodes)
                for m in RandomPolicy(seed=s).place(k2_spec, 3, 32).members
            )
            for s in range(6)
        }
        assert len(results) > 1
