"""Tests for placement scoring."""

import pytest

from repro.runtime.placement import (
    EnsemblePlacement,
    MemberPlacement,
    pack_members_per_node,
    spread_components,
)
from repro.scheduler.objectives import PlacementScore, score_placement


class TestScorePlacement:
    def test_score_fields(self, two_member_spec, colocated_placement):
        score = score_placement(two_member_spec, colocated_placement)
        assert score.num_nodes == 2
        assert score.ensemble_makespan > 0
        assert len(score.member_indicators) == 2
        assert all(v > 0 for v in score.member_indicators)

    def test_colocated_beats_spread(self, two_member_spec):
        packed = score_placement(
            two_member_spec, pack_members_per_node(two_member_spec)
        )
        spread = score_placement(
            two_member_spec, spread_components(two_member_spec)
        )
        assert packed.objective > spread.objective
        assert packed > spread

    def test_c15_beats_c14(self, two_member_spec):
        c15 = score_placement(
            two_member_spec,
            EnsemblePlacement(
                2, (MemberPlacement(0, (0,)), MemberPlacement(1, (1,)))
            ),
        )
        c14 = score_placement(
            two_member_spec,
            EnsemblePlacement(
                2, (MemberPlacement(0, (1,)), MemberPlacement(0, (1,)))
            ),
        )
        assert c15 > c14
        assert c15.ensemble_makespan < c14.ensemble_makespan


class TestScoreOrdering:
    def _score(self, objective, nodes, makespan):
        return PlacementScore(
            placement=EnsemblePlacement(
                nodes, (MemberPlacement(0, (0,)),)
            ),
            objective=objective,
            ensemble_makespan=makespan,
            num_nodes=nodes,
            member_indicators=(objective,),
        )

    def test_higher_objective_wins(self):
        assert self._score(0.2, 2, 100) > self._score(0.1, 1, 50)

    def test_fewer_nodes_break_ties(self):
        assert self._score(0.2, 1, 100) > self._score(0.2, 2, 100)

    def test_lower_makespan_breaks_remaining_ties(self):
        assert self._score(0.2, 2, 50) > self._score(0.2, 2, 100)

    def test_equality_agrees_with_ordering(self):
        # total-ordering consistency: a <= b and b <= a implies a == b
        a = self._score(0.2, 2, 100)
        b = self._score(0.2, 2, 100)
        assert a <= b and b <= a
        assert a == b
        assert not (a != b)
        assert hash(a) == hash(b)

    def test_key_ties_compare_equal_across_placements(self):
        # two different placements that tie on (utility, nodes,
        # makespan) are equal for search purposes
        a = self._score(0.2, 2, 100)
        b = PlacementScore(
            placement=EnsemblePlacement(
                2, (MemberPlacement(1, (1,)),)
            ),
            objective=0.2,
            ensemble_makespan=100,
            num_nodes=2,
            member_indicators=(0.2,),
        )
        assert a.placement != b.placement
        assert a == b

    def test_any_key_difference_breaks_equality(self):
        assert self._score(0.2, 2, 100) != self._score(0.2, 2, 101)
        assert self._score(0.2, 2, 100) != self._score(0.2, 3, 100)
        assert self._score(0.3, 2, 100) != self._score(0.2, 2, 100)

    def test_robust_penalty_enters_equality(self):
        a = self._score(0.25, 2, 100)
        b = PlacementScore(
            placement=a.placement,
            objective=0.5,
            ensemble_makespan=100,
            num_nodes=2,
            member_indicators=(0.5,),
            robust_penalty=0.25,
        )
        # same utility (0.25) on both sides -> equal, hashes agree
        assert a == b
        assert hash(a) == hash(b)

    def test_comparison_with_other_types(self):
        a = self._score(0.2, 2, 100)
        assert a != "not a score"
        assert not (a == object())
