"""Tests for placement scoring."""

import pytest

from repro.runtime.placement import (
    EnsemblePlacement,
    MemberPlacement,
    pack_members_per_node,
    spread_components,
)
from repro.scheduler.objectives import PlacementScore, score_placement


class TestScorePlacement:
    def test_score_fields(self, two_member_spec, colocated_placement):
        score = score_placement(two_member_spec, colocated_placement)
        assert score.num_nodes == 2
        assert score.ensemble_makespan > 0
        assert len(score.member_indicators) == 2
        assert all(v > 0 for v in score.member_indicators)

    def test_colocated_beats_spread(self, two_member_spec):
        packed = score_placement(
            two_member_spec, pack_members_per_node(two_member_spec)
        )
        spread = score_placement(
            two_member_spec, spread_components(two_member_spec)
        )
        assert packed.objective > spread.objective
        assert packed > spread

    def test_c15_beats_c14(self, two_member_spec):
        c15 = score_placement(
            two_member_spec,
            EnsemblePlacement(
                2, (MemberPlacement(0, (0,)), MemberPlacement(1, (1,)))
            ),
        )
        c14 = score_placement(
            two_member_spec,
            EnsemblePlacement(
                2, (MemberPlacement(0, (1,)), MemberPlacement(0, (1,)))
            ),
        )
        assert c15 > c14
        assert c15.ensemble_makespan < c14.ensemble_makespan


class TestScoreOrdering:
    def _score(self, objective, nodes, makespan):
        return PlacementScore(
            placement=EnsemblePlacement(
                nodes, (MemberPlacement(0, (0,)),)
            ),
            objective=objective,
            ensemble_makespan=makespan,
            num_nodes=nodes,
            member_indicators=(objective,),
        )

    def test_higher_objective_wins(self):
        assert self._score(0.2, 2, 100) > self._score(0.1, 1, 50)

    def test_fewer_nodes_break_ties(self):
        assert self._score(0.2, 1, 100) > self._score(0.2, 2, 100)

    def test_lower_makespan_breaks_remaining_ties(self):
        assert self._score(0.2, 2, 50) > self._score(0.2, 2, 100)
