"""Tests for the resource-constrained planner."""

import pytest

from repro.runtime.runner import run_ensemble
from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.planner import Plan, ResourceConstrainedPlanner
from repro.scheduler.policies import RoundRobinPolicy
from repro.util.errors import ConfigurationError, PlacementError


@pytest.fixture
def spec():
    return EnsembleSpec(
        "plan-me",
        (
            default_member("em1", num_analyses=2, n_steps=5),
            default_member("em2", num_analyses=2, n_steps=5),
        ),
    )


class TestPlanning:
    def test_chooses_the_paper_core_count(self, spec):
        plan = ResourceConstrainedPlanner().plan(spec, num_nodes=2)
        assert plan.analysis_cores == 8  # the §3.4 answer

    def test_resizes_the_spec(self, spec):
        plan = ResourceConstrainedPlanner().plan(spec, num_nodes=2)
        for member in plan.spec.members:
            assert all(a.cores == 8 for a in member.analyses)
            assert member.simulation.cores == 16  # user-fixed, untouched

    def test_finds_c28_pattern(self, spec):
        plan = ResourceConstrainedPlanner().plan(spec, num_nodes=2)
        for mp in plan.placement.members:
            assert all(n == mp.simulation_node for n in mp.analysis_nodes)

    def test_compacts_generous_budgets(self, spec):
        for budget in (2, 4, 6):
            plan = ResourceConstrainedPlanner().plan(spec, num_nodes=budget)
            assert plan.placement.num_nodes == 2
            assert plan.score.objective == pytest.approx(
                ResourceConstrainedPlanner()
                .plan(spec, num_nodes=2)
                .score.objective
            )

    def test_plan_is_runnable(self, spec):
        plan = ResourceConstrainedPlanner().plan(spec, num_nodes=2)
        result = run_ensemble(plan.spec, plan.placement)
        assert result.ensemble_makespan > 0
        assert result.total_nodes == 2

    def test_custom_policy(self, spec):
        plan = ResourceConstrainedPlanner(policy=RoundRobinPolicy()).plan(
            spec, num_nodes=3
        )
        assert plan.policy_name == "round-robin"

    def test_impossible_budget_rejected(self, spec):
        with pytest.raises(PlacementError):
            ResourceConstrainedPlanner().plan(spec, num_nodes=1)

    def test_empty_core_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceConstrainedPlanner(core_counts=())

    def test_restricted_core_menu(self, spec):
        # force a menu without 8: heuristic must still return a
        # feasible (Eq. 4) count
        plan = ResourceConstrainedPlanner(core_counts=(4, 16)).plan(
            spec, num_nodes=3
        )
        assert plan.analysis_cores == 16

    def test_plan_dataclass_fields(self, spec):
        plan = ResourceConstrainedPlanner().plan(spec, num_nodes=2)
        assert isinstance(plan, Plan)
        assert plan.core_choice.cores == plan.analysis_cores
        assert plan.score.placement == plan.placement
