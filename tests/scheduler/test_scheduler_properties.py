"""Property-based tests of scheduling policies over random ensembles."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.objectives import score_placement
from repro.scheduler.policies import (
    GreedyIndicatorPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.util.errors import PlacementError
from tests.strategies import cluster_partition, common_settings, ensembles


def total_cores(spec):
    return sum(m.total_cores for m in spec.members)


class TestPolicyProperties:
    @given(ensembles(), st.integers(min_value=2, max_value=5))
    @common_settings
    def test_greedy_placements_always_feasible(self, spec, num_nodes):
        policy = GreedyIndicatorPolicy()
        if total_cores(spec) > num_nodes * 32:
            with pytest.raises(PlacementError):
                policy.place(spec, num_nodes, 32)
            return
        placement = policy.place(spec, num_nodes, 32)
        demand = placement.validate_against(spec, 32)
        assert max(demand.values()) <= 32
        assert placement.num_nodes == num_nodes

    @given(ensembles(), st.integers(min_value=2, max_value=5))
    @common_settings
    def test_round_robin_feasible_or_rejects(self, spec, num_nodes):
        policy = RoundRobinPolicy()
        try:
            placement = policy.place(spec, num_nodes, 32)
        except PlacementError:
            return  # allowed: RR's rigid order can fail tight fits
        demand = placement.validate_against(spec, 32)
        assert max(demand.values()) <= 32

    @given(ensembles(), st.integers(min_value=0, max_value=100))
    @common_settings
    def test_random_policy_feasible(self, spec, seed):
        num_nodes = max(2, (total_cores(spec) + 31) // 32)
        placement = RandomPolicy(seed=seed).place(spec, num_nodes, 32)
        demand = placement.validate_against(spec, 32)
        assert max(demand.values()) <= 32

    @given(ensembles())
    @common_settings
    def test_greedy_never_below_random(self, spec):
        """The indicator-guided greedy is at least as good as a random
        feasible placement (it considers co-located candidates the
        random policy might stumble into)."""
        num_nodes = max(2, (total_cores(spec) + 31) // 32) + 1
        greedy = score_placement(
            spec, GreedyIndicatorPolicy().place(spec, num_nodes, 32)
        )
        random_score = score_placement(
            spec, RandomPolicy(seed=1).place(spec, num_nodes, 32)
        )
        assert greedy.objective >= random_score.objective - 1e-12


class TestPartitionedPlacements:
    """Per-block placements shifted onto cluster indices stay confined —
    the invariant the cluster allocator relies on when it composes one
    greedy placement per resident into a full partition."""

    @given(cluster_partition())
    @common_settings
    def test_block_local_placements_never_escape_their_block(self, partition):
        total_nodes, blocks = partition
        policy = GreedyIndicatorPolicy()
        claimed = set()
        for index, (offset, size) in enumerate(blocks):
            spec = EnsembleSpec(
                f"blk{index}",
                (
                    default_member(
                        f"blk{index}-m0",
                        n_steps=4,
                        sim_cores=16,
                        ana_cores=8,
                    ),
                ),
            )
            local = policy.place(spec, size, 32)
            shifted = EnsemblePlacement(
                num_nodes=total_nodes,
                members=tuple(
                    MemberPlacement(
                        simulation_node=mp.simulation_node + offset,
                        analysis_nodes=tuple(
                            node + offset for node in mp.analysis_nodes
                        ),
                    )
                    for mp in local.members
                ),
            )
            demand = shifted.validate_against(spec, 32)
            assert max(demand.values()) <= 32
            block = set(range(offset, offset + size))
            assert shifted.used_nodes <= block
            assert shifted.used_nodes.isdisjoint(claimed)
            claimed |= shifted.used_nodes
        assert len(claimed) <= total_nodes
