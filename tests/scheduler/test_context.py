"""The unified :class:`PlanningContext` is float-exact vs legacy kwargs.

The API redesign's contract: every planning entry point accepts one
immutable context object, produces *bit-identical* floats to the
legacy keyword spelling, and mixing the two warns ``DeprecationWarning``
with the explicit keywords winning. The differential oracle grew a
dedicated ``legacy-vs-context`` tier at tolerance 0.0; the mutant test
here proves that tier has teeth.
"""

import dataclasses
import warnings

import pytest

from repro.faults.recovery import RetryBackoffPolicy
from repro.platform.specs import make_cori_like_cluster
from repro.scheduler import PlanningContext
from repro.scheduler.context import _coerce_context
from repro.scheduler.objectives import score_placement
from repro.scheduler.planner import ResourceConstrainedPlanner
from repro.scheduler.robust import (
    crash_straggler_factory,
    rank_placements_robust,
)
from repro.search.cache import StageCache
from repro.search.engine import find_best_placement
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member
from repro.verify.oracles import DEFAULT_TOLERANCES, run_differential_oracle


def _spec(n_members: int = 2, n_steps: int = 4) -> EnsembleSpec:
    return EnsembleSpec(
        "ctx",
        tuple(
            default_member(f"em{i}", num_analyses=1, n_steps=n_steps)
            for i in range(n_members)
        ),
    )


def _placement(n_members: int = 2) -> EnsemblePlacement:
    return EnsemblePlacement(
        2, tuple(MemberPlacement(i % 2, (i % 2,)) for i in range(n_members))
    )


class TestContextObject:
    def test_defaults(self):
        ctx = PlanningContext()
        assert ctx.cluster is None and ctx.dtl is None
        assert ctx.robustness is None and ctx.cache is None
        assert not ctx.parallel and not ctx.vectorized
        assert ctx.processes is None and ctx.chunk_size == 8192

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PlanningContext().parallel = True

    def test_evolve_returns_modified_copy(self):
        base = PlanningContext()
        derived = base.evolve(vectorized=True, chunk_size=1024)
        assert derived.vectorized and derived.chunk_size == 1024
        assert not base.vectorized and base.chunk_size == 8192


class TestCoercion:
    def test_legacy_only_packs_fields(self):
        cluster = make_cori_like_cluster(2)
        merged = _coerce_context(None, "test", cluster=cluster, parallel=True)
        assert merged.cluster is cluster
        assert merged.parallel

    def test_context_only_passes_through(self):
        ctx = PlanningContext(vectorized=True)
        assert _coerce_context(ctx, "test") is ctx

    def test_mixed_use_warns_and_legacy_wins(self):
        ctx = PlanningContext(parallel=False, chunk_size=8192)
        with pytest.warns(DeprecationWarning, match="test"):
            merged = _coerce_context(ctx, "test", parallel=True)
        assert merged.parallel


class TestFloatExactEquivalence:
    def test_score_placement(self):
        spec, placement = _spec(), _placement()
        cluster = make_cori_like_cluster(2)
        legacy = score_placement(spec, placement, cluster=cluster)
        via_context = score_placement(
            spec, placement, context=PlanningContext(cluster=cluster)
        )
        assert via_context.objective == legacy.objective
        assert via_context.ensemble_makespan == legacy.ensemble_makespan
        assert via_context.member_indicators == legacy.member_indicators

    def test_find_best_placement(self):
        spec = _spec()
        legacy_best, legacy_n = find_best_placement(spec, 2, 32)
        ctx_best, ctx_n = find_best_placement(
            spec, 2, 32, context=PlanningContext()
        )
        assert ctx_best == legacy_best
        assert ctx_best.objective == legacy_best.objective
        assert ctx_n == legacy_n

    def test_find_best_placement_with_shared_cache(self):
        spec = _spec()
        cache = StageCache(None, None)
        legacy_best, _ = find_best_placement(spec, 2, 32, cache=cache)
        ctx_best, _ = find_best_placement(
            spec, 2, 32, context=PlanningContext(cache=cache)
        )
        assert ctx_best.objective == legacy_best.objective

    def test_planner(self):
        spec = _spec()
        legacy = ResourceConstrainedPlanner().plan(spec, num_nodes=2)
        via_context = ResourceConstrainedPlanner(
            context=PlanningContext()
        ).plan(spec, num_nodes=2)
        assert via_context.placement == legacy.placement
        assert (
            via_context.score.objective == legacy.score.objective
        )

    def test_rank_placements_robust_surrogate(self):
        spec = _spec()
        candidates = {
            "packed": _placement(),
            "spread": EnsemblePlacement(
                2,
                (MemberPlacement(0, (1,)), MemberPlacement(1, (0,))),
            ),
        }
        kwargs = dict(
            model_factory=crash_straggler_factory(0.05),
            policy=RetryBackoffPolicy(),
            method="surrogate",
        )
        legacy = rank_placements_robust(spec, candidates, **kwargs)
        via_context = rank_placements_robust(
            spec, candidates, context=PlanningContext(), **kwargs
        )
        assert [s.name for s in via_context] == [s.name for s in legacy]
        assert [s.objective for s in via_context] == [
            s.objective for s in legacy
        ]

    def test_mixed_use_warns_at_entry_points(self):
        spec, placement = _spec(), _placement()
        cluster = make_cori_like_cluster(2)
        with pytest.warns(DeprecationWarning):
            score_placement(
                spec,
                placement,
                cluster=cluster,
                context=PlanningContext(),
            )


class TestOracleContextTier:
    @pytest.fixture(scope="class")
    def report(self):
        return run_differential_oracle(
            _spec(n_members=1), _placement(n_members=1), scenario="ctx"
        )

    def test_tier_present_and_exact(self, report):
        assert DEFAULT_TOLERANCES["context"] == 0.0
        checks = [c for c in report.checks if c.paths == "legacy-vs-context"]
        assert checks  # objective + makespan + per-member indicators
        assert all(c.tolerance == 0.0 for c in checks)
        assert all(c.reference == c.candidate for c in checks)
        assert report.passed, report.to_text(verbose=True)

    def test_mutant_context_scorer_is_caught(self):
        """A context path that drifts by one ulp-scale factor must
        fail the report — tolerance 0.0 admits only identity."""

        def mutant(spec, placement, context=None):
            score = score_placement(spec, placement, context=context)
            return dataclasses.replace(
                score, objective=score.objective * (1.0 + 1e-12)
            )

        report = run_differential_oracle(
            _spec(n_members=1),
            _placement(n_members=1),
            scenario="ctx-mutant",
            context_score_fn=mutant,
        )
        assert not report.passed
        failed = [c for c in report.checks if not c.ok]
        assert failed
        assert all(c.paths == "legacy-vs-context" for c in failed)
