"""Benchmark: regenerate Figure 9 (F(P) stage paths, set 2).

Asserts the §5.2 claims for the two-analyses-per-simulation set:
P^{U,P} splits the configurations by node count; adding A isolates
C2.8; the final indicator ranks C2.8 first.
"""

from repro.experiments.fig8 import ranking
from repro.experiments.fig9 import run_fig9

TWO_NODE = {"C2.6", "C2.7", "C2.8"}


def test_bench_fig9(benchmark, bench_settings):
    result = benchmark(lambda: run_fig9(**bench_settings))

    up = {row["configuration"]: row["U,P"] for row in result.rows}
    worst_two_node = min(up[c] for c in TWO_NODE)
    best_three_node = max(v for c, v in up.items() if c not in TWO_NODE)
    assert worst_two_node > best_three_node

    ua = {row["configuration"]: row["U,A"] for row in result.rows}
    c28 = ua.pop("C2.8")
    assert c28 > max(ua.values())

    assert ranking(result, "U,A,P")[0] == "C2.8"

    print("\n" + result.to_text())
