"""Benchmark: batched delta-replay robust ranking vs serial DES.

Two layers of enforcement:

- the committed ``BENCH_robust.json`` must exist, carry passing
  correctness verdicts (serial-vs-batched exact agreement), and clear
  its recorded >= 10x ranking-speedup floor — so a regression cannot
  be hidden by simply not re-running the script;
- a live pytest-benchmark measurement ranks a fresh candidate
  shortlist through the batched engine and asserts every
  :class:`~repro.scheduler.robust.RobustScore` float is bit-identical
  to serial DES replication (retry recovery replays exactly).
"""

import json
from pathlib import Path

from repro.faults.recovery import RetryBackoffPolicy
from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.robust import (
    crash_straggler_factory,
    rank_placements_robust,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "BENCH_robust.json"

NUM_NODES = 3
CORES = 32
TRIALS = 8


def _spec():
    return EnsembleSpec(
        "robust-bench",
        (
            default_member("em1", num_analyses=2, n_steps=8),
            default_member("em2", num_analyses=1, n_steps=8),
            default_member("em3", num_analyses=1, n_steps=8),
        ),
    )


def _candidates(spec):
    from repro.configs.generator import enumerate_placements

    pool = list(enumerate_placements(spec, NUM_NODES, CORES))
    stride = max(1, len(pool) // 4)
    return {f"c{i}": p for i, p in enumerate(pool[::stride][:4])}


def test_committed_results_pass_their_floors():
    assert RESULTS.exists(), (
        "BENCH_robust.json missing - run scripts/bench_robust.py"
    )
    results = json.loads(RESULTS.read_text())
    for payload in results["correctness"]:
        assert payload["passed"], (
            f"{payload['scenario']} recorded a correctness divergence"
        )
    speedup = results["ranking"]["speedup"]
    assert speedup >= results["floors"]["ranking"]
    counters = results["ranking"]["counters"]
    assert counters["baseline_sims"] == results["ranking"]["candidates"]
    assert counters["replicas_replayed"] == (
        results["ranking"]["candidates"] * results["ranking"]["trials"]
    )


def test_bench_batched_ranking(benchmark):
    spec = _spec()
    candidates = _candidates(spec)
    factory = crash_straggler_factory(0.08)
    common = dict(trials=TRIALS, base_seed=0, method="des")

    batched = benchmark(
        lambda: rank_placements_robust(
            spec,
            candidates,
            factory,
            RetryBackoffPolicy(),
            engine="batched",
            **common,
        )
    )

    serial = rank_placements_robust(
        spec,
        candidates,
        factory,
        RetryBackoffPolicy(),
        engine="serial",
        **common,
    )
    assert [b.name for b in batched] == [s.name for s in serial]
    for b, s in zip(batched, serial):
        assert b.objective == s.objective
        assert b.ideal_objective == s.ideal_objective
        assert b.mean_inflation == s.mean_inflation
        assert b.mean_goodput == s.mean_goodput
    print(
        f"\nbatched ranking of {len(candidates)} candidates x {TRIALS} "
        f"replicas == serial DES, bit-identical"
    )
