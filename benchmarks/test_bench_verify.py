"""Benchmark: cost and inertness of runtime invariant checking.

Pins the two performance claims of the verification subsystem: an
instrumented run stays byte-identical to the uninstrumented one, and
the invariant checker's overhead on the smoke scenario stays within
the documented 25 % envelope (docs/TESTING.md).
"""

import json
import time

from repro.configs.base import build_spec
from repro.configs.table2 import TABLE2_CONFIGS
from repro.monitoring.traceio import tracer_to_dict
from repro.runtime.runner import run_ensemble
from repro.verify.oracles import verify_scenarios

#: documented ceiling on the verified-run slowdown (ratio, not %).
MAX_VERIFY_SLOWDOWN = 1.25


def _smoke(verify, n_steps=8, noise=0.02):
    config = TABLE2_CONFIGS["C1.5"]
    spec = build_spec(config, n_steps=n_steps)
    return run_ensemble(
        spec, config.placement(), seed=5, timing_noise=noise, verify=verify
    )


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_verify_overhead(benchmark):
    plain = _best_of(lambda: _smoke(verify=False))
    checked = _best_of(lambda: _smoke(verify=True))
    ratio = checked / plain
    benchmark(lambda: _smoke(verify=True))
    print(
        f"\nverify overhead: plain={plain * 1e3:.1f}ms "
        f"checked={checked * 1e3:.1f}ms ratio={ratio:.3f} "
        f"(ceiling {MAX_VERIFY_SLOWDOWN})"
    )
    assert ratio <= MAX_VERIFY_SLOWDOWN, (
        f"invariant checking slows the smoke scenario by {ratio:.2f}x, "
        f"above the documented {MAX_VERIFY_SLOWDOWN}x ceiling"
    )


def test_bench_verify_is_inert(benchmark):
    plain = _smoke(verify=False)
    checked = benchmark(lambda: _smoke(verify=True))
    assert json.dumps(
        tracer_to_dict(plain.tracer), sort_keys=True
    ) == json.dumps(tracer_to_dict(checked.tracer), sort_keys=True)
    assert plain.ensemble_makespan == checked.ensemble_makespan


def test_bench_oracle_smoke(benchmark):
    reports = benchmark(
        lambda: verify_scenarios(names=["Cf", "C1.5"], n_steps=4)
    )
    assert all(r.passed for r in reports)
    for report in reports:
        print("\n" + report.to_text())
