"""Benchmark: ensemble-size scaling (extension of the paper's N=2).

Asserts member independence under the co-located placement and the
placement's dominance at every ensemble size.
"""

from repro.experiments.scaling import run_scaling


def test_bench_scaling(benchmark):
    result = benchmark(lambda: run_scaling(member_counts=(1, 2, 4, 8, 16)))

    packed = [r for r in result.rows if r["placement"] == "co-located"]
    spread = [r for r in result.rows if r["placement"] == "spread"]

    spans = [r["ensemble_makespan"] for r in packed]
    assert max(spans) - min(spans) < 1e-6 * spans[0]

    for p, s in zip(packed, spread):
        assert p["objective_F"] > s["objective_F"]
        assert p["ensemble_makespan"] < s["ensemble_makespan"]

    print("\n" + result.to_text())
