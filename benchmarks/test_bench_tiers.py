"""Benchmark: the staging-tier x placement matrix.

Asserts the tier-contingency result: in-memory staging wins only with
co-location; placement-insensitive tiers flip the winner to the
co-location-free baseline; contention (C1.4) dominates on every tier.
"""

from repro.experiments.tiers import best_placement_per_tier, run_tier_matrix


def test_bench_tier_matrix(benchmark, bench_settings):
    result = benchmark(lambda: run_tier_matrix(**bench_settings))

    winners = best_placement_per_tier(result)
    assert winners["in-memory"] in ("Cc", "C1.5")
    assert winners["burst-buffer"] == "Cf"
    assert winners["parallel-fs"] == "Cf"

    # co-located placements are nearly tier-invariant
    cc = {
        row["tier"]: row["ensemble_makespan"]
        for row in result.rows
        if row["configuration"] == "Cc"
    }
    assert max(cc.values()) / min(cc.values()) < 1.01

    # contention dominates on every tier: C1.4 is always worst
    for tier in ("in-memory", "burst-buffer", "parallel-fs"):
        rows = {
            row["configuration"]: row["ensemble_makespan"]
            for row in result.rows
            if row["tier"] == tier
        }
        assert max(rows, key=rows.get) == "C1.4"

    print("\n" + result.to_text())
