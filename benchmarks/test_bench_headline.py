"""Benchmark: the abstract's headline improvement spread.

Asserts that (a) the best co-located configuration wins both sets at
the final indicator stage and the spread grows as layers are added,
and (b) the extended straggler scenario demonstrates the unbounded
(>= four orders of magnitude) dynamic range the abstract refers to.
"""

import math

from repro.experiments.headline import run_headline, run_headline_extended


def test_bench_headline(benchmark, bench_settings):
    result = benchmark(lambda: run_headline(**bench_settings))

    for set_name in ("set1 (K=1)", "set2 (K=2)"):
        rows = {
            row["stage"]: row
            for row in result.rows
            if row["set"] == set_name
        }
        # the fully co-located configuration wins the final stage
        assert rows["U,A,P"]["best_config"] in ("C1.5", "C2.8")
        # each added layer widens the separation
        assert (
            rows["U"]["improvement_ratio"]
            < rows["U,A"]["improvement_ratio"]
            <= rows["U,A,P"]["improvement_ratio"] + 1e-9
        )

    print("\n" + result.to_text())


def test_bench_headline_extended(benchmark, bench_settings):
    result = benchmark(lambda: run_headline_extended(n_steps=bench_settings["n_steps"]))

    one, two = result.rows
    assert one["improvement_ratio"] > 10  # over an order of magnitude
    assert math.isinf(two["improvement_ratio"])  # unbounded (F <= 0)

    print("\n" + result.to_text())
