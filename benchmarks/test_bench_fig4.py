"""Benchmark: regenerate Figure 4 (ensemble member makespans).

Asserts the paper's claim that C1.5 yields the shortest member
makespan, with the analysis-contended configurations (C1.1, C1.4) as
the stragglers.
"""

from repro.experiments.fig4 import (
    best_member_makespan,
    run_fig4,
    worst_member_makespan,
)


def test_bench_fig4(benchmark, bench_settings):
    result = benchmark(lambda: run_fig4(**bench_settings))

    c15_worst = worst_member_makespan(result, "C1.5")
    for straggler in ("C1.1", "C1.2", "C1.4"):
        assert c15_worst < best_member_makespan(result, straggler)
    # C1.3's co-located member ties C1.5 (same local placement)
    assert c15_worst <= worst_member_makespan(result, "C1.3") * 1.001

    print("\n" + result.to_text())
