"""Benchmarks for the design-choice ablations (DESIGN.md §5).

Each ablation disables one mechanism of the platform/DTL model and
asserts the paper's ordering changes in the predicted direction —
evidence that the mechanism, not a tuning accident, produces the
result.
"""

from repro.experiments.ablation import (
    run_contention_ablation,
    run_locality_ablation,
    run_tax_ablation,
)


def _spans(result, variant):
    return {
        row["configuration"]: row["ensemble_makespan"]
        for row in result.rows
        if row["variant"] == variant
    }


def test_bench_contention_ablation(benchmark, bench_settings):
    result = benchmark(lambda: run_contention_ablation(**bench_settings))
    on, off = _spans(result, "contention-on"), _spans(result, "contention-off")
    # with contention on, C1.4's analysis co-location costs > 15%
    gap_on = on["C1.4"] / on["C1.5"]
    assert gap_on > 1.15
    # with contention off, only the locality/tax share of the gap
    # remains (C1.4 still reads remotely), so the gap collapses to a
    # small fraction of its contended size
    gap_off = off["C1.4"] / off["C1.5"]
    assert gap_off < 1.08
    assert (gap_off - 1.0) < 0.4 * (gap_on - 1.0)
    print("\n" + result.to_text())


def test_bench_locality_ablation(benchmark, bench_settings):
    result = benchmark(lambda: run_locality_ablation(**bench_settings))
    dimes, bb = _spans(result, "dimes"), _spans(result, "burst-buffer")
    assert dimes["Cc"] < dimes["Cf"]  # locality rewards co-location
    assert bb["Cc"] > bb["Cf"]  # placement-insensitive tier does not
    print("\n" + result.to_text())


def test_bench_tax_ablation(benchmark, bench_settings):
    result = benchmark(lambda: run_tax_ablation(**bench_settings))
    on, off = _spans(result, "tax-on"), _spans(result, "tax-off")
    assert on["Cc"] < on["Cf"]
    assert off["Cf"] < off["Cc"]
    print("\n" + result.to_text())
