"""Benchmark: the fast placement-search engine vs the seed paths.

Times canonical enumeration, the cached exhaustive engine, batch
scoring, the vectorized branch-and-bound search, and incremental
annealing against the preserved seed implementations — asserting
bit-identical results (same winners, same floats to 1e-12, same
candidate counts) alongside the speedups.
``scripts/bench_search.py`` records the same comparison to
``BENCH_search.json`` with hard regression floors.
"""

import time

from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.annealing import SimulatedAnnealingPolicy
from repro.scheduler.objectives import score_placement
from repro.search import find_best_placement, score_placements_batch
from repro.search.cache import StageCache
from repro.search.reference import enumerate_placements_reference

NUM_NODES = 6
CORES = 32


def _spec():
    return EnsembleSpec(
        "search-bench",
        (
            default_member("em1", num_analyses=2, n_steps=6),
            default_member("em2", num_analyses=1, n_steps=6),
            default_member("em3", num_analyses=1, n_steps=6),
        ),
    )


def test_bench_canonical_enumeration(benchmark):
    from repro.configs.generator import enumerate_placements

    spec = _spec()
    fast = benchmark(
        lambda: list(enumerate_placements(spec, NUM_NODES, CORES))
    )
    seed = list(
        enumerate_placements_reference(spec, NUM_NODES, CORES)
    )
    assert fast == seed  # same placements, same order
    print(f"\ncanonical space: {len(fast)} placements")


def test_bench_exhaustive_engine(benchmark):
    spec = _spec()
    find_best_placement(spec, NUM_NODES, CORES)  # warm imports

    best, evaluated = benchmark(
        lambda: find_best_placement(spec, NUM_NODES, CORES)
    )

    t0 = time.perf_counter()
    seed_best = None
    seed_evaluated = 0
    for placement in enumerate_placements_reference(
        spec, NUM_NODES, CORES
    ):
        score = score_placement(spec, placement)
        seed_evaluated += 1
        if seed_best is None or score > seed_best:
            seed_best = score
    t_seed = time.perf_counter() - t0

    assert evaluated == seed_evaluated
    assert best.placement == seed_best.placement
    assert abs(best.objective - seed_best.objective) < 1e-12
    assert (
        abs(best.ensemble_makespan - seed_best.ensemble_makespan) < 1e-12
    )
    print(
        f"\nengine == seed loop over {evaluated} candidates "
        f"(seed loop alone: {t_seed:.2f}s)"
    )


def test_bench_batch_scoring(benchmark):
    from repro.configs.generator import enumerate_placements

    spec = _spec()
    placements = list(enumerate_placements(spec, NUM_NODES, CORES))
    cache = StageCache()

    scores = benchmark(
        lambda: score_placements_batch(spec, placements, cache=cache)
    )

    sample = scores[:: max(1, len(scores) // 16)]
    for got in sample:
        want = score_placement(spec, got.placement)
        assert got.objective == want.objective
        assert got.ensemble_makespan == want.ensemble_makespan
    print(f"\nbatch-scored {len(scores)} candidates through one cache")


def test_bench_vectorized_search(benchmark):
    from repro.search import find_best_placement_vectorized

    spec = _spec()
    find_best_placement_vectorized(spec, NUM_NODES, CORES)  # warm

    result = benchmark(
        lambda: find_best_placement_vectorized(spec, NUM_NODES, CORES)
    )

    scalar, evaluated = find_best_placement(spec, NUM_NODES, CORES)
    assert result.scored + result.pruned == evaluated
    assert result.best.placement == scalar.placement
    assert result.best.objective == scalar.objective
    assert result.best.ensemble_makespan == scalar.ensemble_makespan
    print(
        f"\nbranch-and-bound: scored {result.scored}, pruned "
        f"{result.pruned} of {evaluated} (winner == scalar engine)"
    )


def test_bench_incremental_annealing(benchmark):
    spec = EnsembleSpec(
        "anneal-bench",
        tuple(
            default_member(
                f"em{i}", num_analyses=2 if i % 2 else 1, n_steps=6
            )
            for i in range(5)
        ),
    )
    kwargs = dict(
        seed=0, plateau=30, cooling=0.9, min_temperature_ratio=1e-3
    )

    def run_incremental():
        policy = SimulatedAnnealingPolicy(incremental=True, **kwargs)
        return policy.place(spec, NUM_NODES, CORES), policy.stats

    placement, stats = benchmark(run_incremental)

    t0 = time.perf_counter()
    full = SimulatedAnnealingPolicy(incremental=False, **kwargs)
    full_placement = full.place(spec, NUM_NODES, CORES)
    t_full = time.perf_counter() - t0

    assert placement == full_placement
    assert stats.evaluations == full.stats.evaluations
    assert stats.accepted == full.stats.accepted
    assert stats.improved == full.stats.improved
    print(
        f"\nincremental == full over {stats.evaluations} evaluations "
        f"(full path alone: {t_full:.2f}s)"
    )
