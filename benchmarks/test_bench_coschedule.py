"""Benchmark: cluster co-scheduling vs FIFO-exclusive provisioning.

Two layers of enforcement:

- the committed ``BENCH_coschedule.json`` must exist, carry passing
  correctness verdicts (determinism, single-ensemble degeneration),
  and clear its recorded utilization-gain floor — so a regression
  cannot be hidden by simply not re-running the script;
- a live measurement runs the canonical mixed-deadline stream fresh
  and asserts the co-scheduler actually beats FIFO-exclusive by the
  smoke-mode margin with byte-identical decision logs.
"""

import json
from pathlib import Path

from repro.coschedule import (
    CoScheduler,
    canonical_mixed_deadline_stream,
    fifo_exclusive_schedule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "BENCH_coschedule.json"

TOTAL_NODES = 6
NUM_REQUESTS = 4


def test_committed_results_pass_their_floors():
    assert RESULTS.exists(), (
        "BENCH_coschedule.json missing - run scripts/bench_coschedule.py"
    )
    results = json.loads(RESULTS.read_text())
    for payload in results["correctness"]:
        assert payload["passed"], (
            f"{payload['scenario']} recorded a correctness divergence"
        )
    scenario = results["scenario"]
    assert (
        scenario["utilization_gain"]
        >= results["floors"]["utilization_gain"]
    )
    assert scenario["coscheduled_utilization"] > scenario["fifo_utilization"]
    assert scenario["admitted"] == scenario["completions"]
    assert scenario["decisions_digest"]
    assert scenario["result_digest"]


def test_bench_coscheduled_stream(benchmark):
    stream = canonical_mixed_deadline_stream(num_requests=NUM_REQUESTS)
    fifo = fifo_exclusive_schedule(stream, TOTAL_NODES)

    def coscheduled():
        return CoScheduler(total_nodes=TOTAL_NODES).run(stream)

    result = benchmark(coscheduled)
    assert result.utilization >= 1.05 * fifo.utilization
    # the loop is deterministic: a fresh run reproduces the digest
    again = CoScheduler(total_nodes=TOTAL_NODES).run(stream)
    assert again.decisions_digest() == result.decisions_digest()
    assert again.digest() == result.digest()
    print(
        f"\ncoschedule: FIFO {fifo.utilization:.3f} -> "
        f"{result.utilization:.3f} utilization "
        f"({result.utilization / fifo.utilization:.2f}x, "
        f"{len(result.admitted)} admitted)"
    )
