"""Shared settings for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts,
asserts its qualitative shape (who wins, where crossovers fall), and
prints the regenerated rows/series so ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's tables on stdout.

The ``bench_settings`` fixture keeps individual timed runs fast
(2 trials, 8 in situ steps) — stage times are step-invariant in steady
state, so the shapes are unaffected; EXPERIMENTS.md records the
full-protocol (5-trial, 37-step) numbers.
"""

import pytest


@pytest.fixture
def bench_settings():
    return dict(trials=2, n_steps=8, timing_noise=0.02)
