"""Benchmarks for Table 2 / Table 4: configuration execution cost.

Regenerates the configuration tables and times a full discrete-event
execution of the elementary (Cf) and densest (C2.8) configurations.
"""

from repro.configs.base import build_spec
from repro.configs.table2 import get_config as t2, table2
from repro.configs.table4 import get_config as t4, table4
from repro.runtime.runner import run_ensemble


def test_bench_table2_execution(benchmark, bench_settings):
    """Time one full DES execution of Cf (Table 2's baseline row)."""
    config = t2("Cf")
    spec = build_spec(config, n_steps=bench_settings["n_steps"])

    result = benchmark(
        lambda: run_ensemble(spec, config.placement(), seed=0)
    )
    assert result.total_nodes == 2
    assert result.ensemble_makespan > 0

    print("\nTable 2 configurations:")
    for c in table2():
        rows = [
            f"(sim@n{m.simulation_node}, ana@{list(m.analysis_nodes)})"
            for m in c.members
        ]
        print(f"  {c.name:5s} nodes={c.num_nodes} members={rows}")


def test_bench_table4_execution(benchmark, bench_settings):
    """Time one full DES execution of C2.8 (Table 4's densest row)."""
    config = t4("C2.8")
    spec = build_spec(config, n_steps=bench_settings["n_steps"])

    result = benchmark(
        lambda: run_ensemble(spec, config.placement(), seed=0)
    )
    assert result.total_nodes == 2
    assert len(result.members) == 2

    print("\nTable 4 configurations:")
    for c in table4():
        rows = [
            f"(sim@n{m.simulation_node}, ana@{list(m.analysis_nodes)})"
            for m in c.members
        ]
        print(f"  {c.name:5s} nodes={c.num_nodes} members={rows}")
