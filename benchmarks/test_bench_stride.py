"""Benchmark: the stride sweep (extension of the §3.4 parameter study).

Asserts that the paper's stride of 800 is the smallest swept stride
reaching the Idle Analyzer regime — the operating point its analysis
core choice implies — and that amortized per-MD-step cost plateaus
beyond it.
"""

from repro.experiments.stride import (
    run_stride_sweep,
    smallest_idle_analyzer_stride,
)


def test_bench_stride_sweep(benchmark):
    result = benchmark(run_stride_sweep)

    assert smallest_idle_analyzer_stride(result) == 800
    per_step = {
        row["stride"]: row["seconds_per_md_step"] for row in result.rows
    }
    # the plateau: no meaningful gain past the paper's stride
    assert abs(per_step[3200] - per_step[800]) / per_step[800] < 0.01
    # and real loss below it
    assert per_step[400] > 1.5 * per_step[800]

    print("\n" + result.to_text())
