"""Benchmark: the placement service's throughput and cache floors.

Two layers of enforcement:

- the committed ``BENCH_service.json`` must exist, carry passing
  correctness verdicts, and clear the recorded floors (throughput
  >= 50 jobs/s sustained, cached resubmission >= 10x) — so a
  regression cannot be hidden by simply not re-running the script;
- a live pytest-benchmark measurement drives a fresh
  :class:`~repro.service.workers.PlacementService` pool and asserts
  the pooled payloads are bit-identical to a serial
  :func:`~repro.service.workers.execute_request` pass.
"""

import json
from pathlib import Path

from repro.runtime.spec import EnsembleSpec, default_member
from repro.service.cache import ResultCache
from repro.service.schemas import PlacementRequest, canonical_digest
from repro.service.workers import PlacementService, execute_request

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "BENCH_service.json"

NUM_JOBS = 24
WORKERS = 4


def _requests():
    spec = EnsembleSpec(
        "service-bench",
        (
            default_member("em1", num_analyses=2, n_steps=4),
            default_member("em2", num_analyses=1, n_steps=4),
        ),
    )
    return [
        PlacementRequest(
            kind="search", spec=spec, num_nodes=4, base_seed=seed
        )
        for seed in range(NUM_JOBS)
    ]


def test_committed_results_pass_their_floors():
    assert RESULTS.exists(), (
        "BENCH_service.json missing - run scripts/bench_service.py"
    )
    results = json.loads(RESULTS.read_text())
    floors = results["floors"]
    for payload in results["correctness"]:
        assert payload["passed"], (
            f"{payload['scenario']} recorded a correctness divergence"
        )
    throughput = results["throughput"]["throughput_jobs_per_s"]
    assert throughput >= floors["throughput_jobs_per_s"]
    speedup = results["throughput"]["cached_speedup"]
    assert speedup >= floors["cached_speedup"]


def test_bench_pool_throughput(benchmark):
    requests = _requests()
    serial = {
        canonical_digest(r): execute_request(r) for r in requests
    }

    def drain_fresh_pool():
        with PlacementService(workers=WORKERS) as service:
            jobs = [service.submit(r) for r in requests]
            return {
                j.digest: service.wait(j.id, timeout=120.0).result
                for j in jobs
            }

    pooled = benchmark(drain_fresh_pool)
    assert pooled == serial  # exact float equality, every payload
    print(f"\npooled {NUM_JOBS} jobs == serial pass, bit-identical")


def test_bench_cached_resubmission(benchmark):
    requests = _requests()
    cache = ResultCache()
    with PlacementService(workers=WORKERS, result_cache=cache) as service:
        first = [
            service.wait(service.submit(r).id, timeout=120.0)
            for r in requests
        ]

        def resubmit_all():
            return [service.submit(r) for r in requests]

        resubmitted = benchmark(resubmit_all)
    assert all(j.cached for j in resubmitted)
    assert [j.result for j in resubmitted] == [j.result for j in first]
    print(f"\n{NUM_JOBS} resubmissions served from the result cache")
