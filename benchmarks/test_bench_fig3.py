"""Benchmark: regenerate Figure 3 (component-level metrics).

Asserts the paper's three Figure-3 claims hold in the regenerated data:
co-location elevates miss ratios over Cf; analysis-analysis co-location
beats simulation-simulation on misses; heterogeneous co-location peaks
highest.
"""

from repro.experiments.fig3 import max_miss_ratio, mean_miss_ratio, run_fig3


def test_bench_fig3(benchmark, bench_settings):
    result = benchmark(lambda: run_fig3(**bench_settings))

    baseline = mean_miss_ratio(result, "Cf")
    for config in ("Cc", "C1.1", "C1.2", "C1.3", "C1.4", "C1.5"):
        assert mean_miss_ratio(result, config) > baseline

    assert mean_miss_ratio(result, "C1.1") > mean_miss_ratio(result, "C1.2")
    assert mean_miss_ratio(result, "C1.4") > mean_miss_ratio(result, "C1.2")

    het = min(max_miss_ratio(result, "C1.3"), max_miss_ratio(result, "C1.5"))
    homo = max(
        max_miss_ratio(result, c) for c in ("C1.1", "C1.2", "C1.4")
    )
    assert het > homo

    print("\n" + result.to_text())
