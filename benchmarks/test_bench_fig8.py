"""Benchmark: regenerate Figure 8 (F(P) stage paths, set 1).

Asserts the three §5.2 claims for the one-analysis-per-simulation set:
P^{U,P} cannot separate C1.4/C1.5; P^{U,A} can; the final indicator
ranks C1.5 > C1.4 > {C1.1, C1.2, C1.3}.
"""

from repro.experiments.fig8 import ranking, run_fig8


def test_bench_fig8(benchmark, bench_settings):
    result = benchmark(lambda: run_fig8(**bench_settings))

    c14 = result.row_for("configuration", "C1.4")
    c15 = result.row_for("configuration", "C1.5")

    # P^{U,P}: indistinguishable (both 2-node, similar efficiency)
    assert abs(c14["U,P"] - c15["U,P"]) / max(c14["U,P"], c15["U,P"]) < 0.10
    # P^{U,A}: clearly separated (placement indicator 0.5 vs 1.0)
    assert c15["U,A"] > 1.5 * c14["U,A"]
    # final ranking
    order = ranking(result, "U,A,P")
    assert order[0] == "C1.5"
    assert order[1] == "C1.4"
    assert set(order[2:]) == {"C1.1", "C1.2", "C1.3"}
    # both stage orders converge at the final value
    for row in result.rows:
        assert abs(row["U,A,P"] - row["U,P,A"]) < 1e-12

    print("\n" + result.to_text())
