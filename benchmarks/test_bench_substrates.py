"""Micro-benchmarks of the substrate layers.

Not paper artifacts — these track the performance of the building
blocks (DES engine, contention assessment, chunk marshaling, MD step,
eigenvalue kernel) so regressions in the substrates are visible
independently of the experiment harness.
"""

import numpy as np

from repro.components.kernels.eigen import largest_singular_value
from repro.components.md.engine import MDEngine
from repro.components.profiles import analysis_profile, simulation_profile
from repro.des.engine import Environment
from repro.des.store import Store
from repro.dtl.chunk import Chunk, ChunkKey
from repro.platform.specs import make_cori_like_cluster


def test_bench_des_event_throughput(benchmark):
    """Producer/consumer pair exchanging 2000 items through a Store."""

    def run():
        env = Environment()
        store = Store(env)

        def producer(env, store):
            for i in range(2000):
                yield env.timeout(0.001)
                yield store.put(i)

        def consumer(env, store):
            for _ in range(2000):
                yield store.get()

        env.process(producer(env, store))
        done = env.process(consumer(env, store))
        env.run(until=done)
        return env.now

    now = benchmark(run)
    assert now > 0


def test_bench_contention_assessment(benchmark):
    """Assess a fully packed node (the executor's hot path)."""
    cluster = make_cori_like_cluster(1)
    node = cluster.node(0)
    node.allocate("sim", 16, simulation_profile("sim"))
    node.allocate("ana1", 8, analysis_profile("ana1"))
    node.allocate("ana2", 8, analysis_profile("ana2"))

    out = benchmark(lambda: node.assess(cluster.contention))
    assert set(out) == {"sim", "ana1", "ana2"}


def test_bench_chunk_roundtrip(benchmark):
    """Serialize + deserialize a 3 MB frame (the paper's chunk size)."""
    payload = np.random.default_rng(0).normal(size=(250_000, 3)).astype(
        np.float32
    )
    chunk = Chunk(ChunkKey("sim", 0), payload, {"atoms": 250_000})

    back = benchmark(lambda: Chunk.deserialize(chunk.serialize()))
    assert back == chunk


def test_bench_md_step(benchmark):
    """One strided MD emission (10 steps) of a 500-particle LJ system."""
    engine = MDEngine(natoms=500, stride=10, seed=0)
    engine.equilibrate(10)

    frame = benchmark(lambda: next(engine.frames(1)))
    assert frame.natoms == 500


def test_bench_eigen_kernel(benchmark):
    """Largest singular value of a 200x200 contact-like matrix."""
    rng = np.random.default_rng(1)
    matrix = 1.0 / (1.0 + np.exp(rng.normal(size=(200, 200))))

    sigma = benchmark(lambda: largest_singular_value(matrix, tol=1e-8))
    assert sigma > 0
