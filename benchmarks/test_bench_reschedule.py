"""Benchmark: the closed rescheduling loop vs a static placement.

Two layers of enforcement:

- the committed ``BENCH_reschedule.json`` must exist, carry passing
  correctness verdicts (zero-drift byte-identity, invariants under
  migration), and clear its recorded improvement floor — so a
  regression cannot be hidden by simply not re-running the script;
- a live measurement runs the canonical drift scenario fresh and
  asserts the closed loop actually migrates off the drifted node and
  beats the static makespan by the smoke-mode margin.
"""

import json
from pathlib import Path

from repro.reschedule import (
    DriftEvent,
    DriftKind,
    RescheduleController,
    StaticDriftModel,
)
from repro.runtime import run_ensemble
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, default_member

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "BENCH_reschedule.json"

N_STEPS = 12


def _spec():
    return EnsembleSpec(
        "reschedule-bench",
        tuple(
            default_member(f"em{i}", num_analyses=1, n_steps=N_STEPS)
            for i in range(3)
        ),
    )


def _placement():
    return EnsemblePlacement(
        4, tuple(MemberPlacement(i, (i,)) for i in range(3))
    )


def _drift():
    return StaticDriftModel(
        (DriftEvent(node=0, kind=DriftKind.STEP, start_step=4, magnitude=2.5),)
    )


def test_committed_results_pass_their_floors():
    assert RESULTS.exists(), (
        "BENCH_reschedule.json missing - run scripts/bench_reschedule.py"
    )
    results = json.loads(RESULTS.read_text())
    for payload in results["correctness"]:
        assert payload["passed"], (
            f"{payload['scenario']} recorded a correctness divergence"
        )
    scenario = results["scenario"]
    assert scenario["improvement"] >= results["floors"]["improvement"]
    assert scenario["summary"]["migrations"] >= 1
    assert scenario["rescheduled_makespan"] < scenario["static_makespan"]
    assert scenario["invariant_checks"] > 0


def test_bench_closed_loop(benchmark):
    spec, placement = _spec(), _placement()
    static = run_ensemble(
        spec, placement, seed=0, timing_noise=0.02, drift=_drift()
    )

    def closed_loop():
        controller = RescheduleController(
            window=4, threshold=1.2, min_dwell=4, max_migrations=4
        )
        result = run_ensemble(
            spec,
            placement,
            seed=0,
            timing_noise=0.02,
            drift=_drift(),
            rescheduler=controller,
        )
        return result, controller

    rescheduled, controller = benchmark(closed_loop)
    assert controller.migrations_executed >= 1
    improvement = 1.0 - (
        rescheduled.ensemble_makespan / static.ensemble_makespan
    )
    assert improvement >= 0.10
    print(
        f"\nclosed loop: static {static.ensemble_makespan:.1f}s -> "
        f"{rescheduled.ensemble_makespan:.1f}s "
        f"({improvement:.1%} better, "
        f"{controller.migrations_executed} migrations)"
    )
