"""Benchmark: indicator-guided scheduling (the paper's future work).

Times the greedy indicator policy against exhaustive search and the
baselines, asserting (a) greedy matches the exhaustive optimum on the
paper-scale problem while evaluating far fewer candidates, and (b) both
dominate the locality-unaware baselines.
"""

from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.objectives import score_placement
from repro.scheduler.planner import ResourceConstrainedPlanner
from repro.scheduler.policies import (
    ExhaustiveSearchPolicy,
    GreedyIndicatorPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)


def _spec():
    return EnsembleSpec(
        "sched-bench",
        (
            default_member("em1", num_analyses=2, n_steps=5),
            default_member("em2", num_analyses=2, n_steps=5),
        ),
    )


def test_bench_greedy_scheduler(benchmark):
    spec = _spec()
    greedy = GreedyIndicatorPolicy()

    placement = benchmark(lambda: greedy.place(spec, 3, 32))

    g_score = score_placement(spec, placement)
    e_score = score_placement(
        spec, ExhaustiveSearchPolicy().place(spec, 3, 32)
    )
    rr_score = score_placement(spec, RoundRobinPolicy().place(spec, 3, 32))
    rnd_score = score_placement(
        spec, RandomPolicy(seed=5).place(spec, 3, 32)
    )

    assert abs(g_score.objective - e_score.objective) < 1e-12
    assert g_score.objective > rr_score.objective
    assert g_score.objective > rnd_score.objective

    print(
        f"\ngreedy F={g_score.objective:.5f} == exhaustive "
        f"F={e_score.objective:.5f} > round-robin "
        f"F={rr_score.objective:.5f}, random F={rnd_score.objective:.5f}"
    )


def test_bench_exhaustive_scheduler(benchmark):
    spec = _spec()
    exhaustive = ExhaustiveSearchPolicy()
    benchmark(lambda: exhaustive.place(spec, 3, 32))
    greedy = GreedyIndicatorPolicy()
    greedy.place(spec, 3, 32)
    assert greedy.evaluated < exhaustive.evaluated / 3
    print(
        f"\ncandidates evaluated: greedy {greedy.evaluated}, "
        f"exhaustive {exhaustive.evaluated}"
    )


def test_bench_planner(benchmark):
    spec = _spec()
    planner = ResourceConstrainedPlanner()

    plan = benchmark(lambda: planner.plan(spec, num_nodes=4))

    assert plan.analysis_cores == 8
    assert plan.placement.num_nodes == 2  # compacted to what's needed
    for mp in plan.placement.members:
        assert all(n == mp.simulation_node for n in mp.analysis_nodes)
