"""Benchmark: regenerate Figure 7 (analysis-core sweep, §3.4).

Asserts the crossover location (between 4 and 8 cores) and the
heuristic's choice (8 cores, maximal E among feasible counts).
"""

from repro.experiments.fig7 import heuristic_choice, run_fig7


def test_bench_fig7(benchmark):
    result = benchmark(run_fig7)

    for cores in (1, 2, 4):
        row = result.row_for("analysis_cores", cores)
        assert row["analysis_active"] > row["simulation_active"]
        assert not row["feasible"]
    for cores in (8, 16, 32):
        row = result.row_for("analysis_cores", cores)
        assert row["feasible"]

    feasible = [row for row in result.rows if row["feasible"]]
    best = max(feasible, key=lambda r: r["efficiency"])
    assert best["analysis_cores"] == 8

    print("\n" + result.to_text())


def test_bench_heuristic(benchmark):
    """Time the §3.4 heuristic end to end (sweep + selection)."""
    choice = benchmark(heuristic_choice)
    assert choice.cores == 8
