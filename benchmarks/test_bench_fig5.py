"""Benchmark: regenerate Figure 5 (workflow ensemble makespans).

Asserts C1.5 has the shortest ensemble makespan of the two-member
configurations and that the ensemble makespan ordering matches the
member-level story (C1.1/C1.4 worst).
"""

from repro.experiments.fig5 import run_fig5


def test_bench_fig5(benchmark, bench_settings):
    result = benchmark(lambda: run_fig5(**bench_settings))

    spans = {
        row["configuration"]: row["ensemble_makespan"] for row in result.rows
    }
    for other in ("C1.1", "C1.2", "C1.3", "C1.4"):
        assert spans["C1.5"] < spans[other]
    # the analysis-contended configurations are the worst
    assert min(spans["C1.1"], spans["C1.4"]) > max(
        spans["C1.2"], spans["C1.3"], spans["C1.5"]
    )

    print("\n" + result.to_text())
