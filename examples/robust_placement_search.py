#!/usr/bin/env python
"""Robust placement search: the surrogate puts failures in the loop.

Ranks the paper's C1/C2-style placements of a two-member ensemble
three ways and compares the answers:

1. the ideal indicator objective F(P^{U,A,P}) (failure-free);
2. robust F measured from DES trials under node-level crash
   injection — the expensive ground truth;
3. the closed-form robustness surrogate (``method="surrogate"``) —
   the same ranking at a fraction of the cost, cheap enough to hand
   the planner as a ``RobustnessTerm``.

Finally it runs the planner twice — without and with the robustness
term — to show the term's penalty appearing in the plan's score.

Run (finishes in a few seconds):
    python examples/robust_placement_search.py
"""

import time

from repro.faults.analytic import RobustnessTerm, node_crash_builder
from repro.faults.models import NodeFailureModel
from repro.faults.recovery import RetryBackoffPolicy
from repro.runtime.placement import (
    pack_members_per_node,
    spread_components,
)
from repro.runtime.spec import EnsembleSpec, default_member
from repro.scheduler.planner import ResourceConstrainedPlanner
from repro.scheduler.robust import (
    robust_score_placement,
    surrogate_score_placement,
)

NODE_CRASH_RATE = 0.05
POLICY = RetryBackoffPolicy()


def main() -> None:
    spec = EnsembleSpec(
        "robust-search",
        (
            default_member("em1", num_analyses=2, n_steps=15),
            default_member("em2", num_analyses=2, n_steps=15),
        ),
    )
    candidates = {
        "C1-style (co-located)": pack_members_per_node(spec),
        "C2-style (spread)": spread_components(spec),
    }

    print(
        f"ranking {len(candidates)} placements under node-level "
        f"crashes (rate {NODE_CRASH_RATE})\n"
    )

    # node-level fault domains are placement-specific, so each
    # candidate gets a model built on its own placement
    t0 = time.perf_counter()
    des = sorted(
        (
            robust_score_placement(
                spec,
                placement,
                lambda seed, p=placement: NodeFailureModel(
                    p, rate=NODE_CRASH_RATE, seed=seed
                ),
                POLICY,
                trials=3,
                name=name,
            )
            for name, placement in candidates.items()
        ),
        reverse=True,
    )
    t_des = time.perf_counter() - t0

    t0 = time.perf_counter()
    surrogate = sorted(
        (
            surrogate_score_placement(
                spec,
                placement,
                NodeFailureModel(placement, rate=NODE_CRASH_RATE),
                POLICY,
                name=name,
            )
            for name, placement in candidates.items()
        ),
        reverse=True,
    )
    t_sur = time.perf_counter() - t0

    print("DES trials (ground truth):")
    for s in des:
        print(
            f"  F_robust={s.objective:+.5f}  "
            f"inflation=x{s.mean_inflation:.3f}  {s.name}"
        )
    print(f"  ({t_des * 1e3:.1f} ms)\n")

    print("analytic surrogate:")
    for s in surrogate:
        print(
            f"  F_robust={s.objective:+.5f}  "
            f"inflation=x{s.mean_inflation:.3f}  {s.name}"
        )
    print(
        f"  ({t_sur * 1e3:.1f} ms — {t_des / t_sur:.0f}x faster, "
        f"same order: {[s.name for s in des] == [s.name for s in surrogate]})"
    )

    term = RobustnessTerm(
        policy=POLICY,
        model_builder=node_crash_builder(NODE_CRASH_RATE),
        weight=1.0,
    )
    ideal_plan = ResourceConstrainedPlanner().plan(spec, num_nodes=3)
    robust_plan = ResourceConstrainedPlanner(robustness=term).plan(
        spec, num_nodes=3
    )
    print("\nplanner without robustness term:")
    print(
        f"  F={ideal_plan.score.objective:.5f}  "
        f"penalty={ideal_plan.score.robust_penalty:.5f}  "
        f"utility={ideal_plan.score.utility:.5f}"
    )
    print("planner with node-crash robustness term:")
    print(
        f"  F={robust_plan.score.objective:.5f}  "
        f"penalty={robust_plan.score.robust_penalty:.5f}  "
        f"utility={robust_plan.score.utility:.5f}"
    )
    print(
        "\nthe surrogate reproduces the DES ranking without a single "
        "DES run, so the same penalty can ride inside greedy or "
        "annealing search — see docs/FAULT_MODELS.md."
    )


if __name__ == "__main__":
    main()
