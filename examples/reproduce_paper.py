#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one run.

Prints the regenerated data behind Figures 3, 4, 5, 7, 8 and 9, the
headline improvement spread, and the three design ablations. Expect a
few seconds of runtime at the paper's 5-trial protocol.

Run:
    python examples/reproduce_paper.py            # full protocol
    python examples/reproduce_paper.py --fast     # quick smoke pass
"""

import sys
import time

from repro.experiments import (
    run_contention_ablation,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig7,
    run_fig8,
    run_fig9,
    run_headline,
    run_locality_ablation,
    run_tax_ablation,
)
from repro.experiments.headline import run_headline_extended


def main() -> None:
    fast = "--fast" in sys.argv
    kwargs = dict(trials=2, n_steps=6) if fast else {}

    t0 = time.time()
    experiments = [
        run_fig3(**kwargs),
        run_fig4(**kwargs),
        run_fig5(**kwargs),
        run_fig7(),
        run_fig8(**kwargs),
        run_fig9(**kwargs),
        run_headline(**kwargs),
        run_headline_extended(),
        run_contention_ablation(**kwargs),
        run_locality_ablation(**kwargs),
        run_tax_ablation(**kwargs),
    ]
    for result in experiments:
        print(result.to_text())
        print()
    print(f"regenerated {len(experiments)} artifacts in "
          f"{time.time() - t0:.1f} s")


if __name__ == "__main__":
    main()
