#!/usr/bin/env python
"""End-to-end workflow: measure -> calibrate -> plan -> run.

The full production loop a user of this library would follow on a real
machine:

1. **measure**: time your simulation and analysis at a few core counts
   (here synthesized from a hidden "true" machine with noise);
2. **calibrate**: least-squares fit of the Amdahl cost models;
3. **plan**: the resource-constrained planner picks analysis cores
   (§3.4 heuristic) and an indicator-optimal placement;
4. **run**: execute the plan on the modeled platform and report.

Run:
    python examples/calibrate_and_plan.py
"""

import numpy as np

from repro.components.calibration import (
    AnalysisSample,
    SimulationSample,
    fit_analysis_model,
    fit_simulation_model,
)
from repro.components.simulation import MDSimulationModel
from repro.components.analysis import EigenAnalysisModel
from repro.monitoring.report import summary_report
from repro.runtime.runner import run_ensemble
from repro.runtime.spec import EnsembleSpec, MemberSpec
from repro.scheduler.planner import ResourceConstrainedPlanner


def measure() -> tuple:
    """Pretend measurements from the user's machine (3% noise)."""
    rng = np.random.default_rng(7)
    # the hidden truth: a slightly different machine than our defaults
    true_sim = dict(seconds_per_atom_step=8.5e-7, serial_fraction=0.07)
    true_ana = dict(single_core_time=70.0, serial_fraction=0.12)

    sim_samples = []
    for cores in (2, 4, 8, 16):
        t = MDSimulationModel("probe", cores=cores, **true_sim)
        sim_samples.append(
            SimulationSample(
                cores=cores,
                stride=800,
                natoms=250_000,
                seconds=t.solo_compute_time() * rng.uniform(0.97, 1.03),
            )
        )
    ana_samples = []
    for cores in (1, 2, 4, 8, 16):
        t = EigenAnalysisModel("probe", cores=cores, **true_ana)
        ana_samples.append(
            AnalysisSample(
                cores=cores,
                seconds=t.solo_compute_time() * rng.uniform(0.97, 1.03),
            )
        )
    return sim_samples, ana_samples


def main() -> None:
    print("1. measuring (synthetic 3%-noise timings)...")
    sim_samples, ana_samples = measure()

    print("2. calibrating cost models...")
    sim_model, sim_report = fit_simulation_model("em.sim", sim_samples)
    ana_model, ana_report = fit_analysis_model("em.ana", ana_samples)
    print(
        f"   simulation: serial fraction {sim_report.serial_fraction:.3f}, "
        f"rmse {sim_report.rmse:.2e}"
    )
    print(
        f"   analysis:   T1 = {ana_report.single_core_time:.1f} s, "
        f"serial fraction {ana_report.serial_fraction:.3f}"
    )

    print("3. planning a 2-member ensemble within a 4-node budget...")

    def member(name):
        sim = MDSimulationModel(
            f"{name}.sim",
            cores=16,
            seconds_per_atom_step=sim_model.seconds_per_atom_step,
            serial_fraction=sim_model.serial_fraction,
        )
        ana = EigenAnalysisModel(
            f"{name}.ana",
            cores=8,
            single_core_time=ana_model.single_core_time,
            serial_fraction=ana_model.serial_fraction,
        )
        return MemberSpec(name, sim, (ana,), n_steps=10)

    spec = EnsembleSpec("calibrated", (member("em1"), member("em2")))
    plan = ResourceConstrainedPlanner().plan(spec, num_nodes=4)
    print(
        f"   -> {plan.analysis_cores} cores per analysis, "
        f"{plan.placement.num_nodes} nodes used of 4 budgeted"
    )
    for m, mp in zip(plan.spec.members, plan.placement.members):
        print(
            f"      {m.name}: sim@n{mp.simulation_node}, "
            f"analyses@{list(mp.analysis_nodes)}"
        )

    print("4. executing the plan...\n")
    result = run_ensemble(plan.spec, plan.placement, timing_noise=0.02)
    print(summary_report(result))


if __name__ == "__main__":
    main()
