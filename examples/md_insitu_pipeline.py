#!/usr/bin/env python
"""Real-data in situ pipeline: MD engine -> DTL -> spectral analysis.

The in-process analogue of the paper's GROMACS + DIMES + eigenvalue
stack: a real Lennard-Jones MD simulation emits frames every ``stride``
steps; each frame is marshaled into a chunk (real serialization with
CRC), staged through the DIMES-like in-memory store under the
no-buffering protocol, and consumed by the real collective-variable
analysis (bipartite contact matrix -> largest singular value).

The same loop is run with the consumer co-located and remote, and the
simulated staging costs are compared — the data-locality effect at the
heart of the paper.

Run:
    python examples/md_insitu_pipeline.py
"""

from repro.components.kernels.cv import CollectiveVariableAnalyzer
from repro.components.md.engine import MDEngine
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.plugin import DTLPlugin
from repro.util.units import format_bytes, format_time

N_FRAMES = 8


def run_pipeline(consumer_node: int) -> dict:
    """One full in situ run; returns cost totals and the CV series."""
    engine = MDEngine(natoms=256, stride=10, seed=42)
    engine.equilibrate(50)

    dtl = InMemoryStagingDTL()
    producer = DTLPlugin(dtl, component="sim", node=0)
    consumer = DTLPlugin(dtl, component="ana", node=consumer_node)
    analyzer = CollectiveVariableAnalyzer()

    totals = {"write": 0.0, "read": 0.0, "producer_tax": 0.0, "bytes": 0}
    for frame in engine.frames(N_FRAMES):
        receipt = producer.stage_out(
            frame.positions,
            {"box_length": frame.box_length, "T": frame.temperature},
        )
        totals["write"] += receipt.cost.total
        totals["bytes"] += receipt.nbytes

        payload, meta, read_receipt = consumer.stage_in(
            "sim", receipt.key.step
        )
        totals["read"] += read_receipt.cost.total
        totals["producer_tax"] += read_receipt.cost.producer_overhead

        analyzer.analyze(payload, meta["box_length"], frame.index)

    totals["cv"] = analyzer.trajectory
    return totals


def main() -> None:
    print(f"Running {N_FRAMES} in situ steps of a 256-particle LJ system\n")
    local = run_pipeline(consumer_node=0)
    remote = run_pipeline(consumer_node=1)

    print(f"frames staged: {N_FRAMES}, {format_bytes(local['bytes'])} total")
    print("\n                      co-located      remote")
    print(
        f"  write cost       {format_time(local['write']):>12} "
        f"{format_time(remote['write']):>12}"
    )
    print(
        f"  read cost        {format_time(local['read']):>12} "
        f"{format_time(remote['read']):>12}"
    )
    print(
        f"  producer tax     {format_time(local['producer_tax']):>12} "
        f"{format_time(remote['producer_tax']):>12}"
    )
    speedup = remote["read"] / local["read"]
    print(f"\nco-located reads are {speedup:.1f}x cheaper (DIMES data locality)")

    print("\ncollective variable along the trajectory (identical either way):")
    for i, v in enumerate(local["cv"]):
        print(f"  frame {i}: lambda_max = {v:.4f}")
    assert (local["cv"] == remote["cv"]).all()


if __name__ == "__main__":
    main()
