#!/usr/bin/env python
"""A heterogeneous ensemble member: distinct analyses on one simulation.

The paper's framework supports coupling *different* analyses to one
simulation (§3.4); its Figure 6 shows the general case where couplings
sit in different regimes. This example demonstrates both halves of the
library on that scenario:

1. **Real data** — one mini-MD simulation feeds two distinct real
   analyses through the DTL: the spectral collective variable and the
   structural analyzer (RMSD + radius of gyration), each reading the
   same staged frame.
2. **Model** — the same member shape goes through the executor with a
   slow and a fast analysis, showing one coupling in Idle Simulation
   and the other in Idle Analyzer, with the per-coupling efficiency
   breakdown of Eq. 3.

Run:
    python examples/heterogeneous_member.py
"""

from repro.components.kernels.cv import CollectiveVariableAnalyzer
from repro.components.kernels.structure import StructureAnalyzer
from repro.components.md.engine import MDEngine
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.plugin import DTLPlugin
from repro.experiments.heterogeneous import run_heterogeneous


def real_data_half() -> None:
    print("== real data: one frame, two distinct analyses ==")
    engine = MDEngine(natoms=108, stride=10, seed=5)
    engine.equilibrate(50)

    dtl = InMemoryStagingDTL()
    producer = DTLPlugin(dtl, component="sim", node=0)
    cv_reader = DTLPlugin(dtl, component="cv", node=0)
    struct_reader = DTLPlugin(dtl, component="struct", node=0)

    cv = CollectiveVariableAnalyzer()
    struct = StructureAnalyzer()

    print("frame   lambda_max     RMSD      Rg")
    for frame in engine.frames(6):
        receipt = producer.stage_out(
            frame.positions,
            {"box_length": frame.box_length},
            expected_consumers=2,  # both analyses read this chunk
        )
        payload_cv, meta, _ = cv_reader.stage_in("sim", receipt.key.step)
        payload_st, _, _ = struct_reader.stage_in("sim", receipt.key.step)

        cv_value = cv.analyze(payload_cv, meta["box_length"]).value
        rmsd_value, rg = struct.analyze(payload_st.astype(float))
        print(
            f"  {frame.index}     {cv_value:8.4f}  {rmsd_value:8.4f}  "
            f"{rg:7.4f}"
        )
    print(
        f"\nstaged {dtl.bytes_staged_total} bytes, served "
        f"{dtl.reads_served_total} reads, live slots: {dtl.live_slots}"
    )


def model_half() -> None:
    print("\n== model: mixed coupling regimes (Figure 6 scenario) ==")
    result = run_heterogeneous(slow_cores=4, fast_cores=16, n_steps=8)
    print(result.to_text())
    print(
        "\nThe slow coupling (4 cores) outlasts the simulation step "
        "(Idle Simulation); the fast one (16 cores) finishes early and "
        "waits (Idle Analyzer). The member's period is set by the slow "
        "coupling, so over-provisioning the fast analysis only buys "
        "idle time — exactly why the §3.4 heuristic right-sizes "
        "analyses instead of maximizing their cores."
    )


if __name__ == "__main__":
    real_data_half()
    model_half()
