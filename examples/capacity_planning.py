#!/usr/bin/env python
"""Capacity planning with the §3.4 heuristic, across staging tiers.

Given a simulation whose settings the scientist fixed (16 cores,
stride 800), how many cores should each in situ analysis get? The
paper's heuristic picks the count that keeps every coupling in the
Idle Analyzer regime (Eq. 4) while maximizing the computational
efficiency E. This example runs the sweep (the paper's Figure 7),
renders it as an ASCII chart, and repeats the exercise over the three
staging tiers to show how slower tiers shift the feasible region.

Run:
    python examples/capacity_planning.py
"""

from repro.components.analysis import EigenAnalysisModel
from repro.components.simulation import MDSimulationModel
from repro.core.heuristic import choose_analysis_cores
from repro.core.stages import MemberStages
from repro.dtl.burstbuffer import BurstBufferDTL
from repro.dtl.dimes import InMemoryStagingDTL
from repro.dtl.pfs import ParallelFilesystemDTL
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec, MemberSpec

CORE_COUNTS = (1, 2, 4, 8, 16, 32)


def evaluator_for(dtl_factory):
    """Stage evaluator in the co-location-free baseline placement."""

    def evaluate(cores: int) -> MemberStages:
        sim = MDSimulationModel("sim", cores=16)
        ana = EigenAnalysisModel("ana", cores=cores)
        spec = EnsembleSpec(
            "plan", (MemberSpec("member", sim, (ana,), n_steps=1),)
        )
        placement = EnsemblePlacement(2, (MemberPlacement(0, (1,)),))
        cluster = make_cori_like_cluster(2)
        dtl = dtl_factory(cluster)
        return predict_member_stages(
            spec, placement, cluster=cluster, dtl=dtl
        )["member"]

    return evaluate


def ascii_bar(value: float, scale: float, width: int = 40) -> str:
    filled = int(round(width * value / scale))
    return "#" * min(filled, width)


def main() -> None:
    tiers = {
        "in-memory (DIMES-like)": lambda cl: InMemoryStagingDTL(
            network=cl.network,
            memory_bandwidth=cl.node_spec.memory_bandwidth,
        ),
        "burst buffer": lambda cl: BurstBufferDTL(),
        "parallel filesystem": lambda cl: ParallelFilesystemDTL(
            aggregate_bandwidth=2e9, metadata_latency=0.05
        ),
    }

    for tier_name, factory in tiers.items():
        choice = choose_analysis_cores(evaluator_for(factory), CORE_COUNTS)
        print(f"\n=== staging tier: {tier_name} ===")
        print("cores  sigma*       R*+A* vs S*+W*          E      feasible")
        scale = max(p.analysis_active for p in choice.sweep)
        for p in choice.sweep:
            marker = "<= chosen" if p.cores == choice.cores else ""
            print(
                f"{p.cores:5d}  {p.sigma:7.2f}s  "
                f"{ascii_bar(p.analysis_active, scale):40s}  "
                f"{p.efficiency:5.3f}  {str(p.feasible):5s} {marker}"
            )
        print(
            f"heuristic: {choice.cores} cores per analysis "
            f"(E = {choice.point.efficiency:.3f}, "
            f"sigma* = {choice.point.sigma:.2f}s)"
        )


if __name__ == "__main__":
    main()
