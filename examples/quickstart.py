#!/usr/bin/env python
"""Quickstart: evaluate two placements of a workflow ensemble.

Builds the paper's default two-member ensemble (one MD simulation
coupled with one in situ analysis per member), runs it under two
placements — C1.4 (simulations share a node, analyses share another)
and C1.5 (each member co-located on its own node) — and prints the
Table-1 metrics plus the multi-stage performance indicator for each.

Run:
    python examples/quickstart.py
"""

from repro import (
    EnsemblePlacement,
    EnsembleSpec,
    IndicatorStage,
    MemberPlacement,
    default_member,
    run_ensemble,
)

U = IndicatorStage.USAGE
A = IndicatorStage.ALLOCATION
P = IndicatorStage.PROVISIONING


def main() -> None:
    # Two members, each: 16-core MD simulation (stride 800) + 8-core
    # eigenvalue analysis, running 12 in situ steps.
    spec = EnsembleSpec(
        "quickstart",
        (
            default_member("em1", n_steps=12),
            default_member("em2", n_steps=12),
        ),
    )

    placements = {
        "C1.4  (sims share n0, analyses share n1)": EnsemblePlacement(
            2, (MemberPlacement(0, (1,)), MemberPlacement(0, (1,)))
        ),
        "C1.5  (each member co-located on its own node)": EnsemblePlacement(
            2, (MemberPlacement(0, (0,)), MemberPlacement(1, (1,)))
        ),
    }

    for label, placement in placements.items():
        result = run_ensemble(spec, placement, seed=0, timing_noise=0.02)
        print(f"\n=== {label} ===")
        print(f"ensemble makespan: {result.ensemble_makespan:8.2f} s")
        for member in result.members:
            print(
                f"  {member.name}: makespan {member.makespan:8.2f} s, "
                f"efficiency E = {member.efficiency:.3f}"
            )
        print("  component metrics (Table 1):")
        for name, cm in result.component_metrics.items():
            print(
                f"    {name:10s} LLC miss ratio {cm.llc_miss_ratio:.3f}  "
                f"IPC {cm.ipc:.2f}  mem-intensity {cm.memory_intensity:.2e}"
            )
        f_value = result.objective([U, A, P])
        print(f"  F(P^{{U,A,P}}) = {f_value:.5f}  (higher is better)")

    print(
        "\nThe indicator prefers C1.5: same node count as C1.4, but the "
        "placement layer rewards co-locating each analysis with the "
        "simulation that feeds it."
    )


if __name__ == "__main__":
    main()
