#!/usr/bin/env python
"""Placement search: rank every feasible placement with the indicator.

The paper's conclusion proposes using the performance indicators for
scheduling. This example does exactly that: it enumerates every
feasible placement of a two-member ensemble (one simulation + two
analyses each — the Table 4 shape) over 2 and 3 Cori-like nodes,
scores each with F(P^{U,A,P}) via the fast analytic predictor, and
cross-checks the indicator's top choice against the placement with the
best predicted ensemble makespan.

Run:
    python examples/placement_search.py
"""

from repro.configs.generator import enumerate_placements
from repro.core import (
    IndicatorStage,
    MemberMeasurement,
    apply_stages,
    member_makespan,
    non_overlapped_segment,
    objective_function,
)
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.spec import EnsembleSpec, default_member

ORDER = (
    IndicatorStage.USAGE,
    IndicatorStage.ALLOCATION,
    IndicatorStage.PROVISIONING,
)


def describe(placement) -> str:
    return " | ".join(
        f"sim@n{mp.simulation_node} ana@{list(mp.analysis_nodes)}"
        for mp in placement.members
    )


def main() -> None:
    spec = EnsembleSpec(
        "search",
        (
            default_member("em1", num_analyses=2, n_steps=37),
            default_member("em2", num_analyses=2, n_steps=37),
        ),
    )

    scored = []
    for num_nodes in (2, 3):
        cluster = make_cori_like_cluster(num_nodes)
        for placement in enumerate_placements(spec, num_nodes, 32):
            stages = predict_member_stages(spec, placement, cluster=cluster)
            indicators = []
            worst_makespan = 0.0
            for member_spec, mp in zip(spec.members, placement.members):
                member_stages = stages[member_spec.name]
                measurement = MemberMeasurement(
                    member_spec.name,
                    member_stages,
                    member_spec.total_cores,
                    mp.to_placement_sets(),
                )
                indicators.append(
                    apply_stages(measurement, ORDER, num_nodes)
                )
                worst_makespan = max(
                    worst_makespan,
                    member_makespan(member_stages, member_spec.n_steps),
                )
            scored.append(
                (
                    objective_function(indicators),
                    worst_makespan,
                    num_nodes,
                    placement,
                )
            )

    print(f"evaluated {len(scored)} feasible placements\n")
    scored.sort(key=lambda s: -s[0])

    print("top 5 by F(P^{U,A,P}):")
    for f, makespan, nodes, placement in scored[:5]:
        print(
            f"  F={f:.5f}  makespan={makespan:7.1f}s  nodes={nodes}  "
            f"{describe(placement)}"
        )
    print("\nbottom 3:")
    for f, makespan, nodes, placement in scored[-3:]:
        print(
            f"  F={f:.5f}  makespan={makespan:7.1f}s  nodes={nodes}  "
            f"{describe(placement)}"
        )

    best_by_f = scored[0]
    best_by_makespan = min(scored, key=lambda s: s[1])
    print(f"\nindicator's choice:      {describe(best_by_f[3])}")
    print(f"fastest (min makespan):  {describe(best_by_makespan[3])}")
    print(
        "\nnote how the indicator's winner fully co-locates each member "
        "(the paper's C2.8 pattern) AND uses the fewest nodes — it "
        "balances speed against resources, which pure makespan ignores."
    )


if __name__ == "__main__":
    main()
