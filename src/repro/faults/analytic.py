"""Analytic robustness surrogate: expected failure cost in closed form.

Robust placement scoring (:mod:`repro.scheduler.robust`) measures the
failure-degraded objective from full DES trials — milliseconds per
candidate, which confines robustness to *re-ranking* a shortlist. This
module prices failures analytically, in microseconds, so robustness can
sit inside the planner's search loop (greedy, annealing, exhaustive)
as just another objective term.

Derivation
----------
Let a member's steady-state stage times be ``S*, W*, R_j*, A_j*`` with
period ``sigma* = max(S*+W*, R_j*+A_j*)`` (Eq. 1) and per-component
slack ``s_c = sigma* - active_c`` (the component's idle time per step,
Eq. 1's derived idle). The failure-free makespan is
``T0 = n * sigma* + drain`` where the drain is the pipeline tail
``(S*+W*) + max_j (R_j*+A_j*) - sigma*``.

A fault at component ``c`` adds *overhead* to that component's step:

====================  ============================================
kind                  per-event overhead
====================  ============================================
crash                 ``m * d_c + delta(policy)`` — the burned
                      fraction ``m`` of the crashed stage ``d_c``
                      plus the policy's expected recovery delay
straggler             ``(m - 1) * d_c``
stall                 ``m`` seconds
chunk loss/corrupt    ``m + R_j*`` at every consumer ``j``
                      (detection latency plus a full re-read)
====================  ============================================

Overhead up to the component's slack ``s_c`` is absorbed by its idle
stage; only the excess stretches the member's critical path. With
per-site per-step fault probability ``lambda`` (the model's
:class:`~repro.faults.models.HazardProfile`) and kind mix ``w_k``, the
expected makespan is, to first order in ``lambda``,

``E[T] = T0 + sum_c lambda * n * sum_k w_k * max(0, ov(c, k) - s_c)``.

Node-level models replace the per-component sum with a per-*node* sum:
one event crashes every component on the node simultaneously, the
components recover concurrently, and the member's stretch is the
**max** of its co-located components' excesses — which is how
placement enters the robustness term: co-location fuses fault domains.

Validity envelope: the first-order expansion treats faults as rare,
non-overlapping events, so accuracy degrades once a site is likely to
fault more than once per run (``lambda * n`` approaching 1) or when
degrade policies retire analyses early (the surrogate prices a drop as
zero stretch and ignores the post-drop speedup). The validation grid
in ``docs/FAULT_MODELS.md`` quantifies the error against DES trials;
``tests/faults/test_analytic.py`` enforces the documented bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.insitu import non_overlapped_segment
from repro.core.stages import MemberStages
from repro.dtl.base import DataTransportLayer
from repro.faults.models import (
    CHUNK_KINDS,
    FailureModel,
    FaultKind,
    HazardProfile,
)
from repro.faults.recovery import (
    AdaptiveRecoveryPolicy,
    CheckpointRestartPolicy,
    DropAnalysisPolicy,
    RecoveryPolicy,
    RetryBackoffPolicy,
)
from repro.platform.cluster import Cluster
from repro.runtime.analytic import predict_member_stages
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class CrashResponse:
    """Expected resolution of one crash under a recovery policy.

    ``delay`` is the expected recovery delay in virtual seconds;
    ``drop_fraction`` the probability the crash resolves by dropping
    the component (zero stretch, lost coverage) instead of re-running.

    Examples
    --------
    >>> CrashResponse(delay=0.5, drop_fraction=0.0).delay
    0.5
    """

    delay: float
    drop_fraction: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValidationError(f"delay must be >= 0, got {self.delay!r}")
        if not 0.0 <= self.drop_fraction <= 1.0:
            raise ValidationError(
                f"drop_fraction must lie in [0, 1], got "
                f"{self.drop_fraction!r}"
            )


def _mean_lost_steps(period: int, n_steps: int) -> float:
    """Exact mean of ``step mod period`` over a run of ``n_steps``."""
    if n_steps <= 0:
        return 0.0
    return sum(s % period for s in range(n_steps)) / n_steps


def expected_crash_response(
    policy: RecoveryPolicy,
    step_time: float,
    n_steps: int,
    is_analysis: bool,
    expected_crashes: float = 0.0,
) -> CrashResponse:
    """Expected per-crash recovery delay and drop probability.

    Dispatches on the built-in policy types; unknown policies are
    *probed* — ``on_crash`` is invoked once with a synthetic mid-run
    :class:`~repro.faults.injector.StageContext` — so custom policies
    participate in the surrogate without registering anything.

    Parameters
    ----------
    policy:
        The recovery policy to price.
    step_time:
        The component's nominal full-step time (prices checkpoint
        re-computation).
    n_steps:
        Steps in the run (prices the mean checkpoint distance and the
        step-0 degrade fallback).
    is_analysis:
        Whether the crashing component is an analysis (degrade drops
        analyses only).
    expected_crashes:
        Expected number of crash *actions* in the whole run — the
        adaptive policy uses it to estimate what fraction of crashes
        its budget covers before the retry→degrade switch.

    Returns
    -------
    CrashResponse
        Expected delay (seconds) and drop probability per crash.

    Examples
    --------
    >>> from repro.faults.recovery import RetryBackoffPolicy
    >>> expected_crash_response(RetryBackoffPolicy(base_delay=1.0),
    ...                         step_time=2.0, n_steps=10,
    ...                         is_analysis=False)
    CrashResponse(delay=1.0, drop_fraction=0.0)
    """
    if isinstance(policy, AdaptiveRecoveryPolicy):
        primary = expected_crash_response(
            policy.primary, step_time, n_steps, is_analysis,
            expected_crashes,
        )
        degraded = expected_crash_response(
            policy.degraded, step_time, n_steps, is_analysis,
            expected_crashes,
        )
        spend = expected_crashes * primary.delay
        if spend <= policy.budget or spend <= 0.0:
            covered = 1.0
        else:
            covered = policy.budget / spend
        return CrashResponse(
            delay=covered * primary.delay + (1 - covered) * degraded.delay,
            drop_fraction=(
                covered * primary.drop_fraction
                + (1 - covered) * degraded.drop_fraction
            ),
        )
    if isinstance(policy, RetryBackoffPolicy):
        # rare-fault regime: almost every crash is the site's first
        return CrashResponse(
            delay=min(policy.base_delay, policy.max_delay),
            drop_fraction=0.0,
        )
    if isinstance(policy, CheckpointRestartPolicy):
        lost = _mean_lost_steps(policy.period, n_steps)
        return CrashResponse(
            delay=policy.restart_latency + lost * step_time,
            drop_fraction=0.0,
        )
    if isinstance(policy, DropAnalysisPolicy):
        fallback = expected_crash_response(
            policy.fallback, step_time, n_steps, is_analysis,
            expected_crashes,
        )
        if not is_analysis or n_steps <= 1:
            return fallback
        # analyses drop except at step 0, which falls back
        step0 = 1.0 / n_steps
        return CrashResponse(
            delay=step0 * fallback.delay,
            drop_fraction=(1.0 - step0)
            + step0 * fallback.drop_fraction,
        )
    # unknown policy: probe it once at a representative mid-run site
    from repro.faults.injector import StageContext

    ctx = StageContext(
        member="surrogate",
        component="surrogate.ana" if is_analysis else "surrogate.sim",
        stage="A" if is_analysis else "S",
        step=max(n_steps // 2, 1),
        duration=step_time,
        step_time=step_time,
    )
    action = policy.on_crash(ctx, 0)
    return CrashResponse(
        delay=action.delay if action.mode != "drop" else 0.0,
        drop_fraction=1.0 if action.mode == "drop" else 0.0,
    )


@dataclass(frozen=True)
class MemberForecast:
    """Surrogate prediction for one ensemble member.

    Examples
    --------
    >>> f = MemberForecast("em1", 10.0, 12.5, 1.0, 0.5)
    >>> round(f.expected_inflation, 2)
    1.25
    """

    name: str
    baseline_makespan: float
    expected_makespan: float
    expected_faults: float
    expected_lost_work: float

    @property
    def expected_inflation(self) -> float:
        """Expected makespan inflation factor of this member."""
        if self.baseline_makespan <= 0:
            return 1.0
        return self.expected_makespan / self.baseline_makespan


@dataclass(frozen=True)
class SurrogateReport:
    """The surrogate's full prediction for one placement.

    Mirrors the DES-side :class:`~repro.monitoring.resilience
    .ResilienceMetrics` where the quantities correspond: expected
    ensemble makespan and inflation, effective efficiency, expected
    fault count, and per-member forecasts.
    """

    members: Tuple[MemberForecast, ...]
    baseline_makespan: float
    expected_makespan: float
    effective_efficiency: float
    expected_faults: float
    node_level: bool

    @property
    def expected_inflation(self) -> float:
        """Expected ensemble makespan inflation factor (>= 1)."""
        if self.baseline_makespan <= 0:
            return 1.0
        return self.expected_makespan / self.baseline_makespan

    def to_text(self) -> str:
        """Render as an aligned block (what the CLI prints)."""
        lines = [
            f"expected makespan    {self.expected_makespan:10.2f} s  "
            f"(baseline {self.baseline_makespan:.2f} s, "
            f"inflation x{self.expected_inflation:.3f})",
            f"effective efficiency {self.effective_efficiency:10.4f}",
            f"expected faults      {self.expected_faults:10.2f}  "
            f"({'node' if self.node_level else 'component'}-level domains)",
        ]
        for m in self.members:
            lines.append(
                f"  {m.name}: T0={m.baseline_makespan:.2f}s -> "
                f"E[T]={m.expected_makespan:.2f}s "
                f"(x{m.expected_inflation:.3f}, "
                f"{m.expected_faults:.2f} faults)"
            )
        return "\n".join(lines)


def _component_rows(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    stages: Dict[str, MemberStages],
) -> List[dict]:
    """Flatten (member, component) with stage times, slack and node."""
    rows: List[dict] = []
    for member, mp in zip(spec.members, placement.members):
        ms = stages[member.name]
        sigma = non_overlapped_segment(ms)
        rows.append(
            {
                "member": member.name,
                "component": member.simulation.name,
                "is_analysis": False,
                "node": mp.simulation_node,
                "crash_stage": ms.simulation.compute,  # S
                "active": ms.simulation.active,
                "slack": sigma - ms.simulation.active,
                "step_time": ms.simulation.active,
                "n_steps": member.n_steps,
                "sigma": sigma,
            }
        )
        for j, (ana, node) in enumerate(
            zip(member.analyses, mp.analysis_nodes)
        ):
            a = ms.analyses[j]
            rows.append(
                {
                    "member": member.name,
                    "component": ana.name,
                    "is_analysis": True,
                    "node": node,
                    "crash_stage": a.analyze,  # A
                    "read": a.read,
                    "active": a.active,
                    "slack": sigma - a.active,
                    "step_time": a.active,
                    "n_steps": member.n_steps,
                    "sigma": sigma,
                }
            )
    return rows


def surrogate_resilience(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    model: FailureModel,
    policy: RecoveryPolicy,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    stages: Optional[Dict[str, MemberStages]] = None,
) -> SurrogateReport:
    """Predict expected failure cost of a placement in closed form.

    Combines the analytic steady-state stage prediction
    (:func:`~repro.runtime.analytic.predict_member_stages`) with the
    model's :class:`~repro.faults.models.HazardProfile` and the
    policy's expected crash response — no DES execution. Costs
    microseconds per candidate, which is what lets the planner search
    with robustness in the loop.

    Parameters
    ----------
    spec / placement:
        The ensemble and the candidate placement to price.
    model:
        A failure model with an analytic hazard
        (:meth:`~repro.faults.models.FailureModel.hazard`); a
        :class:`~repro.faults.models.ScheduledFailureModel` raises.
    policy:
        The recovery policy whose expected delay is priced.
    cluster / dtl:
        Platform overrides, as for the analytic predictor.
    stages:
        Precomputed :func:`~repro.runtime.analytic
        .predict_member_stages` result for this (spec, placement,
        cluster, dtl); pass it when the caller already predicted the
        stages (as :func:`~repro.scheduler.objectives.score_placement`
        does) to avoid predicting twice per candidate.

    Returns
    -------
    SurrogateReport
        Expected makespan, inflation, efficiency, and fault counts.

    Raises
    ------
    ValidationError
        If the model has no analytic hazard profile.

    Examples
    --------
    A zero-rate model predicts exactly the failure-free baseline:

    >>> from repro.faults.models import NoFailureModel
    >>> from repro.faults.recovery import RetryBackoffPolicy
    >>> from repro.runtime.placement import pack_members_per_node
    >>> from repro.runtime.spec import EnsembleSpec, default_member
    >>> spec = EnsembleSpec("demo", (default_member("em1", n_steps=8),))
    >>> report = surrogate_resilience(
    ...     spec, pack_members_per_node(spec), NoFailureModel(),
    ...     RetryBackoffPolicy())
    >>> report.expected_inflation
    1.0
    """
    hazard = model.hazard()
    if stages is None:
        stages = predict_member_stages(
            spec, placement, cluster=cluster, dtl=dtl
        )
    rows = _component_rows(spec, placement, stages)

    # expected number of crash actions across the run (adaptive budget)
    expected_crashes = 0.0
    for row in rows:
        if hazard.node_level:
            crash_w = 1.0
        else:
            allowed = _allowed_kinds(row["is_analysis"])
            crash_w = hazard.weights_over(allowed).get(FaultKind.CRASH, 0.0)
        expected_crashes += hazard.site_rate * crash_w * row["n_steps"]

    # per-component expected stretch and lost work per *event*
    per_member_stretch: Dict[str, float] = {}
    per_member_faults: Dict[str, float] = {}
    per_member_lost: Dict[str, float] = {}
    analyses_of: Dict[str, List[dict]] = {}
    for row in rows:
        if row["is_analysis"]:
            analyses_of.setdefault(row["member"], []).append(row)

    def crash_cost(row: dict) -> Tuple[float, float]:
        """(expected stretch, expected lost work) of one crash."""
        magnitude = hazard.magnitudes.get(FaultKind.CRASH, 0.5)
        burn = magnitude * row["crash_stage"]
        response = expected_crash_response(
            policy,
            step_time=row["step_time"],
            n_steps=row["n_steps"],
            is_analysis=row["is_analysis"],
            expected_crashes=expected_crashes,
        )
        overhead = burn + response.delay
        stretch = (1.0 - response.drop_fraction) * max(
            0.0, overhead - row["slack"]
        )
        return stretch, burn

    if hazard.node_level:
        # one event per (node, step): every co-located component
        # crashes; concurrent recovery means the member's stretch is
        # the max over its components on that node.
        by_node: Dict[int, List[dict]] = {}
        for row in rows:
            by_node.setdefault(row["node"], []).append(row)
        for node_rows in by_node.values():
            by_member: Dict[str, List[dict]] = {}
            for row in node_rows:
                by_member.setdefault(row["member"], []).append(row)
            for member_name, comp_rows in by_member.items():
                n_steps = comp_rows[0]["n_steps"]
                events = hazard.site_rate * n_steps
                stretches, losts = zip(*(crash_cost(r) for r in comp_rows))
                per_member_stretch[member_name] = (
                    per_member_stretch.get(member_name, 0.0)
                    + events * max(stretches)
                )
                per_member_faults[member_name] = (
                    per_member_faults.get(member_name, 0.0)
                    + events * len(comp_rows)
                )
                per_member_lost[member_name] = (
                    per_member_lost.get(member_name, 0.0)
                    + events * sum(losts)
                )
    else:
        for row in rows:
            allowed = _allowed_kinds(row["is_analysis"])
            weights = hazard.weights_over(allowed)
            if not weights:
                continue
            events = hazard.site_rate * row["n_steps"]
            stretch = 0.0
            lost = 0.0
            for kind, weight in weights.items():
                magnitude = hazard.magnitudes.get(kind, 0.0)
                if kind is FaultKind.CRASH:
                    crash_stretch, crash_lost = crash_cost(row)
                    stretch += weight * crash_stretch
                    lost += weight * crash_lost
                elif kind is FaultKind.STRAGGLER:
                    extra = (magnitude - 1.0) * row["crash_stage"]
                    stretch += weight * max(0.0, extra - row["slack"])
                    lost += weight * extra
                elif kind is FaultKind.STALL:
                    stretch += weight * max(0.0, magnitude - row["slack"])
                    lost += weight * magnitude
                elif kind in CHUNK_KINDS:
                    # scheduled on the producer, paid by every consumer
                    consumer_excess = [
                        max(0.0, magnitude + a["read"] - a["slack"])
                        for a in analyses_of.get(row["member"], [])
                    ]
                    if consumer_excess:
                        stretch += weight * max(consumer_excess)
                        lost += weight * sum(
                            magnitude + a["read"]
                            for a in analyses_of[row["member"]]
                        )
            per_member_stretch[row["member"]] = (
                per_member_stretch.get(row["member"], 0.0) + events * stretch
            )
            per_member_faults[row["member"]] = (
                per_member_faults.get(row["member"], 0.0) + events
            )
            per_member_lost[row["member"]] = (
                per_member_lost.get(row["member"], 0.0) + events * lost
            )

    forecasts: List[MemberForecast] = []
    useful_work = 0.0
    n_components = 0
    for member in spec.members:
        ms = stages[member.name]
        sigma = non_overlapped_segment(ms)
        drain = (
            ms.simulation.active
            + max(a.active for a in ms.analyses)
            - sigma
        )
        baseline = member.n_steps * sigma + drain
        forecasts.append(
            MemberForecast(
                name=member.name,
                baseline_makespan=baseline,
                expected_makespan=baseline
                + per_member_stretch.get(member.name, 0.0),
                expected_faults=per_member_faults.get(member.name, 0.0),
                expected_lost_work=per_member_lost.get(member.name, 0.0),
            )
        )
        useful_work += member.n_steps * (
            ms.simulation.active + sum(a.active for a in ms.analyses)
        )
        n_components += 1 + member.num_couplings

    baseline_ens = max(f.baseline_makespan for f in forecasts)
    expected_ens = max(f.expected_makespan for f in forecasts)
    return SurrogateReport(
        members=tuple(forecasts),
        baseline_makespan=baseline_ens,
        expected_makespan=expected_ens,
        effective_efficiency=useful_work / (expected_ens * n_components),
        expected_faults=sum(f.expected_faults for f in forecasts),
        node_level=hazard.node_level,
    )


def _allowed_kinds(is_analysis: bool) -> Tuple[FaultKind, ...]:
    """Kinds a component can experience (analyses skip chunk kinds)."""
    if is_analysis:
        return tuple(k for k in FaultKind if k not in CHUNK_KINDS)
    return tuple(FaultKind)


#: builds a placement-specific failure model (node-level models need
#: the candidate placement to define their fault domains).
ModelBuilder = Callable[[EnsemblePlacement], FailureModel]


@dataclass
class RobustnessTerm:
    """A robustness objective term for the planner's search loop.

    Carries the failure regime (a model, or a builder when the model
    is placement-specific — node-level domains are), the recovery
    policy, and the penalty weight. The scheduler's
    :func:`~repro.scheduler.objectives.score_placement` subtracts
    ``weight * (E[inflation] - 1)`` from F(P), so a placement that
    looks optimal in steady state but concentrates fault domains pays
    for its fragility *during* the search, not in a post-hoc re-rank.

    Parameters
    ----------
    policy:
        Recovery policy priced by the surrogate.
    model:
        Failure model shared by every candidate (component-level
        models are placement-independent).
    model_builder:
        Alternative: a callable building a model per candidate
        placement; use for :class:`~repro.faults.models
        .NodeFailureModel`. Exactly one of ``model`` /
        ``model_builder`` must be given.
    weight:
        Penalty weight on the expected excess inflation (>= 0).

    Examples
    --------
    >>> from repro.faults.models import RandomFailureModel
    >>> from repro.faults.recovery import RetryBackoffPolicy
    >>> term = RobustnessTerm(policy=RetryBackoffPolicy(),
    ...                       model=RandomFailureModel(rate=0.05))
    >>> term.weight
    1.0
    """

    policy: RecoveryPolicy
    model: Optional[FailureModel] = None
    model_builder: Optional[ModelBuilder] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if (self.model is None) == (self.model_builder is None):
            raise ValidationError(
                "exactly one of model / model_builder must be given"
            )
        if self.weight < 0:
            raise ValidationError(
                f"weight must be >= 0, got {self.weight!r}"
            )

    def model_for(self, placement: EnsemblePlacement) -> FailureModel:
        """The failure model to price ``placement`` under."""
        if self.model_builder is not None:
            return self.model_builder(placement)
        return self.model

    def penalty(
        self,
        spec: EnsembleSpec,
        placement: EnsemblePlacement,
        cluster: Optional[Cluster] = None,
        dtl: Optional[DataTransportLayer] = None,
        stages: Optional[Dict[str, MemberStages]] = None,
    ) -> float:
        """``weight * (E[inflation] - 1)`` for one candidate placement."""
        report = surrogate_resilience(
            spec,
            placement,
            self.model_for(placement),
            self.policy,
            cluster=cluster,
            dtl=dtl,
            stages=stages,
        )
        return self.weight * (report.expected_inflation - 1.0)


def node_crash_builder(
    rate: float, seed: int = 0, crash_point: float = 0.5
) -> ModelBuilder:
    """A :class:`RobustnessTerm` builder for node-level crash domains.

    Examples
    --------
    >>> build = node_crash_builder(rate=0.02)
    >>> from repro.runtime.placement import EnsemblePlacement
    >>> from repro.runtime.placement import MemberPlacement
    >>> model = build(EnsemblePlacement(1, (MemberPlacement(0, (0,)),)))
    >>> model.rate
    0.02
    """
    from repro.faults.models import NodeFailureModel

    def build(placement: EnsemblePlacement) -> FailureModel:
        return NodeFailureModel(
            placement, rate=rate, seed=seed, crash_point=crash_point
        )

    return build
