"""The fault injector: perturbs DES stage events per a fault schedule.

The executor routes every *timed* stage (S, W, R, A) through
:meth:`FaultInjector.execute`, passing a :class:`StageContext` and an
optional *body* — a generator performing the stage's base waiting
(defaults to a single timeout of the nominal duration). The injector
then reproduces the stage with the scheduled faults applied:

- stalls delay the stage start;
- stragglers scale every body pass by the inflation factor;
- crashes burn the completed fraction, consult the recovery policy,
  pay its delay, and re-run the body (or abort via
  :class:`AnalysisDropped` when the policy degrades);
- chunk faults (scheduled on the producer) append a detection delay
  plus a full re-read to consumers' R stages.

With an empty schedule ``execute`` performs exactly one body pass at
scale 1.0 — the identical event sequence the executor would emit with
no injector at all, which is what keeps zero-failure injection
byte-identical to a baseline run (regression-tested in
``tests/faults/test_injector.py``).

Every fault is recorded in a :class:`FaultLog`, the raw material for
the resilience metrics in :mod:`repro.monitoring.resilience`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple

from repro.des.engine import Environment
from repro.faults.models import FaultKind, FaultSchedule
from repro.faults.recovery import RecoveryPolicy, RetryBackoffPolicy
from repro.util.errors import ValidationError


class AnalysisDropped(Exception):
    """Control-flow signal: a degrade policy dropped this analysis.

    Raised out of :meth:`FaultInjector.execute` and handled by the
    executor's analysis process, which releases the member's read
    barriers and retires the component. Not a :class:`ReproError` —
    it must never be swallowed by ``except ReproError`` handlers.
    """

    def __init__(self, component: str, step: int) -> None:
        super().__init__(f"{component} dropped at step {step}")
        self.component = component
        self.step = step


@dataclass(frozen=True)
class StageContext:
    """Who is executing what when the injector is consulted.

    ``duration`` is the nominal (already noise-jittered) stage time;
    ``step_time`` the component's nominal full-step time (used by
    checkpoint-restart to price re-computation); ``producer`` names the
    chunk producer for R stages so chunk faults can be looked up.
    """

    member: str
    component: str
    stage: str  # "S" | "W" | "R" | "A"
    step: int
    duration: float
    step_time: float = 0.0
    producer: Optional[str] = None


@dataclass(frozen=True)
class FaultRecord:
    """One materialized fault: what happened, when, and what it cost.

    ``detected`` is the virtual time the fault manifested (crash
    instant, stall onset, corrupt-chunk checksum failure);
    ``recovered`` the time the component resumed useful work;
    ``lost_work`` the virtual seconds of discarded or redundant work.
    """

    member: str
    component: str
    stage: str
    step: int
    kind: FaultKind
    policy: str
    detected: float
    recovered: float
    lost_work: float
    attempts: int = 1

    @property
    def recovery_time(self) -> float:
        return self.recovered - self.detected


class FaultLog:
    """Chronological record of every fault the injector materialized."""

    def __init__(self) -> None:
        self._records: List[FaultRecord] = []
        self.dropped_components: List[str] = []

    def record(self, rec: FaultRecord) -> FaultRecord:
        self._records.append(rec)
        return rec

    def mark_dropped(self, component: str) -> None:
        self.dropped_components.append(component)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[FaultRecord]:
        return list(self._records)

    @property
    def recovery_times(self) -> List[float]:
        return [r.recovery_time for r in self._records]

    @property
    def lost_work_total(self) -> float:
        return sum(r.lost_work for r in self._records)

    def of_kind(self, kind: FaultKind) -> List[FaultRecord]:
        return [r for r in self._records if r.kind is kind]

    def counts_by_kind(self) -> dict:
        counts: dict = {}
        for r in self._records:
            counts[r.kind.value] = counts.get(r.kind.value, 0) + 1
        return counts

    def summary(self) -> str:
        """Small text rendering for reports and the CLI."""
        if not self._records:
            return "fault log: no faults materialized"
        parts = [
            f"{kind}={n}" for kind, n in sorted(self.counts_by_kind().items())
        ]
        lines = [
            f"fault log: {len(self._records)} faults ({', '.join(parts)}), "
            f"{self.lost_work_total:.2f} s of work lost"
        ]
        if self.dropped_components:
            lines.append(
                f"  dropped components: {', '.join(self.dropped_components)}"
            )
        for r in self._records:
            lines.append(
                f"  t={r.detected:8.2f}  {r.kind.value:13s} "
                f"{r.component}:{r.stage}{r.step}  "
                f"recovery={r.recovery_time:.2f}s  lost={r.lost_work:.2f}s "
                f"[{r.policy}]"
            )
        return "\n".join(lines)


#: a stage body: given a time-scale factor, yield the stage's events.
StageBody = Callable[[float], Generator]


class FaultInjector:
    """Applies a :class:`FaultSchedule` to the executor's stage events."""

    def __init__(
        self,
        schedule: FaultSchedule,
        policy: Optional[RecoveryPolicy] = None,
        log: Optional[FaultLog] = None,
    ) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise ValidationError(
                f"schedule must be a FaultSchedule, got {schedule!r}"
            )
        self.schedule = schedule
        self.policy = policy or RetryBackoffPolicy()
        # one injector == one DES run: stateful policies (adaptive
        # budget tracking) reset here so instances can be reused.
        self.policy.on_run_start()
        self.log = log or FaultLog()

    def execute(
        self,
        env: Environment,
        ctx: StageContext,
        body: Optional[StageBody] = None,
    ) -> Generator:
        """Run one stage instance with scheduled faults applied.

        A generator to be ``yield from``-ed inside a DES process. With
        no faults scheduled at this site it degenerates to exactly one
        body pass — the baseline event sequence.
        """
        if body is None:
            nominal = ctx.duration

            def body(scale: float) -> Generator:
                yield env.timeout(nominal * scale)

        site = self.schedule.events_for(ctx.component, ctx.step, ctx.stage)
        chunk: Tuple = ()
        if ctx.stage == "R" and ctx.producer is not None:
            chunk = self.schedule.chunk_events_for(ctx.producer, ctx.step)
        if not site and not chunk:
            yield from body(1.0)
            return

        # 1. transient stalls delay the stage start
        scale = 1.0
        stragglers = []
        for ev in site:
            if ev.kind is FaultKind.STALL:
                t0 = env.now
                if ev.magnitude > 0:
                    yield env.timeout(ev.magnitude)
                self.log.record(
                    FaultRecord(
                        member=ctx.member,
                        component=ctx.component,
                        stage=ctx.stage,
                        step=ctx.step,
                        kind=ev.kind,
                        policy=self.policy.name,
                        detected=t0,
                        recovered=env.now,
                        lost_work=env.now - t0,
                    )
                )
            elif ev.kind is FaultKind.STRAGGLER:
                scale *= ev.magnitude
                stragglers.append(ev)

        # 2. crashes: burn the completed fraction, recover per policy
        attempt = 0
        for ev in site:
            if ev.kind is not FaultKind.CRASH:
                continue
            for _ in range(ev.repeats):
                t_start = env.now
                lost = ctx.duration * scale * ev.magnitude
                if lost > 0:
                    yield env.timeout(lost)
                detected = env.now
                action = self.policy.on_crash(ctx, attempt)
                attempt += 1
                if action.mode == "drop":
                    self.log.record(
                        FaultRecord(
                            member=ctx.member,
                            component=ctx.component,
                            stage=ctx.stage,
                            step=ctx.step,
                            kind=ev.kind,
                            policy=self.policy.name,
                            detected=detected,
                            recovered=detected,
                            lost_work=detected - t_start,
                            attempts=attempt,
                        )
                    )
                    self.log.mark_dropped(ctx.component)
                    raise AnalysisDropped(ctx.component, ctx.step)
                if action.delay > 0:
                    yield env.timeout(action.delay)
                self.log.record(
                    FaultRecord(
                        member=ctx.member,
                        component=ctx.component,
                        stage=ctx.stage,
                        step=ctx.step,
                        kind=ev.kind,
                        policy=self.policy.name,
                        detected=detected,
                        recovered=env.now,
                        lost_work=detected - t_start,
                        attempts=attempt,
                    )
                )

        # 3. the (re-)run of the stage proper
        t_body = env.now
        yield from body(scale)
        if scale > 1.0:
            elapsed = env.now - t_body
            excess = elapsed * (scale - 1.0) / scale
            for ev in stragglers:
                self.log.record(
                    FaultRecord(
                        member=ctx.member,
                        component=ctx.component,
                        stage=ctx.stage,
                        step=ctx.step,
                        kind=ev.kind,
                        policy=self.policy.name,
                        detected=t_body,
                        recovered=env.now,
                        lost_work=excess / len(stragglers),
                    )
                )

        # 4. chunk faults: detection latency + full re-read
        for ev in chunk:
            t0 = env.now
            if ev.magnitude > 0:
                yield env.timeout(ev.magnitude)
            yield from body(scale)
            self.log.record(
                FaultRecord(
                    member=ctx.member,
                    component=ctx.component,
                    stage=ctx.stage,
                    step=ctx.step,
                    kind=ev.kind,
                    policy=self.policy.name,
                    detected=t0,
                    recovered=env.now,
                    lost_work=env.now - t0,
                )
            )
