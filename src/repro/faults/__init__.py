"""Fault injection and resilience for the ensemble DES.

The paper's execution model (Eqs. 1-3) assumes an ideal, failure-free
steady state. This subpackage perturbs the discrete-event executor
beyond that model so placements can be ranked by *robust* F(P):

- :mod:`repro.faults.models` — seeded, deterministic failure models
  (component crash, straggler, transient stall, DTL chunk
  loss/corruption) expressed as schedules over
  ``(member, component, step)``;
- :mod:`repro.faults.injector` — the injection hook the executor
  routes every timed stage through; zero-failure injection reproduces
  the baseline trace byte for byte;
- :mod:`repro.faults.recovery` — recovery policies
  (retry-with-backoff, checkpoint restart, degrade-by-dropping) the
  scheduler can consume.

Resilience metrics over injected runs live in
:mod:`repro.monitoring.resilience`; robust placement scoring in
:mod:`repro.scheduler.robust`; the rate x policy sweep in
:mod:`repro.experiments.resilience`.
"""

from repro.faults.injector import (
    AnalysisDropped,
    FaultInjector,
    FaultLog,
    FaultRecord,
    StageContext,
)
from repro.faults.models import (
    CHUNK_KINDS,
    FailureModel,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    NoFailureModel,
    RandomFailureModel,
    ScheduledFailureModel,
)
from repro.faults.recovery import (
    POLICY_NAMES,
    CheckpointRestartPolicy,
    DropAnalysisPolicy,
    RecoveryAction,
    RecoveryPolicy,
    RetryBackoffPolicy,
    make_policy,
)

__all__ = [
    "AnalysisDropped",
    "CHUNK_KINDS",
    "CheckpointRestartPolicy",
    "DropAnalysisPolicy",
    "FailureModel",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLog",
    "FaultRecord",
    "FaultSchedule",
    "NoFailureModel",
    "POLICY_NAMES",
    "RandomFailureModel",
    "RecoveryAction",
    "RecoveryPolicy",
    "RetryBackoffPolicy",
    "ScheduledFailureModel",
    "StageContext",
    "make_policy",
]
