"""Fault injection and resilience for the ensemble DES.

The paper's execution model (Eqs. 1-3) assumes an ideal, failure-free
steady state. This subpackage perturbs the discrete-event executor
beyond that model so placements can be ranked by *robust* F(P):

- :mod:`repro.faults.models` — seeded, deterministic failure models
  (component crash, straggler, transient stall, DTL chunk
  loss/corruption) expressed as schedules over
  ``(member, component, step)``, plus node-level fault domains
  (:class:`NodeFailureModel`) and correlated/bursty arrival processes
  (Markov-modulated, Weibull-burst);
- :mod:`repro.faults.injector` — the injection hook the executor
  routes every timed stage through; zero-failure injection reproduces
  the baseline trace byte for byte;
- :mod:`repro.faults.recovery` — recovery policies
  (retry-with-backoff, checkpoint restart, degrade-by-dropping, and
  the budget-driven adaptive switch) the scheduler can consume;
- :mod:`repro.faults.analytic` — the closed-form robustness surrogate:
  expected makespan inflation and effective efficiency under a hazard
  profile + recovery policy, cheap enough for the planner's inner
  search loop (validated against DES trials — see
  ``docs/FAULT_MODELS.md``).

Resilience metrics over injected runs live in
:mod:`repro.monitoring.resilience`; robust placement scoring in
:mod:`repro.scheduler.robust`; the rate x policy sweep in
:mod:`repro.experiments.resilience`.
"""

from repro.faults.injector import (
    AnalysisDropped,
    FaultInjector,
    FaultLog,
    FaultRecord,
    StageContext,
)
from repro.faults.analytic import (
    RobustnessTerm,
    SurrogateReport,
    surrogate_resilience,
)
from repro.faults.models import (
    CHUNK_KINDS,
    ArrivalProcess,
    BernoulliArrivals,
    CorrelatedFailureModel,
    FailureModel,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    HazardProfile,
    MarkovModulatedArrivals,
    NodeFailureModel,
    NoFailureModel,
    RandomFailureModel,
    ScheduledFailureModel,
    WeibullBurstArrivals,
)
from repro.faults.recovery import (
    POLICY_NAMES,
    AdaptiveRecoveryPolicy,
    CheckpointRestartPolicy,
    DropAnalysisPolicy,
    RecoveryAction,
    RecoveryPolicy,
    RetryBackoffPolicy,
    make_policy,
)

# imported last: repro.faults.batched pulls in the executor, which
# imports the injector/models/recovery submodules loaded above.
from repro.faults.batched import (
    MemberTimeline,
    ReplayOutcome,
    StageTimeline,
    batched_score_placement,
    capture_timeline,
    engine_counters,
    rank_placements_batched,
    replay_schedules,
    replay_tier,
    reset_engine_counters,
    score_from_timeline,
)

__all__ = [
    "AdaptiveRecoveryPolicy",
    "AnalysisDropped",
    "ArrivalProcess",
    "BernoulliArrivals",
    "CHUNK_KINDS",
    "CheckpointRestartPolicy",
    "CorrelatedFailureModel",
    "DropAnalysisPolicy",
    "FailureModel",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLog",
    "FaultRecord",
    "FaultSchedule",
    "HazardProfile",
    "MarkovModulatedArrivals",
    "MemberTimeline",
    "NoFailureModel",
    "NodeFailureModel",
    "POLICY_NAMES",
    "RandomFailureModel",
    "RecoveryAction",
    "RecoveryPolicy",
    "ReplayOutcome",
    "RetryBackoffPolicy",
    "RobustnessTerm",
    "ScheduledFailureModel",
    "StageContext",
    "StageTimeline",
    "SurrogateReport",
    "WeibullBurstArrivals",
    "batched_score_placement",
    "capture_timeline",
    "engine_counters",
    "make_policy",
    "rank_placements_batched",
    "replay_schedules",
    "replay_tier",
    "reset_engine_counters",
    "score_from_timeline",
    "surrogate_resilience",
]
