"""Recovery policies: what execution does after a crash.

A :class:`RecoveryPolicy` is consulted by the
:class:`~repro.faults.injector.FaultInjector` each time a crash fault
fires. It returns a :class:`RecoveryAction` naming the recovery mode
and the virtual-time delay the crashed component pays before resuming:

- ``retry`` — re-run the crashed stage after an exponential-backoff
  delay (Ensemble-Toolkit-style task resubmission);
- ``restart`` — the member restarts from its last checkpoint: the
  delay covers restart latency plus re-computing the steps since the
  checkpoint boundary (checkpoint period ``W``-side, i.e. a checkpoint
  is taken every ``period`` completed writes);
- ``drop`` — degrade by dropping the analysis for the remainder of the
  run; the simulation stops waiting on it (analyses only — simulation
  crashes fall back to retry).

Policies are plain value objects the scheduler can consume: robust
placement scoring (:mod:`repro.scheduler.robust`) takes a policy
instance and evaluates F(P) under it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.util.errors import ValidationError
from repro.util.validation import require_non_negative, require_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import StageContext

#: CLI / experiment names of the built-in policies.
POLICY_NAMES: Tuple[str, ...] = ("retry", "restart", "degrade")


@dataclass(frozen=True)
class RecoveryAction:
    """The injector's marching orders after one crash."""

    mode: str  # "retry" | "restart" | "drop"
    delay: float  # virtual seconds before the component resumes

    def __post_init__(self) -> None:
        if self.mode not in ("retry", "restart", "drop"):
            raise ValidationError(f"unknown recovery mode {self.mode!r}")
        require_non_negative("delay", self.delay)


class RecoveryPolicy(abc.ABC):
    """Decides how a crashed stage resumes."""

    #: human-readable policy name (for logs, reports, CLI).
    name: str = "abstract"

    @abc.abstractmethod
    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        """React to the ``attempt``-th (0-based) crash at one site."""


class RetryBackoffPolicy(RecoveryPolicy):
    """Re-run the stage after exponential backoff.

    ``delay = min(base_delay * factor**attempt, max_delay)`` — retries
    are unbounded but the backoff is capped, so any finite fault
    schedule terminates.
    """

    name = "retry"

    def __init__(
        self,
        base_delay: float = 0.5,
        factor: float = 2.0,
        max_delay: float = 30.0,
    ) -> None:
        require_non_negative("base_delay", base_delay)
        require_non_negative("max_delay", max_delay)
        if factor < 1.0:
            raise ValidationError(f"factor must be >= 1, got {factor!r}")
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay

    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        delay = min(self.base_delay * self.factor**attempt, self.max_delay)
        return RecoveryAction("retry", delay)


class CheckpointRestartPolicy(RecoveryPolicy):
    """Restart the member from its last checkpoint.

    A checkpoint is taken every ``period`` completed in situ steps
    (write-side), so a crash at step ``s`` loses ``s % period`` steps
    of progress. The recovery delay is the restart latency plus the
    time to re-execute those lost steps at the component's nominal
    per-step rate (``ctx.step_time``); the crashed stage itself is then
    re-run. Smaller periods recover faster but a real system would pay
    more checkpoint I/O — the trade-off this policy exists to study.
    """

    name = "restart"

    def __init__(self, period: int = 5, restart_latency: float = 2.0) -> None:
        require_positive_int("period", period)
        require_non_negative("restart_latency", restart_latency)
        self.period = period
        self.restart_latency = restart_latency

    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        lost_steps = ctx.step % self.period
        delay = self.restart_latency + lost_steps * ctx.step_time
        return RecoveryAction("restart", delay)


class DropAnalysisPolicy(RecoveryPolicy):
    """Degrade: drop a crashed analysis for the remainder of the run.

    Only analyses that have completed at least one full step are
    dropped (so every component leaves a usable trace); simulation
    crashes — and analysis crashes at step 0 — are delegated to the
    ``fallback`` policy (retry-with-backoff by default). A dropped
    analysis stops gating the simulation's write barrier, trading
    analysis coverage for ensemble progress.
    """

    name = "degrade"

    def __init__(self, fallback: Optional[RecoveryPolicy] = None) -> None:
        self.fallback = fallback or RetryBackoffPolicy()

    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        if ctx.stage in ("R", "A") and ctx.step > 0:
            return RecoveryAction("drop", 0.0)
        return self.fallback.on_crash(ctx, attempt)


def make_policy(name: str) -> RecoveryPolicy:
    """Instantiate a built-in policy by its CLI name."""
    if name == "retry":
        return RetryBackoffPolicy()
    if name == "restart":
        return CheckpointRestartPolicy()
    if name == "degrade":
        return DropAnalysisPolicy()
    raise ValidationError(
        f"unknown recovery policy {name!r}; valid: {list(POLICY_NAMES)}"
    )
