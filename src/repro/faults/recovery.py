"""Recovery policies: what execution does after a crash.

A :class:`RecoveryPolicy` is consulted by the
:class:`~repro.faults.injector.FaultInjector` each time a crash fault
fires. It returns a :class:`RecoveryAction` naming the recovery mode
and the virtual-time delay the crashed component pays before resuming:

- ``retry`` — re-run the crashed stage after an exponential-backoff
  delay (Ensemble-Toolkit-style task resubmission);
- ``restart`` — the member restarts from its last checkpoint: the
  delay covers restart latency plus re-computing the steps since the
  checkpoint boundary (checkpoint period ``W``-side, i.e. a checkpoint
  is taken every ``period`` completed writes);
- ``drop`` — degrade by dropping the analysis for the remainder of the
  run; the simulation stops waiting on it (analyses only — simulation
  crashes fall back to retry).

:class:`AdaptiveRecoveryPolicy` composes these: it spends a
recovery-time *budget* on a primary policy (retry by default) and
switches to degrade once the budget is exhausted, making the degrade
path scheduler-driven rather than static.

Policies are plain value objects the scheduler can consume: robust
placement scoring (:mod:`repro.scheduler.robust`) takes a policy
instance and evaluates F(P) under it, and the analytic surrogate
(:mod:`repro.faults.analytic`) prices each policy's expected crash
delay in closed form. The full reference lives in
``docs/FAULT_MODELS.md``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.util.errors import ValidationError
from repro.util.validation import require_non_negative, require_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import StageContext

#: CLI / experiment names of the built-in policies.
POLICY_NAMES: Tuple[str, ...] = ("retry", "restart", "degrade", "adaptive")


@dataclass(frozen=True)
class RecoveryAction:
    """The injector's marching orders after one crash.

    Parameters
    ----------
    mode:
        One of ``"retry"``, ``"restart"``, ``"drop"``.
    delay:
        Virtual seconds the crashed component pays before resuming
        (must be >= 0; ignored for ``"drop"``).

    Raises
    ------
    ValidationError
        On an unknown mode or a negative delay.

    Examples
    --------
    >>> RecoveryAction("retry", 0.5).delay
    0.5
    """

    mode: str  # "retry" | "restart" | "drop"
    delay: float  # virtual seconds before the component resumes

    def __post_init__(self) -> None:
        if self.mode not in ("retry", "restart", "drop"):
            raise ValidationError(f"unknown recovery mode {self.mode!r}")
        require_non_negative("delay", self.delay)


class RecoveryPolicy(abc.ABC):
    """Decides how a crashed stage resumes."""

    #: human-readable policy name (for logs, reports, CLI).
    name: str = "abstract"

    @abc.abstractmethod
    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        """React to the ``attempt``-th (0-based) crash at one site.

        Parameters
        ----------
        ctx:
            The stage being executed when the crash fired (component,
            stage code, step, durations).
        attempt:
            How many crashes this site has already suffered in the
            current stage instance (0 for the first).

        Returns
        -------
        RecoveryAction
            The recovery mode and the virtual-time delay to pay.
        """

    def on_run_start(self) -> None:
        """Reset per-run state (called once per injector construction).

        Stateless policies need not override this; stateful ones
        (:class:`AdaptiveRecoveryPolicy`) reset their counters here so
        one policy instance can score many trials without leakage.
        """


class RetryBackoffPolicy(RecoveryPolicy):
    """Re-run the stage after exponential backoff.

    ``delay = min(base_delay * factor**attempt, max_delay)`` — retries
    are unbounded but the backoff is capped, so any finite fault
    schedule terminates.

    Parameters
    ----------
    base_delay:
        Delay of the first retry, in virtual seconds (>= 0).
    factor:
        Backoff multiplier per attempt (>= 1).
    max_delay:
        Cap on the delay, in virtual seconds (>= 0).

    Raises
    ------
    ValidationError
        On a negative delay or a factor below 1.

    Examples
    --------
    >>> policy = RetryBackoffPolicy(base_delay=1.0, factor=2.0,
    ...                             max_delay=5.0)
    >>> [policy.on_crash(None, attempt).delay for attempt in range(4)]
    [1.0, 2.0, 4.0, 5.0]
    """

    name = "retry"

    def __init__(
        self,
        base_delay: float = 0.5,
        factor: float = 2.0,
        max_delay: float = 30.0,
    ) -> None:
        require_non_negative("base_delay", base_delay)
        require_non_negative("max_delay", max_delay)
        if factor < 1.0:
            raise ValidationError(f"factor must be >= 1, got {factor!r}")
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay

    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        delay = min(self.base_delay * self.factor**attempt, self.max_delay)
        return RecoveryAction("retry", delay)


class CheckpointRestartPolicy(RecoveryPolicy):
    """Restart the member from its last checkpoint.

    A checkpoint is taken every ``period`` completed in situ steps
    (write-side), so a crash at step ``s`` loses ``s % period`` steps
    of progress. The recovery delay is the restart latency plus the
    time to re-execute those lost steps at the component's nominal
    per-step rate (``ctx.step_time``); the crashed stage itself is then
    re-run. Smaller periods recover faster but a real system would pay
    more checkpoint I/O — the trade-off this policy exists to study.

    Parameters
    ----------
    period:
        Checkpoint period in completed in situ steps (>= 1).
    restart_latency:
        Fixed restart cost in virtual seconds (>= 0).

    Raises
    ------
    ValidationError
        On a non-positive period or negative latency.

    Examples
    --------
    A crash at step 7 with period 5 loses ``7 mod 5 = 2`` steps:

    >>> from repro.faults.injector import StageContext
    >>> ctx = StageContext("em1", "em1.sim", "S", step=7,
    ...                    duration=2.0, step_time=3.0)
    >>> CheckpointRestartPolicy(period=5,
    ...                         restart_latency=2.0).on_crash(ctx, 0).delay
    8.0
    """

    name = "restart"

    def __init__(self, period: int = 5, restart_latency: float = 2.0) -> None:
        require_positive_int("period", period)
        require_non_negative("restart_latency", restart_latency)
        self.period = period
        self.restart_latency = restart_latency

    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        lost_steps = ctx.step % self.period
        delay = self.restart_latency + lost_steps * ctx.step_time
        return RecoveryAction("restart", delay)


class DropAnalysisPolicy(RecoveryPolicy):
    """Degrade: drop a crashed analysis for the remainder of the run.

    Only analyses that have completed at least one full step are
    dropped (so every component leaves a usable trace); simulation
    crashes — and analysis crashes at step 0 — are delegated to the
    ``fallback`` policy (retry-with-backoff by default). A dropped
    analysis stops gating the simulation's write barrier, trading
    analysis coverage for ensemble progress.

    Parameters
    ----------
    fallback:
        Policy consulted for crashes this policy cannot drop
        (defaults to :class:`RetryBackoffPolicy`).

    Examples
    --------
    >>> from repro.faults.injector import StageContext
    >>> ana = StageContext("em1", "em1.ana1", "A", step=3,
    ...                    duration=1.0, step_time=2.0)
    >>> DropAnalysisPolicy().on_crash(ana, 0).mode
    'drop'
    >>> sim = StageContext("em1", "em1.sim", "S", step=3,
    ...                    duration=1.0, step_time=2.0)
    >>> DropAnalysisPolicy().on_crash(sim, 0).mode
    'retry'
    """

    name = "degrade"

    def __init__(self, fallback: Optional[RecoveryPolicy] = None) -> None:
        self.fallback = fallback or RetryBackoffPolicy()

    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        if ctx.stage in ("R", "A") and ctx.step > 0:
            return RecoveryAction("drop", 0.0)
        return self.fallback.on_crash(ctx, attempt)


class AdaptiveRecoveryPolicy(RecoveryPolicy):
    """Budgeted recovery: retry while affordable, degrade afterwards.

    Tracks the cumulative recovery delay spent during the run. While
    the total stays below ``budget`` (virtual seconds), crashes are
    delegated to the ``primary`` policy (retry-with-backoff by
    default); once the budget is exhausted the policy switches to the
    ``degraded`` policy (drop-analysis by default), so the scheduler —
    not a static configuration — decides *when* the run starts trading
    analysis coverage for forward progress. This is ROADMAP's
    "switch retry→degrade when the recovery-time budget is exhausted".

    The spent counter resets at every injector construction (one per
    DES run) via :meth:`RecoveryPolicy.on_run_start`, so a single
    instance can score many robust trials without state leaking
    between them.

    Parameters
    ----------
    budget:
        Total recovery delay the run may spend before degrading, in
        virtual seconds (>= 0; 0 degrades immediately).
    primary:
        Policy used while under budget (default retry-with-backoff).
    degraded:
        Policy used once the budget is exhausted (default
        drop-analysis falling back to ``primary`` for simulations).

    Raises
    ------
    ValidationError
        On a negative budget.

    Examples
    --------
    >>> from repro.faults.injector import StageContext
    >>> policy = AdaptiveRecoveryPolicy(budget=1.0)
    >>> ana = StageContext("em1", "em1.ana1", "A", step=2,
    ...                    duration=1.0, step_time=2.0)
    >>> policy.on_crash(ana, 0).mode  # under budget: primary retries
    'retry'
    >>> policy.spent = 1.0            # budget exhausted
    >>> policy.on_crash(ana, 1).mode
    'drop'
    """

    name = "adaptive"

    def __init__(
        self,
        budget: float = 20.0,
        primary: Optional[RecoveryPolicy] = None,
        degraded: Optional[RecoveryPolicy] = None,
    ) -> None:
        require_non_negative("budget", budget)
        self.budget = budget
        self.primary = primary or RetryBackoffPolicy()
        self.degraded = degraded or DropAnalysisPolicy(fallback=self.primary)
        self.spent = 0.0

    def on_run_start(self) -> None:
        self.spent = 0.0
        self.primary.on_run_start()
        self.degraded.on_run_start()

    @property
    def exhausted(self) -> bool:
        """Whether the recovery-time budget has been used up."""
        return self.spent >= self.budget

    def on_crash(self, ctx: "StageContext", attempt: int) -> RecoveryAction:
        chosen = self.degraded if self.exhausted else self.primary
        action = chosen.on_crash(ctx, attempt)
        self.spent += action.delay
        return action


def make_policy(name: str) -> RecoveryPolicy:
    """Instantiate a built-in policy by its CLI name.

    Parameters
    ----------
    name:
        One of :data:`POLICY_NAMES` — ``"retry"``, ``"restart"``,
        ``"degrade"``, or ``"adaptive"``.

    Returns
    -------
    RecoveryPolicy
        A fresh policy instance with default parameters.

    Raises
    ------
    ValidationError
        (a ``ValueError`` subclass) naming the unknown policy and
        listing every valid name, so a typo on the CLI or in an
        experiment config fails with an actionable message.

    Examples
    --------
    >>> make_policy("adaptive").name
    'adaptive'
    >>> make_policy("pray")
    Traceback (most recent call last):
        ...
    repro.util.errors.ValidationError: unknown recovery policy 'pray'; \
valid names: 'adaptive', 'degrade', 'restart', 'retry'
    """
    factories = {
        "retry": RetryBackoffPolicy,
        "restart": CheckpointRestartPolicy,
        "degrade": DropAnalysisPolicy,
        "adaptive": AdaptiveRecoveryPolicy,
    }
    factory = factories.get(name)
    if factory is None:
        valid = ", ".join(repr(n) for n in sorted(POLICY_NAMES))
        raise ValidationError(
            f"unknown recovery policy {name!r}; valid names: {valid}"
        )
    return factory()
