"""Failure models: seeded, deterministic fault schedules.

A failure model turns an ensemble spec into a :class:`FaultSchedule`
*before* the simulation starts: every fault is expressed as a
:class:`FaultEvent` pinned to a ``(member, component, step)`` site (and
a fine-grained stage within the step). The executor's injection hooks
then consult the schedule as the DES run unfolds.

Scheduling faults ahead of time — rather than drawing during the run —
keeps fault randomness strictly separate from the executor's own
timing-noise streams: a zero-rate model yields an empty schedule and
the run is byte-identical to an uninjected baseline.

Fault kinds
-----------
``CRASH``
    The component dies partway through a stage; the partial work is
    lost and a :class:`~repro.faults.recovery.RecoveryPolicy` decides
    how execution resumes. ``magnitude`` is the fraction of the stage
    completed before the crash (in ``(0, 1]``).
``STRAGGLER``
    The stage runs slower than nominal; ``magnitude`` is the
    multiplicative inflation factor (> 1).
``STALL``
    A transient freeze (OS jitter, network brown-out) of ``magnitude``
    seconds before the stage starts.
``CHUNK_LOSS`` / ``CHUNK_CORRUPT``
    The staged chunk for ``(producer, step)`` is lost or corrupted in
    the DTL; every consumer detects the problem during its read (after
    ``magnitude`` seconds of detection latency) and must re-read.
    Scheduled on the producer's ``W`` stage, experienced at consumers'
    ``R`` stages.

Failure processes
-----------------
Fault *arrivals* are decoupled from fault *sites*: an
:class:`ArrivalProcess` produces a per-step fault probability path
(constant Bernoulli, Markov-modulated bursts, or Weibull-gap bursts),
and the models draw site faults against that path. Because the path is
shared by every site within one model, non-constant processes produce
*correlated* failures — several components fault in the same burst
window, which is what independent per-site draws can never express.

:class:`NodeFailureModel` goes one step further: the fault domain is a
*node*, so a single draw crashes every component placed on that node
at that step. Placement and failure domains interact — co-location
concentrates the blast radius — which is exactly the effect the robust
planner objective (:mod:`repro.faults.analytic`) prices in.

Every model also exposes a :class:`HazardProfile` via
:meth:`FailureModel.hazard`: the stationary per-site fault rate and
kind mix the analytic surrogate needs to predict expected makespan
inflation without running the DES. See ``docs/FAULT_MODELS.md`` for
the full reference and the surrogate derivation.
"""

from __future__ import annotations

import abc
import enum
import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.placement import EnsemblePlacement
    from repro.runtime.spec import EnsembleSpec


class FaultKind(enum.Enum):
    """The failure modes the injector understands."""

    CRASH = "crash"
    STRAGGLER = "straggler"
    STALL = "stall"
    CHUNK_LOSS = "chunk-loss"
    CHUNK_CORRUPT = "chunk-corrupt"


#: kinds that perturb the DTL data path: scheduled against the
#: producer's W stage, experienced by every consumer's R of that step.
CHUNK_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.CHUNK_LOSS,
    FaultKind.CHUNK_CORRUPT,
)

#: valid fine-grained stage codes a fault can target (§3.1 notation).
FAULT_STAGES: Tuple[str, ...] = ("S", "W", "R", "A")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault at a ``(member, component, step)`` site.

    ``magnitude`` semantics depend on ``kind`` — see the module
    docstring. ``repeats`` (crashes only) models a component that
    crashes several consecutive times at the same site, exercising the
    recovery policy's escalation behaviour.
    """

    member: str
    component: str
    step: int
    kind: FaultKind
    stage: str
    magnitude: float
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.member or not self.component:
            raise ValidationError("fault member/component must be non-empty")
        if self.step < 0:
            raise ValidationError(f"fault step must be >= 0, got {self.step}")
        if self.stage not in FAULT_STAGES:
            raise ValidationError(
                f"fault stage must be one of {FAULT_STAGES}, got {self.stage!r}"
            )
        if self.repeats < 1:
            raise ValidationError(f"repeats must be >= 1, got {self.repeats}")
        if self.kind is FaultKind.CRASH:
            if not 0.0 < self.magnitude <= 1.0:
                raise ValidationError(
                    f"crash magnitude is the completed fraction and must lie "
                    f"in (0, 1], got {self.magnitude!r}"
                )
        elif self.kind is FaultKind.STRAGGLER:
            if self.magnitude <= 1.0:
                raise ValidationError(
                    f"straggler magnitude is an inflation factor and must be "
                    f"> 1, got {self.magnitude!r}"
                )
        elif self.magnitude < 0:
            raise ValidationError(
                f"{self.kind.value} magnitude must be >= 0, got "
                f"{self.magnitude!r}"
            )

    def __repr__(self) -> str:
        return (
            f"FaultEvent({self.kind.value} @ {self.component}:"
            f"{self.stage}{self.step} x{self.magnitude:g})"
        )


class FaultSchedule:
    """An immutable set of fault events with per-site lookup.

    Component-local faults (crash/straggler/stall) are indexed by
    ``(component, step, stage)``; chunk faults by ``(producer, step)``.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(
            events,
            key=lambda e: (e.component, e.step, e.stage, e.kind.value),
        )
        self._events: Tuple[FaultEvent, ...] = tuple(ordered)
        self._by_site: Dict[Tuple[str, int, str], List[FaultEvent]] = {}
        self._chunk: Dict[Tuple[str, int], List[FaultEvent]] = {}
        for ev in self._events:
            if ev.kind in CHUNK_KINDS:
                self._chunk.setdefault((ev.component, ev.step), []).append(ev)
            else:
                key = (ev.component, ev.step, ev.stage)
                self._by_site.setdefault(key, []).append(ev)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """All events in deterministic (component, step, stage) order."""
        return self._events

    @property
    def is_empty(self) -> bool:
        return not self._events

    def __len__(self) -> int:
        return len(self._events)

    def events_for(
        self, component: str, step: int, stage: str
    ) -> Tuple[FaultEvent, ...]:
        """Component-local faults scheduled at one stage instance."""
        return tuple(self._by_site.get((component, step, stage), ()))

    def chunk_events_for(
        self, producer: str, step: int
    ) -> Tuple[FaultEvent, ...]:
        """Chunk faults affecting reads of ``(producer, step)``."""
        return tuple(self._chunk.get((producer, step), ()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({len(self._events)} events)"


class ArrivalProcess(abc.ABC):
    """A per-step fault-probability path shared by every site.

    Failure models draw one probability *path* per run — an array of
    per-step fault probabilities — and then test each site against the
    step's probability. A constant path reduces to independent
    Bernoulli draws; a time-varying path correlates faults across
    components, because every site sees the same elevated probability
    during a burst window.
    """

    @abc.abstractmethod
    def step_rates(
        self, n_steps: int, gen: "np.random.Generator"
    ) -> "np.ndarray":
        """Per-step fault probabilities for a run of ``n_steps`` steps.

        Parameters
        ----------
        n_steps:
            Number of in situ steps in the run.
        gen:
            The model's seeded generator; all stochastic structure of
            the path (burst onsets, state flips) must come from here so
            a fixed seed reproduces the path exactly.

        Returns
        -------
        numpy.ndarray
            ``n_steps`` probabilities, each in ``[0, 1]``.
        """

    @property
    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Stationary (long-run average) per-step fault probability.

        This is the rate the analytic surrogate uses, so it must be the
        exact expectation of :meth:`step_rates` entries, not an
        empirical average.
        """


class BernoulliArrivals(ArrivalProcess):
    """Constant-rate arrivals: every step faults with the same ``rate``.

    Parameters
    ----------
    rate:
        Per-step fault probability, in ``[0, 1]``.

    Examples
    --------
    >>> BernoulliArrivals(0.05).mean_rate
    0.05
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(f"rate must lie in [0, 1], got {rate!r}")
        self.rate = rate

    def step_rates(
        self, n_steps: int, gen: "np.random.Generator"
    ) -> "np.ndarray":
        return np.full(n_steps, self.rate)

    @property
    def mean_rate(self) -> float:
        return self.rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BernoulliArrivals(rate={self.rate:g})"


class MarkovModulatedArrivals(ArrivalProcess):
    """Gilbert-Elliott bursts: a two-state chain modulates the rate.

    The chain starts in the *quiet* state; each step it enters the
    *burst* state with probability ``p_enter`` and leaves it with
    probability ``p_exit``. Sites fault with ``quiet_rate`` outside
    bursts and ``burst_rate`` inside them, so bursts hit many
    components in the same few steps.

    Parameters
    ----------
    quiet_rate / burst_rate:
        Per-step fault probabilities in the two states (both in
        ``[0, 1]``; ``burst_rate`` should exceed ``quiet_rate`` for
        the name to mean anything, but this is not enforced).
    p_enter / p_exit:
        Per-step state-transition probabilities, in ``(0, 1]``.

    Examples
    --------
    The stationary burst occupancy is ``p_enter / (p_enter + p_exit)``:

    >>> p = MarkovModulatedArrivals(
    ...     quiet_rate=0.01, burst_rate=0.5, p_enter=0.1, p_exit=0.5)
    >>> round(p.mean_rate, 4)
    0.0917
    """

    def __init__(
        self,
        quiet_rate: float,
        burst_rate: float,
        p_enter: float,
        p_exit: float,
    ) -> None:
        for label, value in (
            ("quiet_rate", quiet_rate),
            ("burst_rate", burst_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValidationError(
                    f"{label} must lie in [0, 1], got {value!r}"
                )
        for label, value in (("p_enter", p_enter), ("p_exit", p_exit)):
            if not 0.0 < value <= 1.0:
                raise ValidationError(
                    f"{label} must lie in (0, 1], got {value!r}"
                )
        self.quiet_rate = quiet_rate
        self.burst_rate = burst_rate
        self.p_enter = p_enter
        self.p_exit = p_exit

    def step_rates(
        self, n_steps: int, gen: "np.random.Generator"
    ) -> "np.ndarray":
        rates = np.empty(n_steps)
        bursting = False
        for step in range(n_steps):
            flip = gen.uniform()
            if bursting:
                if flip < self.p_exit:
                    bursting = False
            else:
                if flip < self.p_enter:
                    bursting = True
            rates[step] = self.burst_rate if bursting else self.quiet_rate
        return rates

    @property
    def mean_rate(self) -> float:
        occupancy = self.p_enter / (self.p_enter + self.p_exit)
        return (
            occupancy * self.burst_rate + (1.0 - occupancy) * self.quiet_rate
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MarkovModulatedArrivals(quiet={self.quiet_rate:g}, "
            f"burst={self.burst_rate:g}, p_enter={self.p_enter:g}, "
            f"p_exit={self.p_exit:g})"
        )


class WeibullBurstArrivals(ArrivalProcess):
    """Weibull-gap bursts: heavy-tailed quiet periods between bursts.

    Inter-burst gaps (in steps) are drawn from a Weibull distribution
    with the given ``shape``, scaled so the expected gap is
    ``mean_gap``; each burst elevates one step's fault probability to
    ``burst_rate`` (steps outside bursts use ``quiet_rate``). A shape
    below 1 yields heavy-tailed gaps — long quiet stretches punctuated
    by clustered bursts, the empirical signature of correlated
    node-level failures in HPC failure traces.

    Parameters
    ----------
    mean_gap:
        Expected number of steps between bursts (>= 1).
    burst_rate / quiet_rate:
        Per-step fault probabilities inside / outside a burst step.
    shape:
        Weibull shape parameter ``k`` (> 0); ``k = 1`` is exponential.

    Examples
    --------
    >>> p = WeibullBurstArrivals(mean_gap=10.0, burst_rate=0.6)
    >>> round(p.mean_rate, 2)
    0.06
    """

    def __init__(
        self,
        mean_gap: float,
        burst_rate: float,
        quiet_rate: float = 0.0,
        shape: float = 0.7,
    ) -> None:
        if mean_gap < 1.0:
            raise ValidationError(
                f"mean_gap must be >= 1 step, got {mean_gap!r}"
            )
        if shape <= 0.0:
            raise ValidationError(f"shape must be > 0, got {shape!r}")
        for label, value in (
            ("burst_rate", burst_rate),
            ("quiet_rate", quiet_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValidationError(
                    f"{label} must lie in [0, 1], got {value!r}"
                )
        self.mean_gap = mean_gap
        self.burst_rate = burst_rate
        self.quiet_rate = quiet_rate
        self.shape = shape
        # scale lambda so E[gap] = lambda * Gamma(1 + 1/k) = mean_gap
        self._scale = mean_gap / math.gamma(1.0 + 1.0 / shape)

    def step_rates(
        self, n_steps: int, gen: "np.random.Generator"
    ) -> "np.ndarray":
        rates = np.full(n_steps, self.quiet_rate)
        step = 0
        while step < n_steps:
            gap = max(1.0, self._scale * gen.weibull(self.shape))
            step += int(round(gap))
            if step < n_steps:
                rates[step] = self.burst_rate
        return rates

    @property
    def mean_rate(self) -> float:
        burst_fraction = 1.0 / self.mean_gap
        return (
            burst_fraction * self.burst_rate
            + (1.0 - burst_fraction) * self.quiet_rate
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeibullBurstArrivals(mean_gap={self.mean_gap:g}, "
            f"burst={self.burst_rate:g}, quiet={self.quiet_rate:g}, "
            f"shape={self.shape:g})"
        )


@dataclass(frozen=True)
class HazardProfile:
    """Stationary fault statistics of a model, for the surrogate.

    The analytic surrogate (:mod:`repro.faults.analytic`) needs only
    four facts about a failure model: how often a site faults per step
    (``site_rate``), the mix of fault kinds (``kind_weights``,
    normalized), each kind's magnitude, and whether the fault domain is
    a whole node (``node_level`` — one event crashes every co-located
    component) rather than a single component.

    Examples
    --------
    >>> profile = RandomFailureModel(rate=0.1).hazard()
    >>> profile.site_rate
    0.1
    >>> profile.kind_weights[FaultKind.CRASH]
    1.0
    """

    site_rate: float
    kind_weights: Mapping[FaultKind, float]
    magnitudes: Mapping[FaultKind, float]
    node_level: bool = False

    def __post_init__(self) -> None:
        if self.site_rate < 0:
            raise ValidationError(
                f"site_rate must be >= 0, got {self.site_rate!r}"
            )
        total = sum(self.kind_weights.values())
        if self.kind_weights and abs(total - 1.0) > 1e-9:
            raise ValidationError(
                f"kind_weights must sum to 1, got {total!r}"
            )

    def weights_over(
        self, allowed: Sequence[FaultKind]
    ) -> Dict[FaultKind, float]:
        """Kind weights renormalized over the ``allowed`` subset.

        Components that cannot experience some kinds (analyses never
        see chunk faults) fault at the same ``site_rate`` but with the
        mix renormalized over their admissible kinds — mirroring how
        :class:`RandomFailureModel` redraws kinds per site.
        """
        kept = {
            k: w for k, w in self.kind_weights.items() if k in tuple(allowed)
        }
        total = sum(kept.values())
        if total <= 0:
            return {}
        return {k: w / total for k, w in kept.items()}


class FailureModel(abc.ABC):
    """Maps an ensemble spec to a deterministic fault schedule."""

    @abc.abstractmethod
    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        """Produce the fault schedule for one execution of ``spec``."""

    def hazard(self) -> HazardProfile:
        """Stationary hazard statistics for the analytic surrogate.

        Raises
        ------
        ValidationError
            If the model has no closed-form hazard (e.g. a hand-written
            :class:`ScheduledFailureModel` scenario).
        """
        raise ValidationError(
            f"{type(self).__name__} has no analytic hazard profile; "
            "the surrogate supports rate-based models only"
        )


class NoFailureModel(FailureModel):
    """The ideal, failure-free model: an always-empty schedule."""

    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        return FaultSchedule(())

    def hazard(self) -> HazardProfile:
        return HazardProfile(
            site_rate=0.0,
            kind_weights={FaultKind.CRASH: 1.0},
            magnitudes={FaultKind.CRASH: 0.5},
        )


class RandomFailureModel(FailureModel):
    """Seeded per-site Bernoulli fault process.

    Every ``(component, step)`` site independently faults with
    probability ``rate``; the fault kind is drawn uniformly from
    ``kinds`` (chunk kinds only apply to simulation components — they
    are skipped for analyses). Sites are enumerated in spec order, so a
    given ``(rate, kinds, seed)`` triple always produces the same
    schedule regardless of how the executor consumes it.

    A rate of exactly 0 produces an empty schedule; injection with an
    empty schedule is byte-identical to no injection at all.

    Parameters
    ----------
    rate:
        Per-site per-step fault probability, in ``[0, 1]``.
    kinds:
        Fault kinds drawn uniformly per faulting site (non-empty).
    seed:
        Seed of the model's private ``RandomSource`` stream.
    crash_point / straggler_factor / stall_seconds / detection_seconds:
        Magnitudes assigned per kind — completed fraction for crashes,
        inflation factor for stragglers, delay seconds for stalls, and
        detection latency for chunk faults.

    Raises
    ------
    ValidationError
        If ``rate`` is outside ``[0, 1]`` or ``kinds`` is empty or
        contains a non-:class:`FaultKind`.

    Examples
    --------
    A fixed seed reproduces the schedule exactly:

    >>> from repro.runtime.spec import EnsembleSpec, default_member
    >>> spec = EnsembleSpec("demo", (default_member("em1", n_steps=6),))
    >>> model = RandomFailureModel(rate=0.5, seed=7)
    >>> len(model.build_schedule(spec)) == len(model.build_schedule(spec))
    True
    >>> RandomFailureModel(rate=0.0).build_schedule(spec).is_empty
    True
    """

    def __init__(
        self,
        rate: float,
        kinds: Sequence[FaultKind] = (FaultKind.CRASH,),
        seed: int = 0,
        crash_point: float = 0.5,
        straggler_factor: float = 3.0,
        stall_seconds: float = 5.0,
        detection_seconds: float = 1.0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(f"rate must lie in [0, 1], got {rate!r}")
        if not kinds:
            raise ValidationError("kinds must name at least one FaultKind")
        for kind in kinds:
            if not isinstance(kind, FaultKind):
                raise ValidationError(f"not a FaultKind: {kind!r}")
        self.rate = rate
        self.kinds = tuple(kinds)
        self.seed = seed
        self.crash_point = crash_point
        self.straggler_factor = straggler_factor
        self.stall_seconds = stall_seconds
        self.detection_seconds = detection_seconds

    def _magnitude(self, kind: FaultKind) -> float:
        if kind is FaultKind.CRASH:
            return self.crash_point
        if kind is FaultKind.STRAGGLER:
            return self.straggler_factor
        if kind is FaultKind.STALL:
            return self.stall_seconds
        return self.detection_seconds

    def _step_rates(
        self, n_steps: int, gen: "np.random.Generator"
    ) -> "np.ndarray":
        """Per-step fault probabilities (constant for the base model)."""
        return np.full(n_steps, self.rate)

    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        if self.rate == 0.0:
            return FaultSchedule(())
        gen = RandomSource(self.seed, name="faults").generator
        max_steps = max(m.n_steps for m in spec.members)
        rates = self._step_rates(max_steps, gen)
        events: List[FaultEvent] = []
        for member in spec.members:
            sites = [(member.simulation.name, True)]
            sites += [(ana.name, False) for ana in member.analyses]
            for component, is_sim in sites:
                allowed = [
                    k for k in self.kinds if is_sim or k not in CHUNK_KINDS
                ]
                if not allowed:
                    continue
                for step in range(member.n_steps):
                    if gen.uniform() >= rates[step]:
                        continue
                    kind = allowed[int(gen.integers(len(allowed)))]
                    if kind in CHUNK_KINDS:
                        stage = "W"
                    else:
                        stage = "S" if is_sim else "A"
                    events.append(
                        FaultEvent(
                            member=member.name,
                            component=component,
                            step=step,
                            kind=kind,
                            stage=stage,
                            magnitude=self._magnitude(kind),
                        )
                    )
        return FaultSchedule(events)

    def hazard(self) -> HazardProfile:
        """Uniform kind mix at the model's constant per-site rate."""
        weight = 1.0 / len(self.kinds)
        return HazardProfile(
            site_rate=self.rate,
            kind_weights={k: weight for k in self.kinds},
            magnitudes={k: self._magnitude(k) for k in self.kinds},
        )


class CorrelatedFailureModel(RandomFailureModel):
    """Component-level faults with a time-correlated arrival process.

    Identical to :class:`RandomFailureModel` except the per-step fault
    probability follows an :class:`ArrivalProcess` path instead of a
    constant: one path is drawn per run and shared by *every* site, so
    burst windows hit several components in the same few steps. The
    site draws themselves remain independent given the path.

    Parameters
    ----------
    process:
        Arrival process generating the shared per-step probability
        path (e.g. :class:`MarkovModulatedArrivals`,
        :class:`WeibullBurstArrivals`).
    kinds / seed / crash_point / straggler_factor / stall_seconds / \
detection_seconds:
        As for :class:`RandomFailureModel`.

    Raises
    ------
    ValidationError
        If ``process`` is not an :class:`ArrivalProcess`, or any base
        parameter fails :class:`RandomFailureModel` validation.

    Examples
    --------
    A fixed seed reproduces both the burst path and the site draws:

    >>> from repro.runtime.spec import EnsembleSpec, default_member
    >>> spec = EnsembleSpec("demo", (default_member("em1", n_steps=8),))
    >>> bursts = MarkovModulatedArrivals(0.0, 1.0, p_enter=0.3, p_exit=0.5)
    >>> model = CorrelatedFailureModel(bursts, seed=3)
    >>> model.build_schedule(spec).events == \
model.build_schedule(spec).events
    True
    """

    def __init__(
        self,
        process: ArrivalProcess,
        kinds: Sequence[FaultKind] = (FaultKind.CRASH,),
        seed: int = 0,
        crash_point: float = 0.5,
        straggler_factor: float = 3.0,
        stall_seconds: float = 5.0,
        detection_seconds: float = 1.0,
    ) -> None:
        if not isinstance(process, ArrivalProcess):
            raise ValidationError(
                f"process must be an ArrivalProcess, got {process!r}"
            )
        super().__init__(
            rate=process.mean_rate,
            kinds=kinds,
            seed=seed,
            crash_point=crash_point,
            straggler_factor=straggler_factor,
            stall_seconds=stall_seconds,
            detection_seconds=detection_seconds,
        )
        self.process = process

    def _step_rates(
        self, n_steps: int, gen: "np.random.Generator"
    ) -> "np.ndarray":
        return self.process.step_rates(n_steps, gen)


class NodeFailureModel(FailureModel):
    """Node-level crashes: one draw kills every component on the node.

    The fault domain is a *node* of the placement, not a component:
    each ``(node, step)`` pair faults with the per-step probability
    (constant ``rate``, or an :class:`ArrivalProcess` path shared by
    all nodes — a burst can then take down several nodes at once), and
    a faulting node emits one simultaneous ``CRASH`` event for every
    component placed on it at that step. Placement therefore interacts
    with the fault model: co-locating a member concentrates its blast
    radius on one node, while spreading it exposes the member to more
    independent fault domains.

    Parameters
    ----------
    placement:
        The component-to-node placement defining the fault domains.
        Must match the spec passed to :meth:`build_schedule` (same
        member count and coupling shape).
    rate:
        Per-node per-step crash probability, in ``[0, 1]``. Ignored
        when ``process`` is given.
    seed:
        Seed of the model's private ``RandomSource`` stream.
    crash_point:
        Completed fraction burned by each component crash, in
        ``(0, 1]``.
    process:
        Optional arrival process; its path is shared by every node.

    Raises
    ------
    ValidationError
        If ``rate`` is outside ``[0, 1]``, or the placement disagrees
        with the spec at :meth:`build_schedule` time.

    Examples
    --------
    At rate 1 every node faults every step, so co-located components
    crash *together* — the schedule carries one event per component
    per step:

    >>> from repro.runtime.spec import EnsembleSpec, default_member
    >>> from repro.runtime.placement import pack_members_per_node
    >>> spec = EnsembleSpec("demo", (default_member("em1", n_steps=4),))
    >>> model = NodeFailureModel(
    ...     pack_members_per_node(spec), rate=1.0, seed=1)
    >>> events = model.build_schedule(spec).events
    >>> sorted({e.component for e in events})
    ['em1.ana1', 'em1.sim']
    >>> len(events)
    8
    """

    def __init__(
        self,
        placement: "EnsemblePlacement",
        rate: float = 0.0,
        seed: int = 0,
        crash_point: float = 0.5,
        process: Optional[ArrivalProcess] = None,
    ) -> None:
        if process is None:
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(
                    f"rate must lie in [0, 1], got {rate!r}"
                )
            process = BernoulliArrivals(rate)
        elif not isinstance(process, ArrivalProcess):
            raise ValidationError(
                f"process must be an ArrivalProcess, got {process!r}"
            )
        if not 0.0 < crash_point <= 1.0:
            raise ValidationError(
                f"crash_point must lie in (0, 1], got {crash_point!r}"
            )
        self.placement = placement
        self.process = process
        self.seed = seed
        self.crash_point = crash_point

    @property
    def rate(self) -> float:
        """Stationary per-node per-step crash probability."""
        return self.process.mean_rate

    def _components_by_node(
        self, spec: "EnsembleSpec"
    ) -> Dict[int, List[Tuple[str, str, str, int]]]:
        """``node -> [(member, component, stage, n_steps), ...]``."""
        if len(self.placement.members) != spec.num_members:
            raise ValidationError(
                f"placement has {len(self.placement.members)} members, "
                f"spec has {spec.num_members}"
            )
        by_node: Dict[int, List[Tuple[str, str, str, int]]] = {}
        for member, mp in zip(spec.members, self.placement.members):
            if mp.num_couplings != member.num_couplings:
                raise ValidationError(
                    f"member {member.name!r}: placement has "
                    f"{mp.num_couplings} analyses, spec has "
                    f"{member.num_couplings}"
                )
            by_node.setdefault(mp.simulation_node, []).append(
                (member.name, member.simulation.name, "S", member.n_steps)
            )
            for ana, node in zip(member.analyses, mp.analysis_nodes):
                by_node.setdefault(node, []).append(
                    (member.name, ana.name, "A", member.n_steps)
                )
        return by_node

    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        by_node = self._components_by_node(spec)
        if self.process.mean_rate == 0.0:
            return FaultSchedule(())
        gen = RandomSource(self.seed, name="node-faults").generator
        max_steps = max(m.n_steps for m in spec.members)
        rates = self.process.step_rates(max_steps, gen)
        events: List[FaultEvent] = []
        for node in sorted(by_node):
            for step in range(max_steps):
                if gen.uniform() >= rates[step]:
                    continue
                for member, component, stage, n_steps in by_node[node]:
                    if step >= n_steps:
                        continue
                    events.append(
                        FaultEvent(
                            member=member,
                            component=component,
                            step=step,
                            kind=FaultKind.CRASH,
                            stage=stage,
                            magnitude=self.crash_point,
                        )
                    )
        return FaultSchedule(events)

    def hazard(self) -> HazardProfile:
        """Node-level crash hazard at the process's stationary rate."""
        return HazardProfile(
            site_rate=self.process.mean_rate,
            kind_weights={FaultKind.CRASH: 1.0},
            magnitudes={FaultKind.CRASH: self.crash_point},
            node_level=True,
        )


class ScheduledFailureModel(FailureModel):
    """An explicit, hand-written fault schedule (for tests and replay)."""

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self._schedule = FaultSchedule(events)

    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        known = set()
        for member in spec.members:
            known.add(member.simulation.name)
            known.update(a.name for a in member.analyses)
        unknown = sorted(
            {e.component for e in self._schedule.events} - known
        )
        if unknown:
            raise ValidationError(
                f"fault schedule names unknown components {unknown}; "
                f"ensemble has {sorted(known)}"
            )
        return self._schedule
