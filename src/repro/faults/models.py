"""Failure models: seeded, deterministic fault schedules.

A failure model turns an ensemble spec into a :class:`FaultSchedule`
*before* the simulation starts: every fault is expressed as a
:class:`FaultEvent` pinned to a ``(member, component, step)`` site (and
a fine-grained stage within the step). The executor's injection hooks
then consult the schedule as the DES run unfolds.

Scheduling faults ahead of time — rather than drawing during the run —
keeps fault randomness strictly separate from the executor's own
timing-noise streams: a zero-rate model yields an empty schedule and
the run is byte-identical to an uninjected baseline.

Fault kinds
-----------
``CRASH``
    The component dies partway through a stage; the partial work is
    lost and a :class:`~repro.faults.recovery.RecoveryPolicy` decides
    how execution resumes. ``magnitude`` is the fraction of the stage
    completed before the crash (in ``(0, 1]``).
``STRAGGLER``
    The stage runs slower than nominal; ``magnitude`` is the
    multiplicative inflation factor (> 1).
``STALL``
    A transient freeze (OS jitter, network brown-out) of ``magnitude``
    seconds before the stage starts.
``CHUNK_LOSS`` / ``CHUNK_CORRUPT``
    The staged chunk for ``(producer, step)`` is lost or corrupted in
    the DTL; every consumer detects the problem during its read (after
    ``magnitude`` seconds of detection latency) and must re-read.
    Scheduled on the producer's ``W`` stage, experienced at consumers'
    ``R`` stages.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from repro.util.errors import ValidationError
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.spec import EnsembleSpec


class FaultKind(enum.Enum):
    """The failure modes the injector understands."""

    CRASH = "crash"
    STRAGGLER = "straggler"
    STALL = "stall"
    CHUNK_LOSS = "chunk-loss"
    CHUNK_CORRUPT = "chunk-corrupt"


#: kinds that perturb the DTL data path: scheduled against the
#: producer's W stage, experienced by every consumer's R of that step.
CHUNK_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.CHUNK_LOSS,
    FaultKind.CHUNK_CORRUPT,
)

#: valid fine-grained stage codes a fault can target (§3.1 notation).
FAULT_STAGES: Tuple[str, ...] = ("S", "W", "R", "A")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault at a ``(member, component, step)`` site.

    ``magnitude`` semantics depend on ``kind`` — see the module
    docstring. ``repeats`` (crashes only) models a component that
    crashes several consecutive times at the same site, exercising the
    recovery policy's escalation behaviour.
    """

    member: str
    component: str
    step: int
    kind: FaultKind
    stage: str
    magnitude: float
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.member or not self.component:
            raise ValidationError("fault member/component must be non-empty")
        if self.step < 0:
            raise ValidationError(f"fault step must be >= 0, got {self.step}")
        if self.stage not in FAULT_STAGES:
            raise ValidationError(
                f"fault stage must be one of {FAULT_STAGES}, got {self.stage!r}"
            )
        if self.repeats < 1:
            raise ValidationError(f"repeats must be >= 1, got {self.repeats}")
        if self.kind is FaultKind.CRASH:
            if not 0.0 < self.magnitude <= 1.0:
                raise ValidationError(
                    f"crash magnitude is the completed fraction and must lie "
                    f"in (0, 1], got {self.magnitude!r}"
                )
        elif self.kind is FaultKind.STRAGGLER:
            if self.magnitude <= 1.0:
                raise ValidationError(
                    f"straggler magnitude is an inflation factor and must be "
                    f"> 1, got {self.magnitude!r}"
                )
        elif self.magnitude < 0:
            raise ValidationError(
                f"{self.kind.value} magnitude must be >= 0, got "
                f"{self.magnitude!r}"
            )

    def __repr__(self) -> str:
        return (
            f"FaultEvent({self.kind.value} @ {self.component}:"
            f"{self.stage}{self.step} x{self.magnitude:g})"
        )


class FaultSchedule:
    """An immutable set of fault events with per-site lookup.

    Component-local faults (crash/straggler/stall) are indexed by
    ``(component, step, stage)``; chunk faults by ``(producer, step)``.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(
            events,
            key=lambda e: (e.component, e.step, e.stage, e.kind.value),
        )
        self._events: Tuple[FaultEvent, ...] = tuple(ordered)
        self._by_site: Dict[Tuple[str, int, str], List[FaultEvent]] = {}
        self._chunk: Dict[Tuple[str, int], List[FaultEvent]] = {}
        for ev in self._events:
            if ev.kind in CHUNK_KINDS:
                self._chunk.setdefault((ev.component, ev.step), []).append(ev)
            else:
                key = (ev.component, ev.step, ev.stage)
                self._by_site.setdefault(key, []).append(ev)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """All events in deterministic (component, step, stage) order."""
        return self._events

    @property
    def is_empty(self) -> bool:
        return not self._events

    def __len__(self) -> int:
        return len(self._events)

    def events_for(
        self, component: str, step: int, stage: str
    ) -> Tuple[FaultEvent, ...]:
        """Component-local faults scheduled at one stage instance."""
        return tuple(self._by_site.get((component, step, stage), ()))

    def chunk_events_for(
        self, producer: str, step: int
    ) -> Tuple[FaultEvent, ...]:
        """Chunk faults affecting reads of ``(producer, step)``."""
        return tuple(self._chunk.get((producer, step), ()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({len(self._events)} events)"


class FailureModel(abc.ABC):
    """Maps an ensemble spec to a deterministic fault schedule."""

    @abc.abstractmethod
    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        """Produce the fault schedule for one execution of ``spec``."""


class NoFailureModel(FailureModel):
    """The ideal, failure-free model: an always-empty schedule."""

    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        return FaultSchedule(())


class RandomFailureModel(FailureModel):
    """Seeded per-site Bernoulli fault process.

    Every ``(component, step)`` site independently faults with
    probability ``rate``; the fault kind is drawn uniformly from
    ``kinds`` (chunk kinds only apply to simulation components — they
    are skipped for analyses). Sites are enumerated in spec order, so a
    given ``(rate, kinds, seed)`` triple always produces the same
    schedule regardless of how the executor consumes it.

    A rate of exactly 0 produces an empty schedule; injection with an
    empty schedule is byte-identical to no injection at all.
    """

    def __init__(
        self,
        rate: float,
        kinds: Sequence[FaultKind] = (FaultKind.CRASH,),
        seed: int = 0,
        crash_point: float = 0.5,
        straggler_factor: float = 3.0,
        stall_seconds: float = 5.0,
        detection_seconds: float = 1.0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(f"rate must lie in [0, 1], got {rate!r}")
        if not kinds:
            raise ValidationError("kinds must name at least one FaultKind")
        for kind in kinds:
            if not isinstance(kind, FaultKind):
                raise ValidationError(f"not a FaultKind: {kind!r}")
        self.rate = rate
        self.kinds = tuple(kinds)
        self.seed = seed
        self.crash_point = crash_point
        self.straggler_factor = straggler_factor
        self.stall_seconds = stall_seconds
        self.detection_seconds = detection_seconds

    def _magnitude(self, kind: FaultKind) -> float:
        if kind is FaultKind.CRASH:
            return self.crash_point
        if kind is FaultKind.STRAGGLER:
            return self.straggler_factor
        if kind is FaultKind.STALL:
            return self.stall_seconds
        return self.detection_seconds

    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        if self.rate == 0.0:
            return FaultSchedule(())
        gen = RandomSource(self.seed, name="faults").generator
        events: List[FaultEvent] = []
        for member in spec.members:
            sites = [(member.simulation.name, True)]
            sites += [(ana.name, False) for ana in member.analyses]
            for component, is_sim in sites:
                allowed = [
                    k for k in self.kinds if is_sim or k not in CHUNK_KINDS
                ]
                if not allowed:
                    continue
                for step in range(member.n_steps):
                    if gen.uniform() >= self.rate:
                        continue
                    kind = allowed[int(gen.integers(len(allowed)))]
                    if kind in CHUNK_KINDS:
                        stage = "W"
                    else:
                        stage = "S" if is_sim else "A"
                    events.append(
                        FaultEvent(
                            member=member.name,
                            component=component,
                            step=step,
                            kind=kind,
                            stage=stage,
                            magnitude=self._magnitude(kind),
                        )
                    )
        return FaultSchedule(events)


class ScheduledFailureModel(FailureModel):
    """An explicit, hand-written fault schedule (for tests and replay)."""

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self._schedule = FaultSchedule(events)

    def build_schedule(self, spec: "EnsembleSpec") -> FaultSchedule:
        known = set()
        for member in spec.members:
            known.add(member.simulation.name)
            known.update(a.name for a in member.analyses)
        unknown = sorted(
            {e.component for e in self._schedule.events} - known
        )
        if unknown:
            raise ValidationError(
                f"fault schedule names unknown components {unknown}; "
                f"ensemble has {sorted(known)}"
            )
        return self._schedule
