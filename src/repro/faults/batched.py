"""Batched fault replication: delta-replay robust DES scoring.

Robust ranking (:mod:`repro.scheduler.robust`) scores each candidate
placement by running ``trials`` full injected DES executions plus one
failure-free reference — re-simulating the whole ensemble from scratch
for every fault replica. This module replaces the per-replica
re-simulation with *delta replay*:

1. :func:`capture_timeline` runs the fault-free DES **once** per
   candidate with a :class:`~repro.runtime.executor.TimelineRecorder`
   attached at the ``_stage`` choke point, capturing every stage
   instance's nominal (noise-jittered) duration as a compact numeline
   — per-member, per-stage numpy arrays;
2. :func:`replay_schedules` scores each fault replica by replaying its
   :class:`~repro.faults.models.FaultSchedule` against that baseline:
   the coupling recurrence (S -> gate on all reads -> W; R gated on W;
   A after R) is advanced with vectorized float64 arithmetic across
   the replica axis, and the sparse set of faulted stage instances is
   patched with a scalar replay of the injector's exact operation
   sequence (stall delays, straggler scaling, crash burn + recovery
   delay in schedule order).

Because the DES clock only ever *adds* timeout durations to the
current time and *maxes* event times, replaying the same additions at
the same absolute times reproduces every float bit for bit: for the
stateless built-in policies (retry, restart, degrade) the batched
robust score **equals** the serial score exactly — not approximately —
which the differential-oracle tier in :mod:`repro.verify.oracles` and
the hypothesis suite in ``tests/faults/test_batched.py`` assert.
:class:`~repro.faults.recovery.AdaptiveRecoveryPolicy` is
order-dependent (its budget drains in global event order, which replay
approximates member-by-member), so it is scored within a tolerance
band instead — see :func:`replay_tier`.

Replica seeds come from :func:`repro.util.rng.derive_replica_seed`,
shared with the serial path. With common random numbers (the default)
replica ``i`` sees the *same* fault draws for every candidate, so
candidate comparisons are paired and the fault schedules are sampled
once per ranking call instead of once per candidate.

Examples
--------
The batched score is bit-identical to the serial DES score:

>>> from repro.faults.models import RandomFailureModel
>>> from repro.faults.recovery import RetryBackoffPolicy
>>> from repro.runtime.placement import pack_members_per_node
>>> from repro.runtime.spec import EnsembleSpec, default_member
>>> spec = EnsembleSpec("demo", (default_member("em1", n_steps=6),))
>>> placement = pack_members_per_node(spec)
>>> factory = lambda seed: RandomFailureModel(rate=0.4, seed=seed)
>>> fast = batched_score_placement(
...     spec, placement, factory, RetryBackoffPolicy(), trials=3)
>>> from repro.scheduler.robust import robust_score_placement
>>> slow = robust_score_placement(
...     spec, placement, factory, RetryBackoffPolicy(), trials=3)
>>> (fast.objective, fast.mean_inflation) == \
(slow.objective, slow.mean_inflation)
True
"""

from __future__ import annotations

import copy
import math
import threading
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.indicators import (
    FINAL_STAGE_ORDER,
    MemberMeasurement,
    apply_stages,
)
from repro.core.objective import objective_function
from repro.core.stages import (
    AnalysisStages,
    MemberStages,
    SimulationStages,
)
from repro.dtl.base import DataTransportLayer
from repro.faults.injector import AnalysisDropped, StageContext
from repro.faults.models import CHUNK_KINDS, FaultKind, FaultSchedule
from repro.faults.recovery import (
    CheckpointRestartPolicy,
    DropAnalysisPolicy,
    RecoveryPolicy,
    RetryBackoffPolicy,
)
from repro.platform.cluster import Cluster
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.errors import ValidationError
from repro.util.rng import derive_replica_seed
from repro.util.validation import require_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scheduler.robust import ModelFactory, RobustScore


# -- engine counters ---------------------------------------------------------
# Module-global so the service's /stats endpoint and bench tooling can
# report how much replay work the engine has done without threading a
# stats object through every call. Pool workers tally in their own
# process; the parent folds their returned counts back in.

_COUNTER_LOCK = threading.Lock()
_counters: Dict[str, object] = {
    "baseline_sims": 0,
    "replicas_replayed": 0,
    "fallback_reason": None,
}


def engine_counters() -> Dict[str, object]:
    """A snapshot of the batched engine's work counters.

    ``baseline_sims`` counts fault-free timeline captures,
    ``replicas_replayed`` the fault replicas scored by delta replay,
    and ``fallback_reason`` the most recent reason a parallel ranking
    fell back to serial (None if it never has).
    """
    with _COUNTER_LOCK:
        return dict(_counters)


def reset_engine_counters() -> None:
    """Zero the counters (tests and benchmarks isolate runs with this)."""
    with _COUNTER_LOCK:
        _counters["baseline_sims"] = 0
        _counters["replicas_replayed"] = 0
        _counters["fallback_reason"] = None


def _tally(baseline: int = 0, replicas: int = 0) -> None:
    with _COUNTER_LOCK:
        _counters["baseline_sims"] += baseline
        _counters["replicas_replayed"] += replicas


def _note_fallback(reason: Optional[str]) -> None:
    with _COUNTER_LOCK:
        _counters["fallback_reason"] = reason


def replay_tier(policy: RecoveryPolicy) -> str:
    """How faithfully delta replay reproduces a policy's serial score.

    ``"exact"`` policies are stateless functions of the crash site and
    attempt count, so replay applies the identical recovery delays at
    the identical times and the batched score equals the serial score
    bit for bit. ``"banded"`` policies carry cross-site state consulted
    in global event order (the adaptive budget), which replay visits
    member-by-member instead — scores agree within the oracle's
    ``batched_adaptive`` tolerance band, not exactly.

    Examples
    --------
    >>> from repro.faults.recovery import (AdaptiveRecoveryPolicy,
    ...                                    DropAnalysisPolicy,
    ...                                    RetryBackoffPolicy)
    >>> replay_tier(RetryBackoffPolicy())
    'exact'
    >>> replay_tier(DropAnalysisPolicy())
    'exact'
    >>> replay_tier(AdaptiveRecoveryPolicy())
    'banded'
    """
    if type(policy) in (RetryBackoffPolicy, CheckpointRestartPolicy):
        return "exact"
    if type(policy) is DropAnalysisPolicy:
        return replay_tier(policy.fallback)
    return "banded"


# -- the captured numeline ---------------------------------------------------


@dataclass(frozen=True, eq=False)
class MemberTimeline:
    """One member's fault-free baseline as per-stage duration arrays.

    Durations are the *nominal* values handed to the ``_stage`` choke
    point (noise jitter already applied) — exactly what the injector's
    body would wait in a faulted run, which is what makes the replay's
    timeline edits exact.
    """

    name: str
    sim_name: str
    analysis_names: Tuple[str, ...]
    n_steps: int
    sim_compute: np.ndarray  # (n,) S durations per step
    sim_write: np.ndarray  # (n,) W durations per step
    ana_read: np.ndarray  # (K, n) R durations per analysis per step
    ana_compute: np.ndarray  # (K, n) A durations per analysis per step
    sim_step_time: float
    ana_step_times: Tuple[float, ...]
    total_cores: int
    placement_sets: tuple


@dataclass(frozen=True, eq=False)
class StageTimeline:
    """A candidate's full baseline numeline plus its reference scores."""

    spec_name: str
    members: Tuple[MemberTimeline, ...]
    num_nodes: int
    ideal_objective: float  # failure-free DES F(P^{U,A,P})
    baseline_makespan: float
    total_steps: int


@dataclass(frozen=True)
class ReplayOutcome:
    """Per-replica scores from one :func:`replay_schedules` call."""

    objectives: Tuple[float, ...]
    makespans: Tuple[float, ...]
    inflations: Tuple[float, ...]
    goodputs: Tuple[float, ...]


def capture_timeline(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    seed: Optional[int] = 0,
    timing_noise: float = 0.0,
) -> StageTimeline:
    """Run the fault-free DES once and distill it into a numeline.

    The run is byte-identical to the serial scorer's baseline run (the
    recorder never touches the clock), so ``ideal_objective`` and
    ``baseline_makespan`` match the serial path's reference values
    exactly.
    """
    # deferred: the executor module imports the faults submodules this
    # package loads before this one, so a top-level import would cycle.
    from repro.runtime.executor import EnsembleExecutor, TimelineRecorder

    recorder = TimelineRecorder()
    executor = EnsembleExecutor(
        spec=spec,
        placement=placement,
        cluster=cluster,
        dtl=dtl,
        seed=seed,
        timing_noise=timing_noise,
        timeline_recorder=recorder,
    )
    result = executor.run()

    durations: Dict[Tuple[str, str], Dict[int, float]] = {}
    step_times: Dict[str, float] = {}
    for _member, component, stage, step, duration, step_time in (
        recorder.records
    ):
        durations.setdefault((component, stage), {})[step] = duration
        step_times[component] = step_time

    members: List[MemberTimeline] = []
    for member, mp in zip(spec.members, placement.members):
        n = member.n_steps
        sim_name = member.simulation.name
        ana_names = tuple(a.name for a in member.analyses)
        members.append(
            MemberTimeline(
                name=member.name,
                sim_name=sim_name,
                analysis_names=ana_names,
                n_steps=n,
                sim_compute=np.array(
                    [durations[(sim_name, "S")][t] for t in range(n)]
                ),
                sim_write=np.array(
                    [durations[(sim_name, "W")][t] for t in range(n)]
                ),
                ana_read=np.array(
                    [
                        [durations[(a, "R")][t] for t in range(n)]
                        for a in ana_names
                    ]
                ),
                ana_compute=np.array(
                    [
                        [durations[(a, "A")][t] for t in range(n)]
                        for a in ana_names
                    ]
                ),
                sim_step_time=step_times[sim_name],
                ana_step_times=tuple(step_times[a] for a in ana_names),
                total_cores=member.total_cores,
                placement_sets=mp.to_placement_sets(),
            )
        )
    _tally(baseline=1)
    return StageTimeline(
        spec_name=spec.name,
        members=tuple(members),
        num_nodes=placement.num_nodes,
        ideal_objective=result.objective(FINAL_STAGE_ORDER),
        baseline_makespan=result.ensemble_makespan,
        total_steps=sum(m.n_steps for m in spec.members),
    )


# -- replica replay ----------------------------------------------------------


def _compile_replica(schedule: FaultSchedule) -> Tuple[dict, dict]:
    """Index one replica's schedule for per-site lookup during replay."""
    site_map: Dict[Tuple[str, int, str], Tuple] = {}
    chunk_map: Dict[Tuple[str, int], Tuple] = {}
    for ev in schedule.events:
        if ev.kind in CHUNK_KINDS:
            key = (ev.component, ev.step)
            if key not in chunk_map:
                chunk_map[key] = schedule.chunk_events_for(*key)
        else:
            skey = (ev.component, ev.step, ev.stage)
            if skey not in site_map:
                site_map[skey] = schedule.events_for(*skey)
    return site_map, chunk_map


def _apply_site(
    start: float,
    duration: float,
    site: Tuple,
    chunk: Tuple,
    policy: RecoveryPolicy,
    ctx: StageContext,
) -> Tuple[float, bool]:
    """Replay one faulted stage instance; returns (end time, dropped).

    Mirrors :meth:`~repro.faults.injector.FaultInjector.execute`
    operation for operation — every addition the injector's timeouts
    would perform happens here on the same absolute time in the same
    order, so the returned end time is the float the DES clock would
    hold. Costs are never pre-summed (float addition is not
    associative).
    """
    now = start
    scale = 1.0
    for ev in site:
        if ev.kind is FaultKind.STALL:
            if ev.magnitude > 0:
                now += ev.magnitude
        elif ev.kind is FaultKind.STRAGGLER:
            scale *= ev.magnitude
    attempt = 0
    for ev in site:
        if ev.kind is not FaultKind.CRASH:
            continue
        for _ in range(ev.repeats):
            lost = ctx.duration * scale * ev.magnitude
            if lost > 0:
                now += lost
            action = policy.on_crash(ctx, attempt)
            attempt += 1
            if action.mode == "drop":
                return now, True
            if action.delay > 0:
                now += action.delay
    now += duration * scale
    for ev in chunk:
        if ev.magnitude > 0:
            now += ev.magnitude
        now += duration * scale
    return now, False


@dataclass(eq=False)
class _MemberReplay:
    """One member's replayed timelines across all replicas."""

    dur_S: np.ndarray  # (R, n)
    dur_W: np.ndarray  # (R, n)
    dur_R: np.ndarray  # (K, R, n)
    dur_A: np.ndarray  # (K, R, n)
    makespan: np.ndarray  # (R,)
    r_len: np.ndarray  # (K, R) valid ANA_READ samples per replica
    a_len: np.ndarray  # (K, R) valid ANA_COMPUTE samples per replica


def _replay_member(
    mt: MemberTimeline,
    compiled: Sequence[Tuple[dict, dict]],
    policies: Sequence[RecoveryPolicy],
) -> _MemberReplay:
    """Advance one member's coupling recurrence across all replicas.

    The fault-free recurrence is vectorized over the replica axis;
    the (replica, stage instance) pairs a schedule actually touches
    are recomputed scalar-exactly via :func:`_apply_site`.
    """
    R = len(compiled)
    n = mt.n_steps
    K = len(mt.analysis_names)
    ana_index = {name: j for j, name in enumerate(mt.analysis_names)}

    # which replicas need a scalar override at each stage instance
    s_over: List[List[int]] = [[] for _ in range(n)]
    w_over: List[List[int]] = [[] for _ in range(n)]
    r_over: List[List[Set[int]]] = [
        [set() for _ in range(n)] for _ in range(K)
    ]
    a_over: List[List[List[int]]] = [
        [[] for _ in range(n)] for _ in range(K)
    ]
    for r, (site_map, chunk_map) in enumerate(compiled):
        for component, step, stage in site_map:
            if step >= n:
                continue
            if component == mt.sim_name:
                if stage == "S":
                    s_over[step].append(r)
                elif stage == "W":
                    w_over[step].append(r)
            elif component in ana_index:
                j = ana_index[component]
                if stage == "R":
                    r_over[j][step].add(r)
                elif stage == "A":
                    a_over[j][step].append(r)
        for producer, step in chunk_map:
            if producer == mt.sim_name and step < n:
                for j in range(K):
                    r_over[j][step].add(r)

    simT = np.zeros(R)
    anaT = np.zeros((K, R))
    allread = np.zeros(R)
    dropped = np.zeros((K, R), dtype=bool)
    drop_time = np.zeros((K, R))
    drop_in_read = np.zeros((K, R), dtype=bool)
    drop_step = np.full((K, R), -1, dtype=np.int64)
    dur_S = np.empty((R, n))
    dur_W = np.empty((R, n))
    dur_R = np.empty((K, R, n))
    dur_A = np.empty((K, R, n))
    contribs = np.empty((K, R))

    def _sim_stage(stage: str, t: int, nominal: float, start: np.ndarray,
                   overrides: List[int]) -> np.ndarray:
        end = start + nominal
        if overrides:
            ctx = StageContext(
                member=mt.name,
                component=mt.sim_name,
                stage=stage,
                step=t,
                duration=float(nominal),
                step_time=mt.sim_step_time,
            )
            key = (mt.sim_name, t, stage)
            for r in overrides:
                site = compiled[r][0].get(key, ())
                e, drop = _apply_site(
                    float(start[r]), float(nominal), site, (),
                    policies[r], ctx,
                )
                if drop:
                    # matches the serial run, where a simulation drop
                    # propagates out of env.run()
                    raise AnalysisDropped(mt.sim_name, t)
                end[r] = e
        return end

    for t in range(n):
        # S
        start = simT
        end = _sim_stage("S", t, mt.sim_compute[t], start, s_over[t])
        dur_S[:, t] = end - start
        simT = end
        # I^S: gate on the previous step's reads
        if t > 0:
            simT = np.maximum(simT, allread)
        # W
        start = simT
        end = _sim_stage("W", t, mt.sim_write[t], start, w_over[t])
        dur_W[:, t] = end - start
        simT = end
        w_end = simT

        for j in range(K):
            ana = mt.analysis_names[j]
            # R (gated on W of this step)
            startR = np.maximum(anaT[j], w_end)
            endR = startR + mt.ana_read[j, t]
            if r_over[j][t]:
                ctx = StageContext(
                    member=mt.name,
                    component=ana,
                    stage="R",
                    step=t,
                    duration=float(mt.ana_read[j, t]),
                    step_time=mt.ana_step_times[j],
                    producer=mt.sim_name,
                )
                for r in r_over[j][t]:
                    if dropped[j, r]:
                        continue
                    site = compiled[r][0].get((ana, t, "R"), ())
                    chunk = compiled[r][1].get((mt.sim_name, t), ())
                    e, drop = _apply_site(
                        float(startR[r]), float(mt.ana_read[j, t]),
                        site, chunk, policies[r], ctx,
                    )
                    endR[r] = e
                    if drop:
                        dropped[j, r] = True
                        drop_time[j, r] = e
                        drop_in_read[j, r] = True
                        drop_step[j, r] = t
            dur_R[j, :, t] = endR - startR
            # a replica dropped before this step released its barrier
            # at drop time; one dropped *during this R* did too (the
            # retire handler fires at env.now == the drop instant)
            contribs[j] = np.where(dropped[j], drop_time[j], endR)

            # A
            startA = endR
            endA = startA + mt.ana_compute[j, t]
            if a_over[j][t]:
                ctx = StageContext(
                    member=mt.name,
                    component=ana,
                    stage="A",
                    step=t,
                    duration=float(mt.ana_compute[j, t]),
                    step_time=mt.ana_step_times[j],
                )
                for r in a_over[j][t]:
                    if dropped[j, r]:
                        continue
                    site = compiled[r][0].get((ana, t, "A"), ())
                    e, drop = _apply_site(
                        float(startA[r]), float(mt.ana_compute[j, t]),
                        site, (), policies[r], ctx,
                    )
                    endA[r] = e
                    if drop:
                        dropped[j, r] = True
                        drop_time[j, r] = e
                        drop_step[j, r] = t
            dur_A[j, :, t] = endA - startA
            anaT[j] = np.where(dropped[j], anaT[j], endA)

        allread = contribs.max(axis=0)

    ana_end = np.where(dropped, drop_time, anaT)
    makespan = ana_end.max(axis=0)
    r_len = np.where(drop_step >= 0, drop_step + 1, n)
    a_len = np.where(
        drop_step >= 0,
        np.where(drop_in_read, drop_step, drop_step + 1),
        n,
    )
    return _MemberReplay(
        dur_S=dur_S,
        dur_W=dur_W,
        dur_R=dur_R,
        dur_A=dur_A,
        makespan=makespan,
        r_len=r_len,
        a_len=a_len,
    )


def _steady_state_rows(dur: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Vectorized :func:`estimate_steady_state` over replica rows.

    Bit-identical to running the scalar estimator on each row's first
    ``lens[r]`` samples: rows are grouped by effective length (drops
    shorten a replica's sample list), and within a group the warm-up
    skip, the sort, and the trim indices are shared, so one axis-sort
    plus one axis-mean reproduces every row's scalar float (numpy's
    pairwise summation order depends only on the element count of the
    reduced axis, not the memory layout — asserted by the
    batched-vs-serial parity tests).
    """
    out = np.empty(dur.shape[0])
    for m in np.unique(lens):
        mask = lens == m
        m = int(m)
        if m < 1:
            raise ValidationError(
                "estimate_steady_state requires at least one sample"
            )
        skip = int(m * 0.2)
        if skip >= m:
            skip = m - 1
        rest = np.sort(dur[mask, skip:m], axis=1)
        size = m - skip
        if size < 3:
            out[mask] = rest.mean(axis=1)
            continue
        k = int(math.floor(size * 0.1))
        if 2 * k >= size:
            k = (size - 1) // 2
        out[mask] = rest[:, k : size - k].mean(axis=1)
    return out


def _score_replicas(
    timeline: StageTimeline,
    replays: Sequence[_MemberReplay],
    R: int,
) -> Tuple[List[float], List[float]]:
    """Per-replica (objective, ensemble makespan) of the replayed runs.

    Steady-state estimation (:func:`estimate_steady_state`'s warm-up
    skip + trimmed mean) is vectorized across the replica axis via
    :func:`_steady_state_rows`; the indicator pipeline and Eq. 9 then
    run per replica through the *same* library functions the serial
    path uses, so agreement is structural, not numeric luck.
    """
    est = []
    for mt, rep in zip(timeline.members, replays):
        full = np.full(R, mt.n_steps)
        est.append(
            (
                _steady_state_rows(rep.dur_S, full),
                _steady_state_rows(rep.dur_W, full),
                [
                    _steady_state_rows(rep.dur_R[j], rep.r_len[j])
                    for j in range(len(mt.analysis_names))
                ],
                [
                    _steady_state_rows(rep.dur_A[j], rep.a_len[j])
                    for j in range(len(mt.analysis_names))
                ],
            )
        )

    objectives: List[float] = []
    makespans: List[float] = []
    for r in range(R):
        indicators: List[float] = []
        spans: List[float] = []
        for mt, rep, (sim_c, sim_w, reads, analyzes) in zip(
            timeline.members, replays, est
        ):
            stages = MemberStages(
                simulation=SimulationStages(
                    compute=float(sim_c[r]), write=float(sim_w[r])
                ),
                analyses=tuple(
                    AnalysisStages(
                        read=float(reads[j][r]),
                        analyze=float(analyzes[j][r]),
                    )
                    for j in range(len(mt.analysis_names))
                ),
            )
            measurement = MemberMeasurement(
                name=mt.name,
                stages=stages,
                total_cores=mt.total_cores,
                placement=mt.placement_sets,
            )
            indicators.append(
                apply_stages(
                    measurement, FINAL_STAGE_ORDER, timeline.num_nodes
                )
            )
            spans.append(float(rep.makespan[r]))
        objectives.append(objective_function(indicators))
        makespans.append(max(spans))
    return objectives, makespans


def replay_schedules(
    timeline: StageTimeline,
    schedules: Sequence[FaultSchedule],
    policy: RecoveryPolicy,
) -> ReplayOutcome:
    """Score every fault schedule against one captured baseline.

    Each replica gets a fresh deep copy of ``policy`` (reset via
    ``on_run_start``), matching the serial path's one-injector-per-run
    policy lifecycle.
    """
    R = len(schedules)
    compiled = [_compile_replica(s) for s in schedules]
    policies: List[RecoveryPolicy] = []
    for _ in range(R):
        p = copy.deepcopy(policy)
        p.on_run_start()
        policies.append(p)
    replays = [
        _replay_member(mt, compiled, policies) for mt in timeline.members
    ]

    objectives, makespans = _score_replicas(timeline, replays, R)
    inflations: List[float] = []
    goodputs: List[float] = []
    for makespan in makespans:
        inflations.append(makespan / timeline.baseline_makespan)
        goodputs.append(timeline.total_steps / makespan)
    _tally(replicas=R)
    return ReplayOutcome(
        objectives=tuple(objectives),
        makespans=tuple(makespans),
        inflations=tuple(inflations),
        goodputs=tuple(goodputs),
    )


# -- scoring entry points ----------------------------------------------------


def score_from_timeline(
    spec: EnsembleSpec,
    timeline: StageTimeline,
    placement: EnsemblePlacement,
    model_factory: "ModelFactory",
    policy: RecoveryPolicy,
    trials: int = 3,
    base_seed: int = 0,
    seed_label: str = "",
    name: str = "",
    schedules: Optional[Sequence[FaultSchedule]] = None,
) -> "RobustScore":
    """Robust-score a candidate whose baseline is already captured.

    Fault schedules are sampled via
    ``model_factory(derive_replica_seed(base_seed, t, seed_label))``
    unless pre-built ``schedules`` are passed (the common-random-
    numbers rank path samples once and shares them across candidates).
    """
    from repro.scheduler.robust import RobustScore

    if schedules is None:
        require_positive_int("trials", trials)
        schedules = [
            model_factory(
                derive_replica_seed(base_seed, t, seed_label)
            ).build_schedule(spec)
            for t in range(trials)
        ]
    outcome = replay_schedules(timeline, schedules, policy)
    return RobustScore(
        name=name or spec.name,
        placement=placement,
        objective=float(np.mean(outcome.objectives)),
        ideal_objective=timeline.ideal_objective,
        mean_inflation=float(np.mean(outcome.inflations)),
        mean_goodput=float(np.mean(outcome.goodputs)),
        num_nodes=placement.num_nodes,
        trials=len(schedules),
    )


def batched_score_placement(
    spec: EnsembleSpec,
    placement: EnsemblePlacement,
    model_factory: "ModelFactory",
    policy: RecoveryPolicy,
    trials: int = 3,
    base_seed: int = 0,
    timing_noise: float = 0.0,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    name: str = "",
    seed_label: str = "",
) -> "RobustScore":
    """Drop-in replacement for :func:`~repro.scheduler.robust
    .robust_score_placement` using one DES run plus delta replay.

    Runs the fault-free DES once (the baseline capture doubles as the
    ideal reference), then replays ``trials`` fault schedules against
    the captured numeline. For exactly-replayable policies (see
    :func:`replay_tier`) the returned score equals the serial one bit
    for bit.
    """
    require_positive_int("trials", trials)
    timeline = capture_timeline(
        spec,
        placement,
        cluster=cluster,
        dtl=dtl,
        seed=base_seed,
        timing_noise=timing_noise,
    )
    return score_from_timeline(
        spec,
        timeline,
        placement,
        model_factory,
        policy,
        trials=trials,
        base_seed=base_seed,
        seed_label=seed_label,
        name=name,
    )


def _batched_chunk_worker(payload: Tuple) -> Tuple[List, int, int]:
    """Pool worker: batched-score one contiguous chunk of candidates.

    Returns ``(scores, baseline_sims, replicas_replayed)`` so the
    parent can fold the child process's counter increments back into
    the module-global counters.
    """
    (
        spec, chunk, model_factory, policy, trials, base_seed,
        timing_noise, crn, cluster, dtl,
    ) = payload
    shared = None
    if crn:
        shared = [
            model_factory(derive_replica_seed(base_seed, t)).build_schedule(
                spec
            )
            for t in range(trials)
        ]
    scores: List = []
    for cname, placement in chunk:
        timeline = capture_timeline(
            spec,
            placement,
            cluster=cluster,
            dtl=dtl,
            seed=base_seed,
            timing_noise=timing_noise,
        )
        scores.append(
            score_from_timeline(
                spec,
                timeline,
                placement,
                model_factory,
                policy,
                trials=trials,
                base_seed=base_seed,
                seed_label="" if crn else cname,
                name=cname,
                schedules=shared,
            )
        )
    return scores, len(chunk), len(chunk) * trials


def rank_placements_batched(
    spec: EnsembleSpec,
    candidates: Dict[str, EnsemblePlacement],
    model_factory: "ModelFactory",
    policy: RecoveryPolicy,
    trials: int = 3,
    base_seed: int = 0,
    timing_noise: float = 0.0,
    crn: bool = True,
    parallel: bool = False,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
) -> List["RobustScore"]:
    """Rank candidates with the batched engine; best first.

    With ``crn=True`` (the default) every candidate is scored against
    the *same* ``trials`` fault schedules — common random numbers:
    replica ``i``'s draws are shared everywhere, pairing the candidate
    comparisons (lower rank-inversion variance at equal trials, which
    the CRN test in ``tests/faults/test_batched.py`` measures) and
    letting the schedules be sampled once per call instead of once per
    candidate. ``crn=False`` decorrelates candidates by hashing each
    candidate's name into its replica seeds.

    With ``parallel=True`` the candidate list is sharded into
    contiguous chunks across a process pool; results are identical to
    serial (same seeds, same chunk-order flatten, and ``sorted`` is
    stable so ties keep their insertion order). Pool-setup or pickling
    failures fall back to serial with the reason recorded on
    ``engine_counters()["fallback_reason"]``.
    """
    require_positive_int("trials", trials)
    items = list(candidates.items())
    if parallel and len(items) >= 2:
        import multiprocessing

        from repro.scheduler.robust import _parallel_map

        workers = min(multiprocessing.cpu_count(), len(items))
        size = -(-len(items) // max(workers, 1))
        chunks = [
            items[i:i + size] for i in range(0, len(items), size)
        ]
        payloads = [
            (
                spec, chunk, model_factory, policy, trials, base_seed,
                timing_noise, crn, cluster, dtl,
            )
            for chunk in chunks
        ]
        outcome = _parallel_map(_batched_chunk_worker, payloads)
        if outcome.results is not None:
            scores = []
            for part, baselines, replicas in outcome.results:
                scores.extend(part)
                _tally(baseline=baselines, replicas=replicas)
            return sorted(scores, reverse=True)
        _note_fallback(outcome.fallback_reason)

    shared = None
    if crn:
        shared = [
            model_factory(derive_replica_seed(base_seed, t)).build_schedule(
                spec
            )
            for t in range(trials)
        ]
    scores = []
    for cname, placement in items:
        timeline = capture_timeline(
            spec,
            placement,
            cluster=cluster,
            dtl=dtl,
            seed=base_seed,
            timing_noise=timing_noise,
        )
        scores.append(
            score_from_timeline(
                spec,
                timeline,
                placement,
                model_factory,
                policy,
                trials=trials,
                base_seed=base_seed,
                seed_label="" if crn else cname,
                name=cname,
                schedules=shared,
            )
        )
    return sorted(scores, reverse=True)
