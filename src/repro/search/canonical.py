"""Canonical placement enumeration (restricted growth strings).

The seed enumerator walked all ``nodes^components`` raw assignments and
discarded node-relabeling duplicates with a ``seen`` set — exponential
work even when the surviving canonical space is tiny. This module
generates exactly one representative per relabeling class *directly*:

- A canonical assignment is a **restricted growth string** (RGS): node
  labels appear in order of first use, so component ``i`` may only use
  a node already opened by components ``0..i-1`` or open the next
  fresh label. Every relabeling class contains exactly one RGS, and it
  is the lexicographically smallest member of its class — i.e. the
  representative the seed's first-occurrence dedup kept. The streams
  are therefore identical, element for element.
- Capacity pruning happens **inside the recursion**: a prefix that
  oversubscribes a node is abandoned before any of its completions are
  materialized, so infeasible subtrees cost one comparison instead of
  ``nodes^(remaining)`` iterations.
- Counting never materializes placements at all:
  :func:`count_canonical_assignments` and :func:`count_raw_assignments`
  run a memoized recursion over *capacity multisets* — two partial
  states whose remaining node capacities agree as multisets have the
  same number of completions, which collapses the tree to polynomial
  size for the node counts searched here.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.validation import require_positive_int


def component_core_demands(spec: EnsembleSpec) -> List[int]:
    """Core demand of every component, in flat (member-major) order."""
    cores: List[int] = []
    for member in spec.members:
        cores.append(member.simulation.cores)
        cores.extend(a.cores for a in member.analyses)
    return cores


def member_shapes(spec: EnsembleSpec) -> List[int]:
    """Number of components (1 + K_i) per member, in member order."""
    return [1 + member.num_couplings for member in spec.members]


def assignment_to_placement(
    spec: EnsembleSpec, assignment: Sequence[int], num_nodes: int
) -> EnsemblePlacement:
    """Materialize a flat component-to-node assignment as a placement."""
    members: List[MemberPlacement] = []
    cursor = 0
    for member in spec.members:
        shape = 1 + member.num_couplings
        chunk = assignment[cursor : cursor + shape]
        cursor += shape
        members.append(MemberPlacement(chunk[0], tuple(chunk[1:])))
    return EnsemblePlacement(num_nodes=num_nodes, members=tuple(members))


def iter_canonical_assignments(
    component_cores: Sequence[int],
    num_nodes: int,
    cores_per_node: int,
) -> Iterator[Tuple[int, ...]]:
    """Yield feasible canonical (RGS) assignments in lexicographic order.

    Each yielded tuple assigns every component a node label; labels are
    opened in order of first use and no node's total demand exceeds
    ``cores_per_node``. The order matches the seed product-then-dedup
    enumerator's output order exactly (first occurrence in raw
    lexicographic order *is* the RGS representative).
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    n = len(component_cores)
    if n == 0:
        return
    assignment = [0] * n
    # remaining capacity of opened nodes, indexed by label
    caps: List[int] = []

    def rec(i: int) -> Iterator[Tuple[int, ...]]:
        if i == n:
            yield tuple(assignment)
            return
        cores = component_cores[i]
        for label in range(len(caps)):
            if caps[label] >= cores:
                caps[label] -= cores
                assignment[i] = label
                yield from rec(i + 1)
                caps[label] += cores
        if len(caps) < num_nodes and cores_per_node >= cores:
            caps.append(cores_per_node - cores)
            assignment[i] = len(caps) - 1
            yield from rec(i + 1)
            caps.pop()

    yield from rec(0)


def count_canonical_assignments(
    component_cores: Sequence[int],
    num_nodes: int,
    cores_per_node: int,
) -> int:
    """Count feasible canonical assignments without materializing them.

    Memoized on (component index, multiset of opened-node capacities,
    unopened node count): placing the next component on any opened node
    of remaining capacity ``r`` leads to the same sub-count, so the
    transition multiplies by the multiplicity of ``r`` instead of
    branching per node.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    cores = list(component_cores)
    if not cores:
        return 0
    memo: Dict[Tuple[int, Tuple[int, ...], int], int] = {}

    def rec(i: int, caps: Tuple[int, ...], unopened: int) -> int:
        if i == len(cores):
            return 1
        key = (i, caps, unopened)
        cached = memo.get(key)
        if cached is not None:
            return cached
        c = cores[i]
        total = 0
        # multiplicity of each distinct remaining capacity
        mult: Dict[int, int] = {}
        for r in caps:
            mult[r] = mult.get(r, 0) + 1
        for r, m in mult.items():
            if r >= c:
                nxt = list(caps)
                nxt.remove(r)
                nxt.append(r - c)
                total += m * rec(i + 1, tuple(sorted(nxt)), unopened)
        if unopened > 0 and cores_per_node >= c:
            nxt = tuple(sorted(caps + (cores_per_node - c,)))
            total += rec(i + 1, nxt, unopened - 1)
        memo[key] = total
        return total

    return rec(0, (), num_nodes)


def count_raw_assignments(
    component_cores: Sequence[int],
    num_nodes: int,
    cores_per_node: int,
) -> int:
    """Count feasible *labeled* assignments (no symmetry dedup).

    Same capacity-multiset memoization as
    :func:`count_canonical_assignments`, but every node starts opened:
    an assignment to any of the ``m`` nodes sharing a remaining
    capacity contributes ``m`` labeled variants.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    cores = list(component_cores)
    if not cores:
        return 0
    memo: Dict[Tuple[int, Tuple[int, ...]], int] = {}

    def rec(i: int, caps: Tuple[int, ...]) -> int:
        if i == len(cores):
            return 1
        key = (i, caps)
        cached = memo.get(key)
        if cached is not None:
            return cached
        c = cores[i]
        total = 0
        mult: Dict[int, int] = {}
        for r in caps:
            mult[r] = mult.get(r, 0) + 1
        for r, m in mult.items():
            if r >= c:
                nxt = list(caps)
                nxt.remove(r)
                nxt.append(r - c)
                total += m * rec(i + 1, tuple(sorted(nxt)))
        memo[key] = total
        return total

    return rec(0, tuple([cores_per_node] * num_nodes))


def enumerate_canonical_placements(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
) -> Iterator[EnsemblePlacement]:
    """Yield one placement per node-relabeling class of ``spec``.

    Equivalent to the seed ``enumerate_placements(...,
    dedup_symmetric=True)`` stream — same placements, same order —
    without ever touching the infeasible or duplicate parts of the raw
    ``nodes^components`` space.
    """
    cores = component_core_demands(spec)
    for assignment in iter_canonical_assignments(
        cores, num_nodes, cores_per_node
    ):
        yield assignment_to_placement(spec, assignment, num_nodes)
