"""Canonical placement enumeration (restricted growth strings).

The seed enumerator walked all ``nodes^components`` raw assignments and
discarded node-relabeling duplicates with a ``seen`` set — exponential
work even when the surviving canonical space is tiny. This module
generates exactly one representative per relabeling class *directly*:

- A canonical assignment is a **restricted growth string** (RGS): node
  labels appear in order of first use, so component ``i`` may only use
  a node already opened by components ``0..i-1`` or open the next
  fresh label. Every relabeling class contains exactly one RGS, and it
  is the lexicographically smallest member of its class — i.e. the
  representative the seed's first-occurrence dedup kept. The streams
  are therefore identical, element for element.
- Capacity pruning happens **inside the recursion**: a prefix that
  oversubscribes a node is abandoned before any of its completions are
  materialized, so infeasible subtrees cost one comparison instead of
  ``nodes^(remaining)`` iterations.
- Counting never materializes placements at all:
  :func:`count_canonical_assignments` and :func:`count_raw_assignments`
  run a memoized recursion over *capacity multisets* — two partial
  states whose remaining node capacities agree as multisets have the
  same number of completions, which collapses the tree to polynomial
  size for the node counts searched here.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.validation import require_positive_int

#: Signature of a branch-and-bound prune hook for
#: :func:`iter_assignment_chunks`: ``(component_index, assignment,
#: caps) -> skip?``. ``assignment[:component_index]`` holds the live
#: prefix (later entries are stale), ``caps`` the remaining capacities
#: of the opened labels. Returning True skips every completion of the
#: prefix.
PruneHook = Callable[[int, Sequence[int], Sequence[int]], bool]


def component_core_demands(spec: EnsembleSpec) -> List[int]:
    """Core demand of every component, in flat (member-major) order."""
    cores: List[int] = []
    for member in spec.members:
        cores.append(member.simulation.cores)
        cores.extend(a.cores for a in member.analyses)
    return cores


def member_shapes(spec: EnsembleSpec) -> List[int]:
    """Number of components (1 + K_i) per member, in member order."""
    return [1 + member.num_couplings for member in spec.members]


def assignment_to_placement(
    spec: EnsembleSpec, assignment: Sequence[int], num_nodes: int
) -> EnsemblePlacement:
    """Materialize a flat component-to-node assignment as a placement."""
    members: List[MemberPlacement] = []
    cursor = 0
    for member in spec.members:
        shape = 1 + member.num_couplings
        chunk = assignment[cursor : cursor + shape]
        cursor += shape
        members.append(MemberPlacement(chunk[0], tuple(chunk[1:])))
    return EnsemblePlacement(num_nodes=num_nodes, members=tuple(members))


def iter_canonical_assignments(
    component_cores: Sequence[int],
    num_nodes: int,
    cores_per_node: int,
) -> Iterator[Tuple[int, ...]]:
    """Yield feasible canonical (RGS) assignments in lexicographic order.

    Each yielded tuple assigns every component a node label; labels are
    opened in order of first use and no node's total demand exceeds
    ``cores_per_node``. The order matches the seed product-then-dedup
    enumerator's output order exactly (first occurrence in raw
    lexicographic order *is* the RGS representative).
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    n = len(component_cores)
    if n == 0:
        return
    assignment = [0] * n
    # remaining capacity of opened nodes, indexed by label
    caps: List[int] = []

    def rec(i: int) -> Iterator[Tuple[int, ...]]:
        if i == n:
            yield tuple(assignment)
            return
        cores = component_cores[i]
        for label in range(len(caps)):
            if caps[label] >= cores:
                caps[label] -= cores
                assignment[i] = label
                yield from rec(i + 1)
                caps[label] += cores
        if len(caps) < num_nodes and cores_per_node >= cores:
            caps.append(cores_per_node - cores)
            assignment[i] = len(caps) - 1
            yield from rec(i + 1)
            caps.pop()

    yield from rec(0)


def iter_assignment_chunks(
    component_cores: Sequence[int],
    num_nodes: int,
    cores_per_node: int,
    chunk_size: int = 8192,
    boundaries: Sequence[int] = (),
    prune: Optional[PruneHook] = None,
) -> Iterator[np.ndarray]:
    """Yield canonical assignments as ``(B, C)`` index arrays.

    Array mode of :func:`iter_canonical_assignments`: concatenating the
    yielded chunks row by row reproduces the scalar stream exactly —
    same assignments, same order (property-tested against the seed
    reference enumerator). Rows are emitted in blocks so a batch kernel
    can score thousands of candidates per numpy dispatch; the last
    recursion level is filled column-wise (all feasible labels of the
    final component at once), which keeps per-candidate Python cost
    below the cost of building a tuple.

    With ``prune`` given, it is consulted whenever the recursion
    reaches a component index in ``boundaries`` (conventionally the
    member start offsets): returning True abandons the subtree rooted
    at the current prefix before any of its completions exist —
    branch-and-bound callers count the skipped completions with
    :class:`CompletionCounter` instead of materializing them.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    require_positive_int("chunk_size", chunk_size)
    n = len(component_cores)
    if n == 0:
        return
    boundary_set = frozenset(boundaries) if prune is not None else frozenset()
    assignment = [0] * n
    caps: List[int] = []
    buf = np.empty((chunk_size, n), dtype=np.int64)
    fill = 0

    def rec(i: int) -> Iterator[np.ndarray]:
        nonlocal fill
        if prune is not None and i in boundary_set and prune(
            i, assignment, caps
        ):
            return
        cores = component_cores[i]
        if i == n - 1:
            labels = [
                label for label in range(len(caps)) if caps[label] >= cores
            ]
            if len(caps) < num_nodes and cores_per_node >= cores:
                labels.append(len(caps))
            done = 0
            while done < len(labels):
                take = min(chunk_size - fill, len(labels) - done)
                block = buf[fill : fill + take]
                if n > 1:
                    block[:, : n - 1] = assignment[: n - 1]
                block[:, n - 1] = labels[done : done + take]
                fill += take
                done += take
                if fill == chunk_size:
                    yield buf.copy()
                    fill = 0
            return
        for label in range(len(caps)):
            if caps[label] >= cores:
                caps[label] -= cores
                assignment[i] = label
                yield from rec(i + 1)
                caps[label] += cores
        if len(caps) < num_nodes and cores_per_node >= cores:
            caps.append(cores_per_node - cores)
            assignment[i] = len(caps) - 1
            yield from rec(i + 1)
            caps.pop()

    yield from rec(0)
    if fill:
        yield buf[:fill].copy()


class CompletionCounter:
    """Closed-form completion counts of partial canonical assignments.

    Generalizes :func:`count_canonical_assignments` to arbitrary
    partial states: :meth:`count` sizes the subtree rooted at
    (component index, opened-label capacities) without materializing a
    single assignment, sharing one capacity-multiset memo across every
    query of a search. Branch-and-bound uses it to tally exactly how
    many candidates each pruned subtree contained, so
    ``scored + pruned`` always equals the full canonical count.
    """

    def __init__(
        self,
        component_cores: Sequence[int],
        num_nodes: int,
        cores_per_node: int,
    ) -> None:
        require_positive_int("num_nodes", num_nodes)
        require_positive_int("cores_per_node", cores_per_node)
        self._cores = list(component_cores)
        self._num_nodes = num_nodes
        self._cores_per_node = cores_per_node
        self._memo: Dict[Tuple[int, Tuple[int, ...], int], int] = {}

    def count(self, index: int, caps: Sequence[int]) -> int:
        """Completions of a prefix ending at ``index`` with ``caps`` open."""
        if not 0 <= index <= len(self._cores):
            raise ValueError(
                f"component index {index} out of range 0..{len(self._cores)}"
            )
        return self._rec(
            index, tuple(sorted(caps)), self._num_nodes - len(caps)
        )

    def total(self) -> int:
        """The full canonical count (empty prefix)."""
        if not self._cores:
            return 0
        return self.count(0, ())

    def _rec(self, i: int, caps: Tuple[int, ...], unopened: int) -> int:
        if i == len(self._cores):
            return 1
        key = (i, caps, unopened)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        c = self._cores[i]
        total = 0
        mult: Dict[int, int] = {}
        for r in caps:
            mult[r] = mult.get(r, 0) + 1
        for r, m in mult.items():
            if r >= c:
                nxt = list(caps)
                nxt.remove(r)
                nxt.append(r - c)
                total += m * self._rec(i + 1, tuple(sorted(nxt)), unopened)
        if unopened > 0 and self._cores_per_node >= c:
            nxt_caps = tuple(sorted(caps + (self._cores_per_node - c,)))
            total += self._rec(i + 1, nxt_caps, unopened - 1)
        self._memo[key] = total
        return total


def count_canonical_assignments(
    component_cores: Sequence[int],
    num_nodes: int,
    cores_per_node: int,
) -> int:
    """Count feasible canonical assignments without materializing them.

    Memoized on (component index, multiset of opened-node capacities,
    unopened node count): placing the next component on any opened node
    of remaining capacity ``r`` leads to the same sub-count, so the
    transition multiplies by the multiplicity of ``r`` instead of
    branching per node.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    cores = list(component_cores)
    if not cores:
        return 0
    memo: Dict[Tuple[int, Tuple[int, ...], int], int] = {}

    def rec(i: int, caps: Tuple[int, ...], unopened: int) -> int:
        if i == len(cores):
            return 1
        key = (i, caps, unopened)
        cached = memo.get(key)
        if cached is not None:
            return cached
        c = cores[i]
        total = 0
        # multiplicity of each distinct remaining capacity
        mult: Dict[int, int] = {}
        for r in caps:
            mult[r] = mult.get(r, 0) + 1
        for r, m in mult.items():
            if r >= c:
                nxt = list(caps)
                nxt.remove(r)
                nxt.append(r - c)
                total += m * rec(i + 1, tuple(sorted(nxt)), unopened)
        if unopened > 0 and cores_per_node >= c:
            nxt = tuple(sorted(caps + (cores_per_node - c,)))
            total += rec(i + 1, nxt, unopened - 1)
        memo[key] = total
        return total

    return rec(0, (), num_nodes)


def count_raw_assignments(
    component_cores: Sequence[int],
    num_nodes: int,
    cores_per_node: int,
) -> int:
    """Count feasible *labeled* assignments (no symmetry dedup).

    Same capacity-multiset memoization as
    :func:`count_canonical_assignments`, but every node starts opened:
    an assignment to any of the ``m`` nodes sharing a remaining
    capacity contributes ``m`` labeled variants.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    cores = list(component_cores)
    if not cores:
        return 0
    memo: Dict[Tuple[int, Tuple[int, ...]], int] = {}

    def rec(i: int, caps: Tuple[int, ...]) -> int:
        if i == len(cores):
            return 1
        key = (i, caps)
        cached = memo.get(key)
        if cached is not None:
            return cached
        c = cores[i]
        total = 0
        mult: Dict[int, int] = {}
        for r in caps:
            mult[r] = mult.get(r, 0) + 1
        for r, m in mult.items():
            if r >= c:
                nxt = list(caps)
                nxt.remove(r)
                nxt.append(r - c)
                total += m * rec(i + 1, tuple(sorted(nxt)))
        memo[key] = total
        return total

    return rec(0, tuple([cores_per_node] * num_nodes))


def enumerate_canonical_placements(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
) -> Iterator[EnsemblePlacement]:
    """Yield one placement per node-relabeling class of ``spec``.

    Equivalent to the seed ``enumerate_placements(...,
    dedup_symmetric=True)`` stream — same placements, same order —
    without ever touching the infeasible or duplicate parts of the raw
    ``nodes^components`` space.
    """
    cores = component_core_demands(spec)
    for assignment in iter_canonical_assignments(
        cores, num_nodes, cores_per_node
    ):
        yield assignment_to_placement(spec, assignment, num_nodes)
