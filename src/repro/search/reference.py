"""Seed (pre-optimization) implementations, kept as the baseline.

The fast engine's contract is *bit-identical results, less work* — the
only way to keep that promise honest over time is to keep the slow
implementations around and diff against them. This module preserves
the original product-then-dedup enumerator exactly as it shipped; the
property tests assert the canonical generator reproduces its stream
and the benchmarks in ``scripts/bench_search.py`` measure the speedup
against it. Nothing here is on any hot path.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.runtime.placement import EnsemblePlacement, MemberPlacement
from repro.runtime.spec import EnsembleSpec
from repro.util.validation import require_positive_int


def canonical_signature(flat_assignment: Sequence[int]) -> Tuple[int, ...]:
    """Relabel nodes by first appearance so isomorphic placements match."""
    mapping: Dict[int, int] = {}
    out: List[int] = []
    for node in flat_assignment:
        if node not in mapping:
            mapping[node] = len(mapping)
        out.append(mapping[node])
    return tuple(out)


def enumerate_placements_reference(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    dedup_symmetric: bool = True,
) -> Iterator[EnsemblePlacement]:
    """The seed enumerator: walk ``nodes^components`` raw assignments,
    reject infeasible ones, and (optionally) drop node-relabeling
    duplicates with a ``seen`` set.

    Exponential in the component count regardless of how small the
    canonical space is — superseded by
    :func:`repro.search.canonical.enumerate_canonical_placements`,
    which yields the identical stream.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)

    component_cores: List[int] = []
    member_shapes: List[int] = []  # number of components per member
    for member in spec.members:
        member_shapes.append(1 + member.num_couplings)
        component_cores.append(member.simulation.cores)
        component_cores.extend(a.cores for a in member.analyses)

    total_components = len(component_cores)
    seen: set = set()

    for assignment in itertools.product(
        range(num_nodes), repeat=total_components
    ):
        demand: Dict[int, int] = {}
        feasible = True
        for node, cores in zip(assignment, component_cores):
            demand[node] = demand.get(node, 0) + cores
            if demand[node] > cores_per_node:
                feasible = False
                break
        if not feasible:
            continue
        if dedup_symmetric:
            sig = canonical_signature(assignment)
            if sig in seen:
                continue
            seen.add(sig)

        members: List[MemberPlacement] = []
        cursor = 0
        for shape in member_shapes:
            chunk = assignment[cursor : cursor + shape]
            cursor += shape
            members.append(
                MemberPlacement(
                    simulation_node=chunk[0], analysis_nodes=tuple(chunk[1:])
                )
            )
        yield EnsemblePlacement(num_nodes=num_nodes, members=tuple(members))


def count_feasible_placements_reference(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    dedup_symmetric: bool = True,
) -> int:
    """Seed counting: enumerate everything and count (for diffing)."""
    return sum(
        1
        for _ in enumerate_placements_reference(
            spec, num_nodes, cores_per_node, dedup_symmetric
        )
    )
