"""Fast placement-search engine (canonical + memoized + parallel).

The seed search stack is the naive reference: enumerate
``nodes^components`` raw assignments, dedup after the fact, re-run the
full analytic predictor per candidate, re-score every member per
annealing move. This package replaces the *work*, not the *answers* —
every fast path is asserted bit-identical to the seed implementation
it supersedes (same placements, same score floats):

- :mod:`~repro.search.canonical` — restricted-growth-string
  enumeration: one representative per node-relabeling class, capacity
  pruning inside the recursion, closed-form counting over capacity
  multisets;
- :mod:`~repro.search.cache` — :class:`StageCache`, memoized stage
  prediction keyed by each member's local co-location signature, with
  delta (changed-nodes-only) re-evaluation for move-based search;
- :mod:`~repro.search.batch` — :func:`score_placements_batch`,
  order-preserving chunked scoring with an optional multiprocessing
  pool and an unconditional serial fallback;
- :mod:`~repro.search.engine` — :func:`find_best_placement`, the fused
  streaming search used by the exhaustive policy;
- :mod:`~repro.search.vectorized` — :class:`VectorizedScorer`, numpy
  column kernels that score whole assignment chunks per dispatch, and
  :func:`find_best_placement_vectorized`, branch-and-bound over the
  chunked canonical stream (agreement with the scalar scorer ≤1e-9,
  winner re-scored on the scalar path);
- :mod:`~repro.search.reference` — the seed implementations, kept as
  the baseline the benchmarks and property tests diff against.

See ``docs/PERFORMANCE.md`` for the architecture and the determinism
guarantees.
"""

from repro.search.cache import FlatEvaluation, StageCache
from repro.search.canonical import (
    CompletionCounter,
    assignment_to_placement,
    component_core_demands,
    count_canonical_assignments,
    count_raw_assignments,
    enumerate_canonical_placements,
    iter_assignment_chunks,
    iter_canonical_assignments,
    member_shapes,
)
from repro.search.reference import (
    canonical_signature,
    count_feasible_placements_reference,
    enumerate_placements_reference,
)

# batch and engine score through repro.scheduler.objectives, which
# (via repro.scheduler.policies) enumerates through
# repro.configs.generator, which uses repro.search.canonical — loading
# them eagerly here would close that cycle. PEP 562 lazy loading keeps
# the public surface flat while the canonical/cache layers stay
# importable from anywhere in the scheduler stack.
_LAZY_EXPORTS = {
    "MIN_PARALLEL_BATCH": "repro.search.batch",
    "MIN_VECTORIZED_CANDIDATES": "repro.search.vectorized",
    "VectorizedScorer": "repro.search.vectorized",
    "VectorizedSearchResult": "repro.search.vectorized",
    "VectorizedUnsupported": "repro.search.vectorized",
    "argmax_batch": "repro.search.vectorized",
    "best_score_index": "repro.search.vectorized",
    "find_best_placement": "repro.search.engine",
    "find_best_placement_vectorized": "repro.search.vectorized",
    "last_search_routing": "repro.search.engine",
    "reset_search_counters": "repro.search.engine",
    "score_placements_batch": "repro.search.batch",
    "search_counters": "repro.search.engine",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value

__all__ = [
    "CompletionCounter",
    "FlatEvaluation",
    "MIN_PARALLEL_BATCH",
    "MIN_VECTORIZED_CANDIDATES",
    "StageCache",
    "VectorizedScorer",
    "VectorizedSearchResult",
    "VectorizedUnsupported",
    "argmax_batch",
    "assignment_to_placement",
    "best_score_index",
    "canonical_signature",
    "component_core_demands",
    "count_canonical_assignments",
    "count_feasible_placements_reference",
    "count_raw_assignments",
    "enumerate_canonical_placements",
    "enumerate_placements_reference",
    "find_best_placement",
    "find_best_placement_vectorized",
    "iter_assignment_chunks",
    "iter_canonical_assignments",
    "last_search_routing",
    "member_shapes",
    "reset_search_counters",
    "score_placements_batch",
    "search_counters",
]
