"""Streaming best-placement search over the canonical space.

:func:`find_best_placement` fuses the three fast layers: canonical
(RGS) enumeration feeds flat assignments straight into the
:class:`~repro.search.cache.StageCache` — no intermediate placement
objects, no per-candidate predictor runs — and only an *improving*
candidate is materialized into an
:class:`~repro.runtime.placement.EnsemblePlacement` and a full
:class:`~repro.scheduler.objectives.PlacementScore`.

Tie-breaking matches :class:`~repro.scheduler.policies
.ExhaustiveSearchPolicy` exactly: candidates are visited in the seed
enumerator's order and a new best requires a strictly greater score
key, so the *first* optimum in enumeration order wins — the fast path
returns the same placement the seed search would, asserted
bit-identical in the tests.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.core.objective import objective_function
from repro.dtl.base import DataTransportLayer
from repro.faults.analytic import RobustnessTerm
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.context import PlanningContext, _coerce_context
from repro.scheduler.objectives import PlacementScore
from repro.search.batch import score_placements_batch
from repro.search.canonical import (
    assignment_to_placement,
    component_core_demands,
    enumerate_canonical_placements,
    iter_canonical_assignments,
)
from repro.search.cache import StageCache
from repro.util.errors import PlacementError
from repro.util.validation import require_positive_int

# -- vectorized-routing observability ----------------------------------------
# The vectorized gate used to fall back to the scalar path silently
# (``except VectorizedUnsupported: pass``), leaving callers who asked
# for the kernel no way to tell whether it actually ran. Mirroring the
# batched fault engine's counters, every search records how it was
# routed; the service surfaces these through ``/stats``.
_SEARCH_LOCK = threading.Lock()
_SEARCH_COUNTERS: Dict[str, int] = {
    "searches": 0,
    "vectorized_requested": 0,
    "vectorized_used": 0,
    "vectorized_fallbacks": 0,
}
_LAST_ROUTING: Dict[str, object] = {
    "vectorized_requested": False,
    "vectorized_used": False,
    "fallback_reason": None,
}


def search_counters() -> Dict[str, int]:
    """Snapshot of the engine-routing counters (process-wide)."""
    with _SEARCH_LOCK:
        return dict(_SEARCH_COUNTERS)


def reset_search_counters() -> None:
    """Zero the routing counters and clear the last-routing record."""
    with _SEARCH_LOCK:
        for key in _SEARCH_COUNTERS:
            _SEARCH_COUNTERS[key] = 0
        _LAST_ROUTING.update(
            {
                "vectorized_requested": False,
                "vectorized_used": False,
                "fallback_reason": None,
            }
        )


def last_search_routing() -> Dict[str, object]:
    """How the most recent :func:`find_best_placement` call was routed.

    ``fallback_reason`` is a human-readable sentence set only when the
    caller requested ``vectorized=True`` but the scalar path ran —
    the structured replacement for the old silent fallback.
    """
    with _SEARCH_LOCK:
        return dict(_LAST_ROUTING)


def _note_routing(
    requested: bool, used: bool, reason: Optional[str]
) -> None:
    with _SEARCH_LOCK:
        _SEARCH_COUNTERS["searches"] += 1
        if requested:
            _SEARCH_COUNTERS["vectorized_requested"] += 1
            if used:
                _SEARCH_COUNTERS["vectorized_used"] += 1
            else:
                _SEARCH_COUNTERS["vectorized_fallbacks"] += 1
        _LAST_ROUTING.update(
            {
                "vectorized_requested": requested,
                "vectorized_used": used,
                "fallback_reason": reason if requested and not used else None,
            }
        )


def find_best_placement(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    robustness: Optional[RobustnessTerm] = None,
    cache: Optional[StageCache] = None,
    parallel: bool = False,
    processes: Optional[int] = None,
    vectorized: bool = False,
    chunk_size: int = 8192,
    context: Optional[PlanningContext] = None,
) -> Tuple[PlacementScore, int]:
    """Exhaustively search the canonical space; return (best, evaluated).

    Equivalent to scoring every placement of the seed enumerator with
    :func:`~repro.scheduler.objectives.score_placement` and keeping the
    first strict optimum — same winner, same score floats — but through
    the canonical generator and the stage cache.

    Parameters
    ----------
    spec / num_nodes / cores_per_node:
        The ensemble and the node budget to search.
    cluster / dtl / robustness:
        Scoring context, as for ``score_placement``.
    cache:
        Optional shared :class:`StageCache` (created when omitted or
        incompatible with ``(cluster, dtl)``).
    parallel / processes:
        Route scoring through :func:`~repro.search.batch
        .score_placements_batch`'s pool (serial fallback applies).
    vectorized / chunk_size:
        Opt in to the batch column kernel with branch-and-bound
        (:func:`~repro.search.vectorized
        .find_best_placement_vectorized`). Applies only when the
        context is vectorizable, no robustness term is present, and the
        canonical space is large enough to amortize chunk setup
        (``MIN_VECTORIZED_CANDIDATES``); otherwise the scalar path runs
        unchanged. The returned score is re-derived through the scalar
        cache either way, and ``evaluated`` counts the whole canonical
        space (scored + pruned), so callers observe identical results.
        When the scalar path runs despite ``vectorized=True``, the
        reason is recorded — :func:`last_search_routing` returns it
        and :func:`search_counters` tallies it (nothing falls back
        silently).
    context:
        A :class:`~repro.scheduler.context.PlanningContext` bundling
        the eight keywords above. Float-identical to the legacy
        spelling; mixing both warns ``DeprecationWarning`` with the
        legacy values taking precedence.

    Raises
    ------
    PlacementError
        If no feasible placement exists within the budget.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    if context is not None:
        merged = _coerce_context(
            context,
            "find_best_placement",
            cluster=cluster,
            dtl=dtl,
            robustness=robustness,
            cache=cache,
            parallel=parallel,
            processes=processes,
            vectorized=vectorized,
            chunk_size=chunk_size,
        )
        cluster = merged.cluster
        dtl = merged.dtl
        robustness = merged.robustness
        cache = merged.cache
        parallel = merged.parallel
        processes = merged.processes
        vectorized = merged.vectorized
        chunk_size = merged.chunk_size
    if cache is None or not cache.matches(cluster, dtl):
        cache = StageCache(cluster, dtl)

    fallback_reason: Optional[str] = None
    component_cores = component_core_demands(spec)
    if vectorized and robustness is None and not parallel:
        from repro.search.canonical import count_canonical_assignments
        from repro.search.vectorized import (
            MIN_VECTORIZED_CANDIDATES,
            VectorizedUnsupported,
            find_best_placement_vectorized,
        )

        total = count_canonical_assignments(
            component_cores, num_nodes, cores_per_node
        )
        if total >= MIN_VECTORIZED_CANDIDATES:
            try:
                result = find_best_placement_vectorized(
                    spec,
                    num_nodes,
                    cores_per_node,
                    cluster=cluster,
                    dtl=dtl,
                    cache=cache,
                    chunk_size=chunk_size,
                )
            except VectorizedUnsupported as exc:
                fallback_reason = f"context not vectorizable: {exc}"
            else:
                _note_routing(True, True, None)
                return result.best, result.candidates
        else:
            fallback_reason = (
                f"canonical space below threshold ({total} < "
                f"{MIN_VECTORIZED_CANDIDATES} candidates)"
            )
    elif vectorized:
        fallback_reason = (
            "robustness term present"
            if robustness is not None
            else "parallel engine requested"
        )
    _note_routing(vectorized, False, fallback_reason)

    if parallel:
        candidates = list(
            enumerate_canonical_placements(spec, num_nodes, cores_per_node)
        )
        scores = score_placements_batch(
            spec,
            candidates,
            cluster=cluster,
            dtl=dtl,
            robustness=robustness,
            cache=cache,
            parallel=True,
            processes=processes,
        )
        if not scores:
            raise PlacementError(
                f"no feasible placement over {num_nodes} nodes of "
                f"{cores_per_node} cores"
            )
        # numpy argmax over the batch must reproduce the serial loop's
        # strict-> tie-breaking (utility, fewest nodes, lowest
        # makespan, first occurrence) — best_score_index does exactly
        # that, regression-tested on tie-heavy grids
        from repro.search.vectorized import best_score_index

        best: Optional[PlacementScore] = scores[best_score_index(scores)]
        return best, len(scores)

    evaluated = 0
    best = None
    best_key: Optional[Tuple[float, float]] = None
    robust_cluster: Optional[Cluster] = None
    # candidates frequently repeat the exact indicator tuple (different
    # node labels, same local patterns) — memoize F over it, which
    # reuses the identical float rather than re-aggregating
    objective_memo: dict = {}
    for assignment in iter_canonical_assignments(
        component_cores, num_nodes, cores_per_node
    ):
        evaluation = cache.evaluate_flat(spec, assignment, num_nodes)
        evaluated += 1
        indicator_key = tuple(evaluation.indicators)
        objective = objective_memo.get(indicator_key)
        if objective is None:
            objective = objective_function(evaluation.indicators)
            objective_memo[indicator_key] = objective
        penalty = 0.0
        if robustness is not None:
            placement = assignment_to_placement(spec, assignment, num_nodes)
            if cluster is None:
                if robust_cluster is None:
                    robust_cluster = make_cori_like_cluster(num_nodes)
                penalty_cluster = robust_cluster
            else:
                penalty_cluster = cluster
            penalty = robustness.penalty(
                spec,
                placement,
                cluster=penalty_cluster,
                dtl=dtl,
                stages=evaluation.stages_by_name(spec),
            )
        # PlacementScore._key with num_nodes fixed across candidates:
        # (utility, -makespan), strictly greater keeps the first optimum
        key = (objective - penalty, -evaluation.worst_makespan)
        if best_key is None or key > best_key:
            best_key = key
            best = PlacementScore(
                placement=assignment_to_placement(
                    spec, assignment, num_nodes
                ),
                objective=objective,
                ensemble_makespan=evaluation.worst_makespan,
                num_nodes=num_nodes,
                member_indicators=tuple(evaluation.indicators),
                robust_penalty=penalty,
            )
    if best is None:
        raise PlacementError(
            f"no feasible placement over {num_nodes} nodes of "
            f"{cores_per_node} cores"
        )
    return best, evaluated
