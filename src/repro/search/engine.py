"""Streaming best-placement search over the canonical space.

:func:`find_best_placement` fuses the three fast layers: canonical
(RGS) enumeration feeds flat assignments straight into the
:class:`~repro.search.cache.StageCache` — no intermediate placement
objects, no per-candidate predictor runs — and only an *improving*
candidate is materialized into an
:class:`~repro.runtime.placement.EnsemblePlacement` and a full
:class:`~repro.scheduler.objectives.PlacementScore`.

Tie-breaking matches :class:`~repro.scheduler.policies
.ExhaustiveSearchPolicy` exactly: candidates are visited in the seed
enumerator's order and a new best requires a strictly greater score
key, so the *first* optimum in enumeration order wins — the fast path
returns the same placement the seed search would, asserted
bit-identical in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.objective import objective_function
from repro.dtl.base import DataTransportLayer
from repro.faults.analytic import RobustnessTerm
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import PlacementScore
from repro.search.batch import score_placements_batch
from repro.search.canonical import (
    assignment_to_placement,
    component_core_demands,
    enumerate_canonical_placements,
    iter_canonical_assignments,
)
from repro.search.cache import StageCache
from repro.util.errors import PlacementError
from repro.util.validation import require_positive_int


def find_best_placement(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    robustness: Optional[RobustnessTerm] = None,
    cache: Optional[StageCache] = None,
    parallel: bool = False,
    processes: Optional[int] = None,
) -> Tuple[PlacementScore, int]:
    """Exhaustively search the canonical space; return (best, evaluated).

    Equivalent to scoring every placement of the seed enumerator with
    :func:`~repro.scheduler.objectives.score_placement` and keeping the
    first strict optimum — same winner, same score floats — but through
    the canonical generator and the stage cache.

    Parameters
    ----------
    spec / num_nodes / cores_per_node:
        The ensemble and the node budget to search.
    cluster / dtl / robustness:
        Scoring context, as for ``score_placement``.
    cache:
        Optional shared :class:`StageCache` (created when omitted or
        incompatible with ``(cluster, dtl)``).
    parallel / processes:
        Route scoring through :func:`~repro.search.batch
        .score_placements_batch`'s pool (serial fallback applies).

    Raises
    ------
    PlacementError
        If no feasible placement exists within the budget.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    if cache is None or not cache.matches(cluster, dtl):
        cache = StageCache(cluster, dtl)

    if parallel:
        candidates = list(
            enumerate_canonical_placements(spec, num_nodes, cores_per_node)
        )
        scores = score_placements_batch(
            spec,
            candidates,
            cluster=cluster,
            dtl=dtl,
            robustness=robustness,
            cache=cache,
            parallel=True,
            processes=processes,
        )
        best: Optional[PlacementScore] = None
        for score in scores:
            if best is None or score > best:
                best = score
        if best is None:
            raise PlacementError(
                f"no feasible placement over {num_nodes} nodes of "
                f"{cores_per_node} cores"
            )
        return best, len(scores)

    component_cores = component_core_demands(spec)
    evaluated = 0
    best = None
    best_key: Optional[Tuple[float, float]] = None
    robust_cluster: Optional[Cluster] = None
    # candidates frequently repeat the exact indicator tuple (different
    # node labels, same local patterns) — memoize F over it, which
    # reuses the identical float rather than re-aggregating
    objective_memo: dict = {}
    for assignment in iter_canonical_assignments(
        component_cores, num_nodes, cores_per_node
    ):
        evaluation = cache.evaluate_flat(spec, assignment, num_nodes)
        evaluated += 1
        indicator_key = tuple(evaluation.indicators)
        objective = objective_memo.get(indicator_key)
        if objective is None:
            objective = objective_function(evaluation.indicators)
            objective_memo[indicator_key] = objective
        penalty = 0.0
        if robustness is not None:
            placement = assignment_to_placement(spec, assignment, num_nodes)
            if cluster is None:
                if robust_cluster is None:
                    robust_cluster = make_cori_like_cluster(num_nodes)
                penalty_cluster = robust_cluster
            else:
                penalty_cluster = cluster
            penalty = robustness.penalty(
                spec,
                placement,
                cluster=penalty_cluster,
                dtl=dtl,
                stages=evaluation.stages_by_name(spec),
            )
        # PlacementScore._key with num_nodes fixed across candidates:
        # (utility, -makespan), strictly greater keeps the first optimum
        key = (objective - penalty, -evaluation.worst_makespan)
        if best_key is None or key > best_key:
            best_key = key
            best = PlacementScore(
                placement=assignment_to_placement(
                    spec, assignment, num_nodes
                ),
                objective=objective,
                ensemble_makespan=evaluation.worst_makespan,
                num_nodes=num_nodes,
                member_indicators=tuple(evaluation.indicators),
                robust_penalty=penalty,
            )
    if best is None:
        raise PlacementError(
            f"no feasible placement over {num_nodes} nodes of "
            f"{cores_per_node} cores"
        )
    return best, evaluated
