"""Streaming best-placement search over the canonical space.

:func:`find_best_placement` fuses the three fast layers: canonical
(RGS) enumeration feeds flat assignments straight into the
:class:`~repro.search.cache.StageCache` — no intermediate placement
objects, no per-candidate predictor runs — and only an *improving*
candidate is materialized into an
:class:`~repro.runtime.placement.EnsemblePlacement` and a full
:class:`~repro.scheduler.objectives.PlacementScore`.

Tie-breaking matches :class:`~repro.scheduler.policies
.ExhaustiveSearchPolicy` exactly: candidates are visited in the seed
enumerator's order and a new best requires a strictly greater score
key, so the *first* optimum in enumeration order wins — the fast path
returns the same placement the seed search would, asserted
bit-identical in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.objective import objective_function
from repro.dtl.base import DataTransportLayer
from repro.faults.analytic import RobustnessTerm
from repro.platform.cluster import Cluster
from repro.platform.specs import make_cori_like_cluster
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import PlacementScore
from repro.search.batch import score_placements_batch
from repro.search.canonical import (
    assignment_to_placement,
    component_core_demands,
    enumerate_canonical_placements,
    iter_canonical_assignments,
)
from repro.search.cache import StageCache
from repro.util.errors import PlacementError
from repro.util.validation import require_positive_int


def find_best_placement(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    robustness: Optional[RobustnessTerm] = None,
    cache: Optional[StageCache] = None,
    parallel: bool = False,
    processes: Optional[int] = None,
    vectorized: bool = False,
    chunk_size: int = 8192,
) -> Tuple[PlacementScore, int]:
    """Exhaustively search the canonical space; return (best, evaluated).

    Equivalent to scoring every placement of the seed enumerator with
    :func:`~repro.scheduler.objectives.score_placement` and keeping the
    first strict optimum — same winner, same score floats — but through
    the canonical generator and the stage cache.

    Parameters
    ----------
    spec / num_nodes / cores_per_node:
        The ensemble and the node budget to search.
    cluster / dtl / robustness:
        Scoring context, as for ``score_placement``.
    cache:
        Optional shared :class:`StageCache` (created when omitted or
        incompatible with ``(cluster, dtl)``).
    parallel / processes:
        Route scoring through :func:`~repro.search.batch
        .score_placements_batch`'s pool (serial fallback applies).
    vectorized / chunk_size:
        Opt in to the batch column kernel with branch-and-bound
        (:func:`~repro.search.vectorized
        .find_best_placement_vectorized`). Applies only when the
        context is vectorizable, no robustness term is present, and the
        canonical space is large enough to amortize chunk setup
        (``MIN_VECTORIZED_CANDIDATES``); otherwise the scalar path runs
        unchanged. The returned score is re-derived through the scalar
        cache either way, and ``evaluated`` counts the whole canonical
        space (scored + pruned), so callers observe identical results.

    Raises
    ------
    PlacementError
        If no feasible placement exists within the budget.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    if cache is None or not cache.matches(cluster, dtl):
        cache = StageCache(cluster, dtl)

    component_cores = component_core_demands(spec)
    if vectorized and robustness is None and not parallel:
        from repro.search.canonical import count_canonical_assignments
        from repro.search.vectorized import (
            MIN_VECTORIZED_CANDIDATES,
            VectorizedUnsupported,
            find_best_placement_vectorized,
        )

        total = count_canonical_assignments(
            component_cores, num_nodes, cores_per_node
        )
        if total >= MIN_VECTORIZED_CANDIDATES:
            try:
                result = find_best_placement_vectorized(
                    spec,
                    num_nodes,
                    cores_per_node,
                    cluster=cluster,
                    dtl=dtl,
                    cache=cache,
                    chunk_size=chunk_size,
                )
            except VectorizedUnsupported:
                pass
            else:
                return result.best, result.candidates

    if parallel:
        candidates = list(
            enumerate_canonical_placements(spec, num_nodes, cores_per_node)
        )
        scores = score_placements_batch(
            spec,
            candidates,
            cluster=cluster,
            dtl=dtl,
            robustness=robustness,
            cache=cache,
            parallel=True,
            processes=processes,
        )
        if not scores:
            raise PlacementError(
                f"no feasible placement over {num_nodes} nodes of "
                f"{cores_per_node} cores"
            )
        # numpy argmax over the batch must reproduce the serial loop's
        # strict-> tie-breaking (utility, fewest nodes, lowest
        # makespan, first occurrence) — best_score_index does exactly
        # that, regression-tested on tie-heavy grids
        from repro.search.vectorized import best_score_index

        best: Optional[PlacementScore] = scores[best_score_index(scores)]
        return best, len(scores)

    evaluated = 0
    best = None
    best_key: Optional[Tuple[float, float]] = None
    robust_cluster: Optional[Cluster] = None
    # candidates frequently repeat the exact indicator tuple (different
    # node labels, same local patterns) — memoize F over it, which
    # reuses the identical float rather than re-aggregating
    objective_memo: dict = {}
    for assignment in iter_canonical_assignments(
        component_cores, num_nodes, cores_per_node
    ):
        evaluation = cache.evaluate_flat(spec, assignment, num_nodes)
        evaluated += 1
        indicator_key = tuple(evaluation.indicators)
        objective = objective_memo.get(indicator_key)
        if objective is None:
            objective = objective_function(evaluation.indicators)
            objective_memo[indicator_key] = objective
        penalty = 0.0
        if robustness is not None:
            placement = assignment_to_placement(spec, assignment, num_nodes)
            if cluster is None:
                if robust_cluster is None:
                    robust_cluster = make_cori_like_cluster(num_nodes)
                penalty_cluster = robust_cluster
            else:
                penalty_cluster = cluster
            penalty = robustness.penalty(
                spec,
                placement,
                cluster=penalty_cluster,
                dtl=dtl,
                stages=evaluation.stages_by_name(spec),
            )
        # PlacementScore._key with num_nodes fixed across candidates:
        # (utility, -makespan), strictly greater keeps the first optimum
        key = (objective - penalty, -evaluation.worst_makespan)
        if best_key is None or key > best_key:
            best_key = key
            best = PlacementScore(
                placement=assignment_to_placement(
                    spec, assignment, num_nodes
                ),
                objective=objective,
                ensemble_makespan=evaluation.worst_makespan,
                num_nodes=num_nodes,
                member_indicators=tuple(evaluation.indicators),
                robust_penalty=penalty,
            )
    if best is None:
        raise PlacementError(
            f"no feasible placement over {num_nodes} nodes of "
            f"{cores_per_node} cores"
        )
    return best, evaluated
