"""Vectorized batch scoring of canonical placements (numpy kernels).

The scalar engine walks one assignment at a time through the
:class:`~repro.search.cache.StageCache`; even fully memoized, every
candidate costs a Python round trip per member. This module scores a
whole ``(B, C)`` chunk of flat assignments per numpy dispatch by
splitting the paper's pipeline (Eqs. 1-9) at its one genuinely
sequential joint — socket-aware contention assessment — and
vectorizing everything on either side of it:

1. **Node-signature codes** — a chunk is reduced to one integer per
   (candidate, node): the base-``(ncls+1)`` polynomial of the node's
   resident class sequence in allocation order. Two nodes with the
   same code have bit-identical contention assessments, so each
   distinct code is assessed **once**, by the same scalar
   ``Node.assess`` path the cache uses, and memoized as a per-position
   dilation row. Chunks after warm-up contain no new codes at all.
2. **Column kernels** — with dilations gathered per component, the
   remaining math is pure elementwise numpy: DTL read/write columns
   are lookups into per-(member, hop) tables precomputed with the
   exact scalar float expressions (Cori's dragonfly hop count is pure
   integer arithmetic on node indexes); active times, the steady-state
   period ``sigma*`` (Eq. 1, ``np.maximum.reduceat`` over member
   segments), efficiency ``E`` (Eq. 3), the indicator product
   ``P^{U,A,P}`` (Eqs. 5-8), makespans (Eq. 2), and the objective
   ``F = mean - std`` (Eq. 9) all follow as column reductions.
3. **Reduction** — a first-occurrence lexicographic argmax over
   ``(objective, -makespan)`` reproduces the serial loop's strict
   ``>`` tie-breaking exactly (see :func:`argmax_batch`).

Agreement with the scalar :func:`~repro.scheduler.objectives
.score_placement` is ≤1e-9 relative (typically a few ulps: the only
reassociations are ``n * overhead`` versus a repeated sum and the
segment reductions), enforced by the differential oracle's
``vectorized`` tier and the benchmark's correctness report.

:func:`find_best_placement_vectorized` adds branch-and-bound on top:
``E <= 1`` (documented and property-tested in
:mod:`repro.core.efficiency`) makes ``CP_i / (c_i * M)`` an admissible
per-member bound on the indicator, so a partial prefix bounds the
objective by the mean of exact-CP terms (assigned members) and
best-case-CP terms (unassigned members). Subtrees whose bound falls
strictly below the incumbent are skipped before expansion and sized in
closed form with :class:`~repro.search.canonical.CompletionCounter`.
The winner is re-scored through the scalar cache path before being
returned, so callers observe the very same floats the scalar engine
would have produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtl.base import DataTransportLayer
from repro.dtl.dimes import InMemoryStagingDTL
from repro.platform.cluster import Cluster
from repro.platform.contention import ContentionModel
from repro.platform.network import DragonflyNetwork
from repro.platform.node import Node
from repro.platform.specs import cori_like_network, cori_like_node
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import PlacementScore, score_placement
from repro.search.cache import StageCache
from repro.search.canonical import (
    CompletionCounter,
    assignment_to_placement,
    component_core_demands,
    iter_assignment_chunks,
)
from repro.util.errors import PlacementError
from repro.util.validation import require_positive_int

#: Below this canonical-space size the scalar ``StageCache`` loop wins:
#: chunk setup (array allocation, signature coding, table gathers)
#: costs roughly a millisecond, which only amortizes over thousands of
#: candidates. ``find_best_placement(vectorized=True)`` silently stays
#: on the scalar path for smaller instances.
MIN_VECTORIZED_CANDIDATES = 2048

#: Relative safety margin applied to the branch-and-bound upper bound
#: before comparing against the incumbent. The bound arithmetic is a
#: handful of float operations (error ~1e-15 relative); inflating by
#: 1e-9 — the vectorized agreement tolerance — keeps the bound
#: admissible against any rounding of either side.
BOUND_SAFETY = 1e-9

#: A dragonfly minimal route is at most 5 hops (see
#: :class:`~repro.platform.network.DragonflyNetwork`).
_MAX_HOPS = 5


class VectorizedUnsupported(Exception):
    """The scoring context cannot be vectorized faithfully.

    Raised at :class:`VectorizedScorer` construction for non-default
    transport/network models (whose cost formulas the column kernels do
    not replicate) or for spec shapes whose signature codes would
    overflow int64. Callers fall back to the scalar engine.
    """


@dataclass(frozen=True)
class ChunkEvaluation:
    """Batch scores of one ``(B, C)`` assignment chunk.

    ``objectives``/``makespans`` are ``(B,)``; ``indicators`` is
    ``(B, num_members)`` — the per-member ``P^{U,A,P}`` columns that
    Eq. 9 aggregates.
    """

    objectives: np.ndarray
    makespans: np.ndarray
    indicators: np.ndarray


@dataclass(frozen=True)
class VectorizedSearchResult:
    """Outcome of :func:`find_best_placement_vectorized`.

    ``best`` carries scalar-path floats (the winner is re-scored
    through the :class:`StageCache`); ``scored + pruned`` equals the
    full canonical count, so reporting is independent of how much the
    bound managed to cut.
    """

    best: PlacementScore
    scored: int
    pruned: int

    @property
    def candidates(self) -> int:
        """Total canonical candidates accounted for."""
        return self.scored + self.pruned


def argmax_batch(
    objectives: np.ndarray, makespans: np.ndarray
) -> int:
    """First index maximizing ``(objective, -makespan)``.

    This is :class:`~repro.scheduler.objectives.PlacementScore`'s
    ordering key with ``num_nodes`` constant across a search: the
    serial loop keeps the incumbent unless a candidate is *strictly*
    greater, so the first occurrence of the lexicographic maximum wins.
    A plain ``np.argmax(objectives)`` would drop the makespan
    tie-break; this helper restores it (regression-tested on tie-heavy
    grids against the serial loop).
    """
    if objectives.size == 0:
        raise ValueError("argmax_batch requires at least one candidate")
    tied = np.flatnonzero(objectives == objectives.max())
    # np.argmin returns the first minimum, preserving enumeration order
    return int(tied[np.argmin(makespans[tied])])


def best_score_index(scores: Sequence[PlacementScore]) -> int:
    """First index of the lexicographic maximum ``PlacementScore``.

    Numpy argmax over batch results that preserves the full
    :meth:`PlacementScore._key` ordering — ``(utility, -num_nodes,
    -ensemble_makespan)`` — including the first-occurrence tie-break of
    the serial ``score > best`` loop.
    """
    if not scores:
        raise ValueError("best_score_index requires at least one score")
    utilities = np.fromiter(
        (s.utility for s in scores), dtype=float, count=len(scores)
    )
    candidates = np.flatnonzero(utilities == utilities.max())
    nodes = np.fromiter(
        (scores[i].num_nodes for i in candidates),
        dtype=float,
        count=len(candidates),
    )
    candidates = candidates[nodes == nodes.min()]
    makespans = np.fromiter(
        (scores[i].ensemble_makespan for i in candidates),
        dtype=float,
        count=len(candidates),
    )
    return int(candidates[np.argmin(makespans)])


class VectorizedScorer:
    """Column-kernel scorer for one (spec, node budget, context).

    Precomputes every spec- and context-dependent constant once —
    per-component class ids and solo times, per-member DTL cost tables
    by hop count, reduction offsets — then scores arbitrary feasible
    assignment chunks with :meth:`score_chunk`. Supports the default
    platform family only: :class:`DragonflyNetwork` topology and the
    DIMES-like :class:`InMemoryStagingDTL` (the models whose cost
    formulas the kernels replicate); anything else raises
    :class:`VectorizedUnsupported` so callers can fall back.
    """

    def __init__(
        self,
        spec: EnsembleSpec,
        num_nodes: int,
        cluster: Optional[Cluster] = None,
        dtl: Optional[DataTransportLayer] = None,
    ) -> None:
        require_positive_int("num_nodes", num_nodes)
        self.spec = spec
        self.num_nodes = num_nodes
        if cluster is None:
            self._node_spec = cori_like_node()
            network = cori_like_network()
            self._contention = ContentionModel(
                core_freq_hz=self._node_spec.core_freq_hz,
                memory_bandwidth=self._node_spec.memory_bandwidth,
            )
        else:
            self._node_spec = cluster.node_spec
            network = cluster.network
            self._contention = cluster.contention
        if dtl is None:
            dtl = InMemoryStagingDTL(
                network=network,
                memory_bandwidth=self._node_spec.memory_bandwidth,
            )
        if type(network) is not DragonflyNetwork:
            raise VectorizedUnsupported(
                f"network model {type(network).__name__} is not the "
                "dragonfly the hop kernel replicates"
            )
        if type(dtl) is not InMemoryStagingDTL:
            raise VectorizedUnsupported(
                f"DTL {type(dtl).__name__} has no vectorized cost columns"
            )
        self.dtl = dtl
        self._network = network

        self._build_layout(spec)
        self._build_cost_tables(dtl, network.spec)

        # signature-code -> dilation-table row, grown lazily; the
        # parallel sorted arrays serve the vectorized lookups
        self._code_rows: Dict[int, int] = {}
        self._dil_rows: List[np.ndarray] = []
        self._sorted_codes = np.empty(0, dtype=np.int64)
        self._sorted_rows = np.empty(0, dtype=np.int64)
        self._dil_table = np.empty((0, self.num_components), dtype=float)
        #: distinct node populations assessed (the scalar work actually
        #: performed; everything else was amortized away)
        self.assessed_codes = 0

    # -- static precomputation ----------------------------------------------
    def _build_layout(self, spec: EnsembleSpec) -> None:
        class_ids: Dict[Tuple, int] = {}
        class_cores: List[int] = []
        class_profiles: List[object] = []
        comp_class: List[int] = []
        comp_solo: List[float] = []
        offsets: List[int] = []
        ana_cols: List[int] = []
        ana_member: List[int] = []
        ana_sim_col: List[int] = []
        ana_offsets: List[int] = []
        for member in spec.members:
            offsets.append(len(comp_class))
            ana_offsets.append(len(ana_cols))
            for model in (member.simulation, *member.analyses):
                profile = model.profile  # type: ignore[attr-defined]
                key = (
                    model.cores,  # type: ignore[attr-defined]
                    profile.working_set_bytes,
                    profile.llc_refs_per_instr,
                    profile.solo_llc_miss_ratio,
                    profile.max_llc_miss_ratio,
                    profile.contention_exponent,
                    profile.base_cpi,
                    profile.instructions_per_unit,
                    profile.miss_penalty_cycles,
                )
                cls = class_ids.get(key)
                if cls is None:
                    cls = len(class_ids)
                    class_ids[key] = cls
                    class_cores.append(model.cores)  # type: ignore[attr-defined]
                    class_profiles.append(profile)
                if model is not member.simulation:
                    ana_cols.append(len(comp_class))
                    ana_member.append(len(offsets) - 1)
                    ana_sim_col.append(offsets[-1])
                comp_class.append(cls)
                comp_solo.append(model.solo_compute_time())  # type: ignore[attr-defined]

        self.num_components = len(comp_class)
        self.num_members = len(spec.members)
        self._class_cores = class_cores
        self._class_profiles = class_profiles
        self._comp_class = np.asarray(comp_class, dtype=np.int64)
        self._comp_cores = np.asarray(
            [class_cores[c] for c in comp_class], dtype=np.int64
        )
        self._comp_solo = np.asarray(comp_solo, dtype=float)
        self._lower_tri = np.tri(
            self.num_components, self.num_components, k=-1, dtype=np.int8
        )
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._sim_cols = self._offsets
        self._ana_cols = np.asarray(ana_cols, dtype=np.int64)
        self._ana_member = np.asarray(ana_member, dtype=np.int64)
        self._ana_sim_col = np.asarray(ana_sim_col, dtype=np.int64)
        self._ana_offsets = np.asarray(ana_offsets, dtype=np.int64)
        self._ana_solo = self._comp_solo[self._ana_cols]
        self._n_steps = np.asarray(
            [m.n_steps for m in spec.members], dtype=float
        )
        self._total_cores = np.asarray(
            [m.total_cores for m in spec.members], dtype=float
        )
        self._k = np.asarray(
            [m.num_couplings for m in spec.members], dtype=float
        )

        base = len(class_ids) + 1
        if base ** max(self.num_components, 1) >= 2 ** 62:
            raise VectorizedUnsupported(
                f"{len(class_ids)} component classes over "
                f"{self.num_components} components overflow the int64 "
                "signature code"
            )
        self._code_base = base
        self._base_pows = base ** np.arange(
            self.num_components + 1, dtype=np.int64
        )

    def _build_cost_tables(self, dtl: InMemoryStagingDTL, net) -> None:
        # per-member DTL columns, evaluated with the exact scalar float
        # expressions so table lookups reproduce read_cost/write_cost
        # bit for bit (hops fully determine a remote read's cost)
        members = self.spec.members
        read_table = np.empty((self.num_members, _MAX_HOPS + 1), dtype=float)
        w_eff: List[float] = []
        overhead: List[float] = []
        for i, member in enumerate(members):
            payload = member.simulation.payload_bytes()  # type: ignore[attr-defined]
            unmarshal = payload / dtl.marshal_bandwidth
            read_table[i, 0] = unmarshal + payload / dtl.memory_bandwidth
            for h in range(1, _MAX_HOPS + 1):
                latency = net.base_latency + h * net.per_hop_latency
                read_table[i, h] = unmarshal + (
                    latency + payload / net.link_bandwidth
                )
            w_eff.append(dtl.write_cost(0, payload).total)
            overhead.append(
                dtl.service_latency + payload / dtl.service_bandwidth
            )
        self._read_table = read_table
        self._w_eff = np.asarray(w_eff, dtype=float)
        self._overhead = np.asarray(overhead, dtype=float)
        self._tax = dtl.producer_progress_tax
        self._nodes_per_router = net.nodes_per_router
        self._nodes_per_group = net.nodes_per_group

    # -- node-signature assessment -------------------------------------------
    def _assess_code(self, code: int) -> np.ndarray:
        """Per-position dilations of one node-population code.

        Decodes the class sequence and runs it through the same scalar
        allocation + ``Node.assess`` path the :class:`StageCache` uses
        (positions allocate in component order, so the scatter-mode
        core splits match), making the dilations bit-identical to the
        scalar engine's. Profiles are renamed per position only because
        a node keys residents by name; no numeric field changes.
        """
        sequence: List[int] = []
        remaining = code
        base = self._code_base
        while remaining:
            sequence.append(remaining % base - 1)
            remaining //= base
        # the scalar cache rejects populations beyond the *physical*
        # node capacity (a search budget may exceed it); mirror the
        # check here so both paths raise the same way
        if (
            sum(self._class_cores[cls] for cls in sequence)
            > self._node_spec.cores
        ):
            raise PlacementError(
                f"nodes oversubscribed (capacity {self._node_spec.cores})"
            )
        node = Node(0, self._node_spec)
        for pos, cls in enumerate(sequence):
            node.allocate(
                f"r{pos}",
                self._class_cores[cls],
                replace(self._class_profiles[cls], name=f"r{pos}"),
            )
        merged = node.assess(self._contention)
        row = np.ones(self.num_components, dtype=float)
        for pos in range(len(sequence)):
            row[pos] = merged[f"r{pos}"].dilation
        self.assessed_codes += 1
        return row

    def _ensure_codes(self, codes: np.ndarray) -> None:
        for code in np.unique(codes):
            value = int(code)
            if value == 0 or value in self._code_rows:
                continue
            self._code_rows[value] = len(self._dil_rows)
            self._dil_rows.append(self._assess_code(value))
        if len(self._dil_rows) != self._dil_table.shape[0]:
            self._dil_table = np.vstack(self._dil_rows)
            known = np.fromiter(
                self._code_rows.keys(), dtype=np.int64, count=len(self._code_rows)
            )
            order = np.argsort(known)
            self._sorted_codes = known[order]
            self._sorted_rows = np.fromiter(
                self._code_rows.values(),
                dtype=np.int64,
                count=len(self._code_rows),
            )[order]

    # -- the chunk kernel -----------------------------------------------------
    def score_chunk(
        self, assignments: np.ndarray, validate: bool = False
    ) -> ChunkEvaluation:
        """Score a ``(B, C)`` chunk of flat node assignments.

        Rows must be feasible (the canonical enumerator guarantees it);
        pass ``validate=True`` for externally-supplied assignments to
        get the scalar path's oversubscription check.
        """
        a = np.ascontiguousarray(assignments, dtype=np.int64)
        if a.ndim != 2 or a.shape[1] != self.num_components:
            raise PlacementError(
                f"expected (B, {self.num_components}) assignments, got "
                f"{a.shape}"
            )
        batch, ncomp = a.shape
        if a.size and (a.min() < 0 or a.max() >= self.num_nodes):
            raise PlacementError(
                f"node labels must lie in [0, {self.num_nodes})"
            )

        # 1. node-signature codes + per-component positions from one
        # (B, C, C) co-residence mask: components j and k share a node
        # iff their labels match, so j's position on its node counts the
        # earlier co-residents, and its node's signature code sums the
        # co-residents' class terms — two broadcast reductions replace
        # any per-column Python loop
        share = a[:, :, None] == a[:, None, :]
        positions = np.einsum(
            "bjk,jk->bj",
            share.view(np.int8),
            self._lower_tri,
            dtype=np.int64,
        )
        term = (self._comp_class + 1) * self._base_pows[positions]
        comp_codes = np.einsum(
            "bjk,bk->bj", share, term, dtype=np.int64
        )
        if validate:
            demand = np.einsum(
                "bjk,k->bj", share, self._comp_cores, dtype=np.int64
            )
            if demand.max(initial=0) > self._node_spec.cores:
                raise PlacementError(
                    f"nodes oversubscribed "
                    f"(capacity {self._node_spec.cores})"
                )

        # 2. dilation gather: assess each new code once, then look the
        # whole chunk up through the sorted code table; warm chunks skip
        # the uniqueness scan entirely
        where = np.searchsorted(self._sorted_codes, comp_codes)
        if self._sorted_codes.size == 0 or not np.array_equal(
            self._sorted_codes[
                np.minimum(where, self._sorted_codes.size - 1)
            ],
            comp_codes,
        ):
            self._ensure_codes(comp_codes)
            where = np.searchsorted(self._sorted_codes, comp_codes)
        table_rows = self._sorted_rows[where]
        dilation = self._dil_table[table_rows, positions]

        # 3. DTL + stage columns (Eq. 1 inputs)
        sim_nodes = a[:, self._sim_cols]
        ana_nodes = a[:, self._ana_cols]
        producer = a[:, self._ana_sim_col]
        remote = ana_nodes != producer
        group = ana_nodes // self._nodes_per_group
        p_group = producer // self._nodes_per_group
        router = (ana_nodes % self._nodes_per_group) // self._nodes_per_router
        p_router = (producer % self._nodes_per_group) // self._nodes_per_router
        hops = np.where(
            remote,
            np.where(
                group == p_group, np.where(router == p_router, 1, 2), 5
            ),
            0,
        )
        read = self._read_table[self._ana_member, hops]
        ana_active = read + self._ana_solo * dilation[:, self._ana_cols]
        n_remote = np.add.reduceat(
            remote.astype(float), self._ana_offsets, axis=1
        )
        s_eff = (
            self._comp_solo[self._sim_cols]
            * dilation[:, self._sim_cols]
            * (1.0 + self._tax * n_remote)
            + n_remote * self._overhead
        )
        sim_active = s_eff + self._w_eff

        # 4. member reductions: sigma* (Eq. 1), E (Eq. 3), CP (Eq. 6),
        # the indicator product (Eqs. 5, 7, 8), makespan (Eq. 2)
        active = np.empty((batch, ncomp), dtype=float)
        active[:, self._sim_cols] = sim_active
        active[:, self._ana_cols] = ana_active
        sigma = np.maximum.reduceat(active, self._offsets, axis=1)
        ana_sum = np.add.reduceat(ana_active, self._ana_offsets, axis=1)
        efficiency = sim_active / sigma + ana_sum / (self._k * sigma) - 1.0
        co_located = (1.0 / self._k) * (
            (self._k - n_remote) + 0.5 * n_remote
        )
        indicators = (
            (efficiency / self._total_cores) * co_located
        ) / self.num_nodes
        makespans = self._n_steps * sigma

        # 5. Eq. 9 over the member axis
        mean = indicators.mean(axis=1)
        deviation = indicators - mean[:, None]
        objectives = mean - np.sqrt(np.mean(deviation ** 2, axis=1))
        return ChunkEvaluation(
            objectives=objectives,
            makespans=makespans.max(axis=1),
            indicators=indicators,
        )

    def score_assignments(
        self, assignments: Iterable[Sequence[int]]
    ) -> ChunkEvaluation:
        """Validated batch entry point for explicit assignment lists."""
        array = np.asarray(list(assignments), dtype=np.int64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        return self.score_chunk(array, validate=True)


def _member_bounds(
    spec: EnsembleSpec, cores_per_node: int
) -> Tuple[List[float], List[float]]:
    """Per-member ``CP_max / c`` bound terms and their suffix sums.

    ``CP_max`` takes the most analyses that can share a fresh node with
    the simulation (greedy smallest-first maximizes the co-located
    count); capacity taken by other members can only shrink it, so the
    term is admissible for any completion.
    """
    u_max: List[float] = []
    for member in spec.members:
        free = cores_per_node - member.simulation.cores
        fit = 0
        for cores in sorted(a.cores for a in member.analyses):
            if cores <= free:
                free -= cores
                fit += 1
        k = member.num_couplings
        cp_max = (1.0 / k) * (fit + 0.5 * (k - fit))
        u_max.append(cp_max / member.total_cores)
    suffix = [0.0] * (len(u_max) + 1)
    for i in range(len(u_max) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + u_max[i]
    return u_max, suffix


def find_best_placement_vectorized(
    spec: EnsembleSpec,
    num_nodes: int,
    cores_per_node: int,
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    cache: Optional[StageCache] = None,
    chunk_size: int = 8192,
    prune: bool = True,
) -> VectorizedSearchResult:
    """Branch-and-bound batch search over the canonical space.

    Chunked RGS enumeration feeds :meth:`VectorizedScorer.score_chunk`;
    at every member boundary the admissible bound (exact ``CP/c`` for
    the assigned prefix, best-case for the rest, ``E <= 1`` closing the
    gap) is compared against the incumbent objective and losing
    subtrees are skipped, their sizes tallied in closed form. Pruning
    requires the bound to be *strictly* below the incumbent, so an
    objective tie — which the serial loop would resolve by makespan —
    can never be discarded: the winner is the one the scalar engine
    returns (property-tested against exhaustive search).

    Raises :class:`VectorizedUnsupported` for contexts the kernels do
    not model and :class:`PlacementError` when nothing fits.
    """
    require_positive_int("num_nodes", num_nodes)
    require_positive_int("cores_per_node", cores_per_node)
    scorer = VectorizedScorer(spec, num_nodes, cluster=cluster, dtl=dtl)
    component_cores = component_core_demands(spec)
    capacity = scorer._node_spec.cores
    if cores_per_node > capacity:
        # the scalar engine raises as soon as it scores a candidate
        # whose node population exceeds the *physical* capacity;
        # branch-and-bound could silently prune that candidate away,
        # so detect the condition in closed form instead
        from repro.search.canonical import count_canonical_assignments

        physical = count_canonical_assignments(
            component_cores, num_nodes, capacity
        )
        budgeted = count_canonical_assignments(
            component_cores, num_nodes, cores_per_node
        )
        if budgeted != physical:
            raise PlacementError(
                f"nodes oversubscribed (capacity {capacity})"
            )
    offsets = scorer._offsets
    shapes = [1 + m.num_couplings for m in spec.members]
    total_cores = [m.total_cores for m in spec.members]
    num_members = len(spec.members)
    _, suffix = _member_bounds(spec, cores_per_node)
    counter = CompletionCounter(component_cores, num_nodes, cores_per_node)
    member_of = {int(offsets[m]): m for m in range(num_members)}

    incumbent = -math.inf
    best_key: Optional[Tuple[float, float]] = None
    best_row: Optional[np.ndarray] = None
    scored = 0
    pruned = 0

    def prune_hook(
        i: int, assignment: Sequence[int], caps: Sequence[int]
    ) -> bool:
        nonlocal pruned
        if incumbent == -math.inf:
            return False
        m = member_of[i]
        prefix = 0.0
        for k in range(m):
            start = int(offsets[k])
            sim_node = assignment[start]
            n_remote = 0
            for t in range(start + 1, start + shapes[k]):
                if assignment[t] != sim_node:
                    n_remote += 1
            couplings = shapes[k] - 1
            cp = (1.0 / couplings) * (
                (couplings - n_remote) + 0.5 * n_remote
            )
            prefix += cp / total_cores[k]
        bound = (
            (prefix + suffix[m]) / (num_members * num_nodes)
        ) * (1.0 + BOUND_SAFETY)
        if bound < incumbent:
            pruned += counter.count(i, caps)
            return True
        return False

    boundaries = [int(offsets[m]) for m in range(1, num_members)]
    chunks = iter_assignment_chunks(
        component_cores,
        num_nodes,
        cores_per_node,
        chunk_size=chunk_size,
        boundaries=boundaries,
        prune=prune_hook if prune and boundaries else None,
    )
    for chunk in chunks:
        evaluation = scorer.score_chunk(chunk)
        index = argmax_batch(evaluation.objectives, evaluation.makespans)
        key = (
            float(evaluation.objectives[index]),
            -float(evaluation.makespans[index]),
        )
        scored += chunk.shape[0]
        if best_key is None or key > best_key:
            best_key = key
            best_row = chunk[index].copy()
            incumbent = key[0]

    if best_row is None:
        raise PlacementError(
            f"no feasible placement over {num_nodes} nodes of "
            f"{cores_per_node} cores"
        )
    # re-score the winner through the scalar cache path: the returned
    # floats are the scalar engine's, bit for bit, so downstream exact
    # comparisons (service smoke, bench correctness) are unaffected
    if cache is None or not cache.matches(cluster, dtl):
        cache = StageCache(cluster, dtl)
    placement = assignment_to_placement(spec, best_row.tolist(), num_nodes)
    best = score_placement(
        spec, placement, cluster=cluster, dtl=dtl, cache=cache
    )
    return VectorizedSearchResult(best=best, scored=scored, pruned=pruned)
