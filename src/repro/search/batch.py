"""Batch and parallel scoring of candidate placements.

:func:`score_placements_batch` scores a list of candidates through one
shared :class:`~repro.search.cache.StageCache` — serially by default,
or chunked across a :mod:`multiprocessing` pool on request. Parallel
mode is strictly an opt-in accelerator:

- results are **deterministic and identical to serial**: chunks are
  scored independently (each worker builds its own cache — caches only
  skip work, they never change floats) and reassembled in input order;
- any failure to go parallel (single-core host, sandboxed semaphores,
  unpicklable inputs, pool crash) silently **falls back to the serial
  path** — parallelism is never allowed to turn a scoring call into an
  error the serial path would not raise;
- small batches stay serial (``min_parallel``): pool startup costs more
  than it saves below a few dozen candidates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.dtl.base import DataTransportLayer
from repro.faults.analytic import RobustnessTerm
from repro.platform.cluster import Cluster
from repro.runtime.placement import EnsemblePlacement
from repro.runtime.spec import EnsembleSpec
from repro.scheduler.objectives import PlacementScore, score_placement
from repro.search.cache import StageCache

#: below this many candidates the serial path is used even when
#: ``parallel=True`` — pool startup dominates at small sizes.
MIN_PARALLEL_BATCH = 64

_ChunkPayload = Tuple[
    EnsembleSpec,
    Tuple[EnsemblePlacement, ...],
    Optional[Cluster],
    Optional[DataTransportLayer],
    Optional[RobustnessTerm],
]


def _score_chunk(payload: _ChunkPayload) -> List[PlacementScore]:
    """Worker: score one chunk with a fresh worker-local cache."""
    spec, chunk, cluster, dtl, robustness = payload
    cache = StageCache(cluster, dtl)
    return [
        score_placement(
            spec,
            placement,
            cluster=cluster,
            dtl=dtl,
            robustness=robustness,
            cache=cache,
        )
        for placement in chunk
    ]


def _chunked(
    items: Sequence[EnsemblePlacement], size: int
) -> List[Tuple[EnsemblePlacement, ...]]:
    return [
        tuple(items[i : i + size]) for i in range(0, len(items), size)
    ]


def score_placements_batch(
    spec: EnsembleSpec,
    placements: Iterable[EnsemblePlacement],
    cluster: Optional[Cluster] = None,
    dtl: Optional[DataTransportLayer] = None,
    robustness: Optional[RobustnessTerm] = None,
    cache: Optional[StageCache] = None,
    parallel: bool = False,
    processes: Optional[int] = None,
    min_parallel: int = MIN_PARALLEL_BATCH,
) -> List[PlacementScore]:
    """Score candidates in input order; identical to mapping
    :func:`~repro.scheduler.objectives.score_placement`.

    Parameters
    ----------
    spec / placements:
        The ensemble and the candidates to score.
    cluster / dtl / robustness:
        Forwarded to :func:`~repro.scheduler.objectives.score_placement`.
    cache:
        Optional shared :class:`~repro.search.cache.StageCache`; one is
        created (and warm entries reused across the whole batch) when
        omitted or incompatible with ``(cluster, dtl)``.
    parallel:
        Opt in to multiprocessing. Falls back to serial on single-core
        hosts, batches below ``min_parallel``, or any pool failure.
    processes:
        Worker count (default: ``os.cpu_count()``).
    """
    items = list(placements)
    if cache is None or not cache.matches(cluster, dtl):
        cache = StageCache(cluster, dtl)
    if parallel and len(items) >= max(min_parallel, 2):
        scores = _try_parallel(
            spec, items, cluster, dtl, robustness, processes
        )
        if scores is not None:
            return scores
    return [
        score_placement(
            spec,
            placement,
            cluster=cluster,
            dtl=dtl,
            robustness=robustness,
            cache=cache,
        )
        for placement in items
    ]


def _try_parallel(
    spec: EnsembleSpec,
    items: List[EnsemblePlacement],
    cluster: Optional[Cluster],
    dtl: Optional[DataTransportLayer],
    robustness: Optional[RobustnessTerm],
    processes: Optional[int],
) -> Optional[List[PlacementScore]]:
    """Chunked pool scoring, or None if parallelism is unavailable."""
    try:
        import multiprocessing

        if processes is None:
            processes = multiprocessing.cpu_count()
        if processes < 2:
            return None
        # ~4 chunks per worker keeps the pool load-balanced without
        # shredding cache locality inside each chunk
        chunk_size = max(1, len(items) // (processes * 4))
        chunks = _chunked(items, chunk_size)
        payloads: List[_ChunkPayload] = [
            (spec, chunk, cluster, dtl, robustness) for chunk in chunks
        ]
        with multiprocessing.Pool(processes=processes) as pool:
            per_chunk = pool.map(_score_chunk, payloads)
        return [score for chunk in per_chunk for score in chunk]
    except Exception:
        # sandboxes without semaphores, unpicklable models, pool
        # crashes — all degrade to the serial path, never to an error
        return None
